//! Property-style tests for the ML substrate (deterministic sweeps over
//! the in-tree RNG; no proptest needed offline).

use linalg::rng::{rng_for, Rng};
use linalg::Matrix;
use mlkit::{DenseDataset, Loss, Model, ModelKind, Regressor};

const CASES: usize = 48;

fn random_dataset(rng: &mut impl Rng, dim: usize) -> DenseDataset {
    let n = rng.gen_range(2..40usize);
    let x: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
    let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
    DenseDataset::new(Matrix::from_vec(n, dim, x), y)
}

fn random_model(rng: &mut impl Rng, dim: usize) -> Model {
    let kind = if rng.gen_bool(0.5) {
        ModelKind::Linear
    } else {
        ModelKind::Neural {
            hidden: rng.gen_range(1..12usize),
        }
    };
    kind.build(dim, rng.gen_range(0..1000u64))
}

/// weights()/set_weights() is an exact round trip for both models.
#[test]
fn weight_round_trip() {
    let mut rng = rng_for(0x314, 1);
    for _ in 0..CASES {
        let model = random_model(&mut rng, 3);
        let probe: Vec<f64> = (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut clone = model.clone();
        let w = model.weights();
        assert_eq!(w.len(), model.num_weights());
        clone.set_weights(&w);
        assert_eq!(clone.predict_row(&probe), model.predict_row(&probe));
    }
}

/// The analytic batch gradient matches central finite differences.
#[test]
fn gradient_check() {
    let mut rng = rng_for(0x314, 2);
    for _ in 0..CASES {
        let model = random_model(&mut rng, 2);
        let data = random_dataset(&mut rng, 2);
        let (grad, loss_val) = model.grad_batch(&data, Loss::Mse);
        assert!(loss_val >= 0.0);
        let base = model.weights();
        let eps = 1e-5;
        // Check a handful of coordinates to keep the case fast.
        for i in (0..base.len()).step_by(base.len() / 4 + 1) {
            let mut plus = model.clone();
            let mut wp = base.clone();
            wp[i] += eps;
            plus.set_weights(&wp);
            let mut minus = model.clone();
            let mut wm = base.clone();
            wm[i] -= eps;
            minus.set_weights(&wm);
            let num =
                (plus.evaluate(&data, Loss::Mse) - minus.evaluate(&data, Loss::Mse)) / (2.0 * eps);
            // ReLU kinks can make single coordinates locally non-smooth;
            // tolerate a small absolute band scaled by the loss magnitude.
            let tol = 1e-3 * (1.0 + loss_val.abs());
            assert!(
                (num - grad[i]).abs() < tol,
                "coord {i}: {num} vs {}",
                grad[i]
            );
        }
    }
}

/// A gradient step with a tiny learning rate never increases the
/// full-batch loss (local descent property; linear model is convex).
#[test]
fn sgd_step_descends_for_linear() {
    let mut rng = rng_for(0x314, 3);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 2);
        let mut model = ModelKind::Linear.build(2, 0);
        let before = model.evaluate(&data, Loss::Mse);
        let (grad, _) = model.grad_batch(&data, Loss::Mse);
        let gn: f64 = grad.iter().map(|g| g * g).sum();
        if gn <= 1e-12 {
            continue; // zero gradient: nothing to descend (proptest's prop_assume)
        }
        let lr = 1e-6 / gn.sqrt().max(1.0);
        let mut w = model.weights();
        for (wi, g) in w.iter_mut().zip(&grad) {
            *wi -= lr * g;
        }
        model.set_weights(&w);
        let after = model.evaluate(&data, Loss::Mse);
        assert!(after <= before + 1e-9, "{before} -> {after}");
    }
}

/// Split + concat preserves the multiset of (x, y) pairs.
#[test]
fn split_is_lossless() {
    let mut rng = rng_for(0x314, 4);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 3);
        let frac = rng.gen_range(0.05..0.9);
        let seed = rng.gen_range(0..100u64);
        let (train, val) = data.split(frac, seed);
        assert_eq!(train.len() + val.len(), data.len());
        let key = |p: &(Vec<f64>, f64)| {
            let mut s = String::new();
            for v in &p.0 {
                s.push_str(&format!("{v:.12};"));
            }
            s.push_str(&format!("{:.12}", p.1));
            s
        };
        let mut got: Vec<(Vec<f64>, f64)> = train
            .x()
            .row_iter()
            .zip(train.y())
            .map(|(r, &y)| (r.to_vec(), y))
            .chain(
                val.x()
                    .row_iter()
                    .zip(val.y())
                    .map(|(r, &y)| (r.to_vec(), y)),
            )
            .collect();
        let mut want: Vec<(Vec<f64>, f64)> = data
            .x()
            .row_iter()
            .zip(data.y())
            .map(|(r, &y)| (r.to_vec(), y))
            .collect();
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }
}

/// Metrics invariants: rmse² == mse, mae <= rmse, r2 <= 1.
#[test]
fn metric_relations() {
    let mut rng = rng_for(0x314, 5);
    for _ in 0..CASES {
        let n = rng.gen_range(1..50usize);
        let p: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let t_seed = rng.gen_range(0..50u64);
        let mut trng = rng_for(t_seed, 1);
        let t: Vec<f64> = p
            .iter()
            .map(|_| linalg::rng::normal(&mut trng, 0.0, 10.0))
            .collect();
        let mse = mlkit::metrics::mse(&p, &t);
        let rmse = mlkit::metrics::rmse(&p, &t);
        let mae = mlkit::metrics::mae(&p, &t);
        assert!((rmse * rmse - mse).abs() <= 1e-9 * mse.max(1.0));
        assert!(mae <= rmse + 1e-9);
        assert!(mlkit::metrics::r2(&p, &t) <= 1.0 + 1e-9);
    }
}
