//! Property-based tests for the ML substrate.

use linalg::Matrix;
use mlkit::{DenseDataset, Loss, Model, ModelKind, Regressor};
use proptest::prelude::*;

fn dataset_strategy(dim: usize) -> impl Strategy<Value = DenseDataset> {
    (2..40usize).prop_flat_map(move |n| {
        (
            prop::collection::vec(-10.0_f64..10.0, n * dim),
            prop::collection::vec(-10.0_f64..10.0, n),
        )
            .prop_map(move |(x, y)| DenseDataset::new(Matrix::from_vec(n, dim, x), y))
    })
}

fn model_strategy(dim: usize) -> impl Strategy<Value = Model> {
    prop_oneof![
        Just(ModelKind::Linear),
        (1..12usize).prop_map(|hidden| ModelKind::Neural { hidden }),
    ]
    .prop_flat_map(move |kind| (0..1000u64).prop_map(move |seed| kind.build(dim, seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// weights()/set_weights() is an exact round trip for both models.
    #[test]
    fn weight_round_trip(model in model_strategy(3), probe in prop::collection::vec(-5.0_f64..5.0, 3)) {
        let mut clone = model.clone();
        let w = model.weights();
        prop_assert_eq!(w.len(), model.num_weights());
        clone.set_weights(&w);
        prop_assert_eq!(clone.predict_row(&probe), model.predict_row(&probe));
    }

    /// The analytic batch gradient matches central finite differences.
    #[test]
    fn gradient_check(model in model_strategy(2), data in dataset_strategy(2)) {
        let (grad, loss_val) = model.grad_batch(&data, Loss::Mse);
        prop_assert!(loss_val >= 0.0);
        let base = model.weights();
        let eps = 1e-5;
        // Check a handful of coordinates to keep the case fast.
        for i in (0..base.len()).step_by(base.len() / 4 + 1) {
            let mut plus = model.clone();
            let mut wp = base.clone();
            wp[i] += eps;
            plus.set_weights(&wp);
            let mut minus = model.clone();
            let mut wm = base.clone();
            wm[i] -= eps;
            minus.set_weights(&wm);
            let num = (plus.evaluate(&data, Loss::Mse) - minus.evaluate(&data, Loss::Mse)) / (2.0 * eps);
            // ReLU kinks can make single coordinates locally non-smooth;
            // tolerate a small absolute band scaled by the loss magnitude.
            let tol = 1e-3 * (1.0 + loss_val.abs());
            prop_assert!((num - grad[i]).abs() < tol, "coord {i}: {num} vs {}", grad[i]);
        }
    }

    /// A gradient step with a tiny learning rate never increases the
    /// full-batch loss (local descent property; linear model is convex).
    #[test]
    fn sgd_step_descends_for_linear(data in dataset_strategy(2)) {
        let mut model = ModelKind::Linear.build(2, 0);
        let before = model.evaluate(&data, Loss::Mse);
        let (grad, _) = model.grad_batch(&data, Loss::Mse);
        let gn: f64 = grad.iter().map(|g| g * g).sum();
        prop_assume!(gn > 1e-12);
        let lr = 1e-6 / gn.sqrt().max(1.0);
        let mut w = model.weights();
        for (wi, g) in w.iter_mut().zip(&grad) {
            *wi -= lr * g;
        }
        model.set_weights(&w);
        let after = model.evaluate(&data, Loss::Mse);
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    /// Split + concat preserves the multiset of (x, y) pairs.
    #[test]
    fn split_is_lossless(data in dataset_strategy(3), frac in 0.05_f64..0.9, seed in 0u64..100) {
        let (train, val) = data.split(frac, seed);
        prop_assert_eq!(train.len() + val.len(), data.len());
        let mut got: Vec<(Vec<f64>, f64)> = train
            .x().row_iter().zip(train.y()).map(|(r, &y)| (r.to_vec(), y))
            .chain(val.x().row_iter().zip(val.y()).map(|(r, &y)| (r.to_vec(), y)))
            .collect();
        let mut want: Vec<(Vec<f64>, f64)> =
            data.x().row_iter().zip(data.y()).map(|(r, &y)| (r.to_vec(), y)).collect();
        let key = |p: &(Vec<f64>, f64)| {
            let mut s = String::new();
            for v in &p.0 {
                s.push_str(&format!("{v:.12};"));
            }
            s.push_str(&format!("{:.12}", p.1));
            s
        };
        got.sort_by_key(key);
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
    }

    /// Metrics invariants: rmse² == mse, mae <= rmse, r2 <= 1.
    #[test]
    fn metric_relations(
        p in prop::collection::vec(-100.0_f64..100.0, 1..50),
        t_seed in 0u64..50
    ) {
        let mut rng = linalg::rng::rng_for(t_seed, 1);
        let t: Vec<f64> = p.iter().map(|_| linalg::rng::normal(&mut rng, 0.0, 10.0)).collect();
        let mse = mlkit::metrics::mse(&p, &t);
        let rmse = mlkit::metrics::rmse(&p, &t);
        let mae = mlkit::metrics::mae(&p, &t);
        prop_assert!((rmse * rmse - mse).abs() <= 1e-9 * mse.max(1.0));
        prop_assert!(mae <= rmse + 1e-9);
        prop_assert!(mlkit::metrics::r2(&p, &t) <= 1.0 + 1e-9);
    }
}
