//! Learning-rate schedules.
//!
//! The paper trains with constant rates (Table III); schedules are an
//! extension used by the longer multi-round runs where a decaying rate
//! stabilises the final epochs.

/// A learning-rate schedule: maps `(epoch, base_lr)` to the rate used
/// in that epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LrSchedule {
    /// The base rate throughout (the paper's setting).
    Constant,
    /// Multiply the rate by `factor` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor per decay (in `(0, 1]`).
        factor: f64,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total`
    /// epochs (clamped at `min_lr` beyond).
    Cosine {
        /// Epochs over which to anneal.
        total: usize,
        /// Final learning rate.
        min_lr: f64,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given the base rate.
    ///
    /// # Panics
    /// Panics on non-positive `base_lr` or malformed parameters.
    pub fn rate(&self, epoch: usize, base_lr: f64) -> f64 {
        assert!(base_lr > 0.0, "base learning rate must be positive");
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "step decay interval must be positive");
                assert!(
                    (0.0..=1.0).contains(&factor) && factor > 0.0,
                    "decay factor must be in (0,1]"
                );
                base_lr * factor.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                assert!(total > 0, "cosine schedule needs a positive horizon");
                assert!(
                    min_lr >= 0.0 && min_lr <= base_lr,
                    "min_lr must be in [0, base_lr]"
                );
                if epoch >= total {
                    return min_lr;
                }
                let t = epoch as f64 / total as f64;
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f64::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        for e in [0, 5, 100] {
            assert_eq!(LrSchedule::Constant.rate(e, 0.03), 0.03);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.rate(0, 1.0), 1.0);
        assert_eq!(s.rate(9, 1.0), 1.0);
        assert_eq!(s.rate(10, 1.0), 0.5);
        assert_eq!(s.rate(25, 1.0), 0.25);
    }

    #[test]
    fn cosine_anneals_monotonically_to_min() {
        let s = LrSchedule::Cosine {
            total: 100,
            min_lr: 0.001,
        };
        let mut last = f64::INFINITY;
        for e in 0..=100 {
            let r = s.rate(e, 0.1);
            assert!(r <= last + 1e-12, "cosine not monotone at {e}");
            assert!(r >= 0.001 - 1e-12);
            last = r;
        }
        assert!((s.rate(0, 0.1) - 0.1).abs() < 1e-12);
        assert!((s.rate(100, 0.1) - 0.001).abs() < 1e-12);
        assert_eq!(s.rate(500, 0.1), 0.001);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_base_lr_rejected() {
        LrSchedule::Constant.rate(0, 0.0);
    }
}
