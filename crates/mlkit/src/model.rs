//! The regressor abstraction shared by the training loops and the
//! federated aggregation code.

use linalg::Matrix;

use crate::data::DenseDataset;
use crate::linear::LinearRegression;
use crate::loss::Loss;
use crate::mlp::Mlp;

/// A trainable regression model with a flat parameter vector.
///
/// The flat vector view is what federated weight aggregation operates on:
/// the leader averages `weights()` across participants and pushes the
/// result back with `set_weights`.
pub trait Regressor {
    /// Predicts a single sample.
    fn predict_row(&self, x: &[f64]) -> f64;

    /// Predicts every row of a feature matrix.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Number of trainable parameters.
    fn num_weights(&self) -> usize;

    /// Copies the parameters into a flat vector.
    fn weights(&self) -> Vec<f64>;

    /// Overwrites the parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `w.len() != num_weights()`.
    fn set_weights(&mut self, w: &[f64]);

    /// Computes `(flat gradient, mean loss)` of `loss` over a batch.
    ///
    /// # Panics
    /// Panics if the batch is empty or its width differs from the model's
    /// input dimension.
    fn grad_batch(&self, batch: &DenseDataset, loss: Loss) -> (Vec<f64>, f64);

    /// Mean loss over a dataset without computing gradients.
    fn evaluate(&self, data: &DenseDataset, loss: Loss) -> f64 {
        let preds = self.predict(data.x());
        loss.mean(&preds, data.y())
    }
}

/// Which of the paper's two architectures to build (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelKind {
    /// "LR": a single dense unit — linear regression.
    Linear,
    /// "NN": one hidden dense layer of `hidden` ReLU units (64 in the
    /// paper) feeding a linear output unit.
    Neural {
        /// Hidden-layer width.
        hidden: usize,
    },
}

impl ModelKind {
    /// The paper's NN architecture (Dense 64, ReLU).
    pub const PAPER_NN: ModelKind = ModelKind::Neural { hidden: 64 };

    /// Instantiates a model for `dim` input features with deterministic
    /// weight initialisation.
    pub fn build(&self, dim: usize, seed: u64) -> Model {
        match *self {
            ModelKind::Linear => Model::Linear(LinearRegression::new(dim)),
            ModelKind::Neural { hidden } => Model::Neural(Mlp::new(dim, hidden, seed)),
        }
    }

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Linear => "LR",
            ModelKind::Neural { .. } => "NN",
        }
    }
}

/// A clonable, serialisable regressor: one of the two paper architectures.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Model {
    /// Linear regression.
    Linear(LinearRegression),
    /// One-hidden-layer MLP.
    Neural(Mlp),
}

impl Model {
    /// The architecture tag of this model.
    pub fn kind(&self) -> ModelKind {
        match self {
            Model::Linear(_) => ModelKind::Linear,
            Model::Neural(m) => ModelKind::Neural { hidden: m.hidden() },
        }
    }

    /// Input feature dimension.
    pub fn dim(&self) -> usize {
        match self {
            Model::Linear(m) => m.dim(),
            Model::Neural(m) => m.dim(),
        }
    }
}

impl Regressor for Model {
    fn predict_row(&self, x: &[f64]) -> f64 {
        match self {
            Model::Linear(m) => m.predict_row(x),
            Model::Neural(m) => m.predict_row(x),
        }
    }

    fn num_weights(&self) -> usize {
        match self {
            Model::Linear(m) => m.num_weights(),
            Model::Neural(m) => m.num_weights(),
        }
    }

    fn weights(&self) -> Vec<f64> {
        match self {
            Model::Linear(m) => m.weights(),
            Model::Neural(m) => m.weights(),
        }
    }

    fn set_weights(&mut self, w: &[f64]) {
        match self {
            Model::Linear(m) => m.set_weights(w),
            Model::Neural(m) => m.set_weights(w),
        }
    }

    fn grad_batch(&self, batch: &DenseDataset, loss: Loss) -> (Vec<f64>, f64) {
        match self {
            Model::Linear(m) => m.grad_batch(batch, loss),
            Model::Neural(m) => m.grad_batch(batch, loss),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_build() {
        let lr = ModelKind::Linear.build(3, 0);
        assert_eq!(lr.kind(), ModelKind::Linear);
        assert_eq!(lr.dim(), 3);
        let nn = ModelKind::PAPER_NN.build(3, 0);
        assert_eq!(nn.kind(), ModelKind::Neural { hidden: 64 });
        assert_eq!(nn.dim(), 3);
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(ModelKind::Linear.name(), "LR");
        assert_eq!(ModelKind::PAPER_NN.name(), "NN");
    }

    #[test]
    fn weight_round_trip_preserves_predictions() {
        let mut a = ModelKind::Neural { hidden: 8 }.build(2, 42);
        let b = ModelKind::Neural { hidden: 8 }.build(2, 43);
        let x = [0.3, -0.7];
        let before = b.predict_row(&x);
        a.set_weights(&b.weights());
        assert_eq!(a.predict_row(&x), before);
    }
}
