//! Regression evaluation metrics.

use linalg::stats;

/// Mean squared error. The paper's "expected loss" / "error rate"
/// (Tables I–II, Fig. 7) is MSE on held-out query data.
///
/// # Panics
/// Panics if lengths differ or the slices are empty.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mse length mismatch");
    assert!(!predictions.is_empty(), "mse of empty slices");
    predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Root mean squared error.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    mse(predictions, targets).sqrt()
}

/// Mean absolute error.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mae length mismatch");
    assert!(!predictions.is_empty(), "mae of empty slices");
    predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R². 1 is a perfect fit; 0 matches the
/// mean predictor; negative is worse than the mean predictor. Returns 0
/// when the targets are constant (undefined denominator).
pub fn r2(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "r2 length mismatch");
    assert!(!predictions.is_empty(), "r2 of empty slices");
    let ss_tot: f64 = {
        let m = stats::mean(targets);
        targets.iter().map(|&t| (t - m) * (t - m)).sum()
    };
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn known_errors() {
        let p = [2.0, 4.0];
        let t = [0.0, 0.0];
        assert_eq!(mse(&p, &t), 10.0);
        assert!((rmse(&p, &t) - 10.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mae(&p, &t), 3.0);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        assert!(r2(&p, &t).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_targets_is_defined() {
        assert_eq!(r2(&[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn r2_worse_than_mean_is_negative() {
        let t = [1.0, 2.0];
        let p = [10.0, -10.0];
        assert!(r2(&p, &t) < 0.0);
    }

    #[test]
    #[should_panic(expected = "mse of empty slices")]
    fn empty_input_panics() {
        mse(&[], &[]);
    }
}
