//! Linear regression — the paper's "LR" model (Table III: Dense 1).

use crate::data::DenseDataset;
use crate::loss::Loss;
use crate::model::Regressor;

/// `ŷ = w · x + b`, trained by gradient descent.
///
/// Weights start at zero, which makes LR training deterministic with no
/// seed at all and mirrors Keras' default for a single dense unit closely
/// enough for the paper's purposes.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearRegression {
    w: Vec<f64>,
    b: f64,
}

impl LinearRegression {
    /// A zero-initialised model for `dim` input features.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "linear regression needs at least one feature");
        Self {
            w: vec![0.0; dim],
            b: 0.0,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Feature coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.w
    }

    /// Intercept.
    pub fn intercept(&self) -> f64 {
        self.b
    }

    /// Closed-form ordinary-least-squares fit for a *single* feature,
    /// used by tests and by the heterogeneity probe (Fig. 1/2 replicas).
    ///
    /// # Panics
    /// Panics if the dataset is empty or not 1-dimensional.
    pub fn fit_ols_1d(data: &DenseDataset) -> Self {
        assert_eq!(data.dim(), 1, "fit_ols_1d requires exactly one feature");
        assert!(!data.is_empty(), "fit_ols_1d on an empty dataset");
        let xs = data.x().col(0);
        let (slope, intercept) = linalg::stats::ols_line(&xs, data.y());
        Self {
            w: vec![slope],
            b: intercept,
        }
    }
}

impl Regressor for LinearRegression {
    fn predict_row(&self, x: &[f64]) -> f64 {
        linalg::ops::dot(&self.w, x) + self.b
    }

    fn num_weights(&self) -> usize {
        self.w.len() + 1
    }

    fn weights(&self) -> Vec<f64> {
        let mut out = self.w.clone();
        out.push(self.b);
        out
    }

    fn set_weights(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.num_weights(), "weight vector length mismatch");
        let (coef, rest) = w.split_at(self.w.len());
        self.w.copy_from_slice(coef);
        self.b = rest[0];
    }

    fn grad_batch(&self, batch: &DenseDataset, loss: Loss) -> (Vec<f64>, f64) {
        assert!(!batch.is_empty(), "gradient of an empty batch");
        assert_eq!(
            batch.dim(),
            self.dim(),
            "batch width {} != model dim {}",
            batch.dim(),
            self.dim()
        );
        let n = batch.len() as f64;
        let mut grad = vec![0.0; self.num_weights()];
        let mut total_loss = 0.0;
        for (row, &y) in batch.x().row_iter().zip(batch.y()) {
            let pred = self.predict_row(row);
            total_loss += loss.value(pred, y);
            let g = loss.gradient(pred, y);
            let (gw, gb) = grad.split_at_mut(self.w.len());
            linalg::ops::axpy(g, row, gw);
            gb[0] += g;
        }
        let inv = 1.0 / n;
        for g in &mut grad {
            *g *= inv;
        }
        (grad, total_loss * inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::OptimizerKind;
    use linalg::Matrix;

    fn linear_data(n: usize, w: &[f64], b: f64, seed: u64) -> DenseDataset {
        let mut rng = linalg::rng::rng_for(seed, 77);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                w.iter()
                    .map(|_| linalg::rng::normal(&mut rng, 0.0, 1.0))
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| linalg::ops::dot(w, r) + b).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn gradient_descent_recovers_exact_linear_map() {
        let data = linear_data(200, &[2.0, -1.5], 0.7, 5);
        let mut model = LinearRegression::new(2);
        let mut opt = OptimizerKind::Sgd { lr: 0.1 }.build(model.num_weights());
        for _ in 0..500 {
            let (grad, _) = model.grad_batch(&data, Loss::Mse);
            let mut w = model.weights();
            opt.step(&mut w, &grad);
            model.set_weights(&w);
        }
        assert!((model.coefficients()[0] - 2.0).abs() < 1e-3);
        assert!((model.coefficients()[1] + 1.5).abs() < 1e-3);
        assert!((model.intercept() - 0.7).abs() < 1e-3);
        assert!(model.evaluate(&data, Loss::Mse) < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let data = linear_data(20, &[1.0, 2.0, 3.0], -1.0, 9);
        let mut model = LinearRegression::new(3);
        model.set_weights(&[0.5, -0.5, 1.0, 0.2]);
        let (grad, _) = model.grad_batch(&data, Loss::Mse);
        let eps = 1e-6;
        let base = model.weights();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let mut mp = model.clone();
            mp.set_weights(&plus);
            let mut mm = model.clone();
            mm.set_weights(&minus);
            let num = (mp.evaluate(&data, Loss::Mse) - mm.evaluate(&data, Loss::Mse)) / (2.0 * eps);
            assert!(
                (num - grad[i]).abs() < 1e-4,
                "param {i}: {num} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn ols_1d_matches_stats_line() {
        let data = linear_data(50, &[3.0], 2.0, 3);
        let model = LinearRegression::fit_ols_1d(&data);
        assert!((model.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((model.intercept() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weights_round_trip() {
        let mut m = LinearRegression::new(3);
        m.set_weights(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.weights(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.coefficients(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.intercept(), 4.0);
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn wrong_width_batch_panics() {
        let m = LinearRegression::new(2);
        let data = linear_data(5, &[1.0], 0.0, 0);
        m.grad_batch(&data, Loss::Mse);
    }

    #[test]
    fn zero_model_predicts_zero() {
        let m = LinearRegression::new(4);
        assert_eq!(m.predict_row(&[1.0, 2.0, 3.0, 4.0]), 0.0);
    }
}
