//! Regression losses with gradients w.r.t. the prediction.

/// A pointwise regression loss.
///
/// Table III uses MSE for both models; MAE and Huber are provided for the
/// extension benches.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Loss {
    /// Mean squared error, `(ŷ − y)²` per sample (averaged over a batch).
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with transition point `delta`.
    Huber {
        /// Quadratic-to-linear transition point.
        delta: f64,
    },
}

impl Loss {
    /// Loss value for one sample.
    pub fn value(&self, prediction: f64, target: f64) -> f64 {
        let e = prediction - target;
        match *self {
            Loss::Mse => e * e,
            Loss::Mae => e.abs(),
            Loss::Huber { delta } => {
                if e.abs() <= delta {
                    0.5 * e * e
                } else {
                    delta * (e.abs() - 0.5 * delta)
                }
            }
        }
    }

    /// `∂loss/∂prediction` for one sample.
    pub fn gradient(&self, prediction: f64, target: f64) -> f64 {
        let e = prediction - target;
        match *self {
            Loss::Mse => 2.0 * e,
            Loss::Mae => {
                if e > 0.0 {
                    1.0
                } else if e < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Huber { delta } => e.clamp(-delta, delta),
        }
    }

    /// Mean loss over a batch.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn mean(&self, predictions: &[f64], targets: &[f64]) -> f64 {
        assert_eq!(predictions.len(), targets.len(), "loss length mismatch");
        assert!(!predictions.is_empty(), "mean loss of an empty batch");
        predictions
            .iter()
            .zip(targets)
            .map(|(&p, &t)| self.value(p, t))
            .sum::<f64>()
            / predictions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_gradient() {
        assert_eq!(Loss::Mse.value(3.0, 1.0), 4.0);
        assert_eq!(Loss::Mse.gradient(3.0, 1.0), 4.0);
        assert_eq!(Loss::Mse.gradient(1.0, 3.0), -4.0);
        assert_eq!(Loss::Mse.value(1.0, 1.0), 0.0);
    }

    #[test]
    fn mae_value_and_gradient() {
        assert_eq!(Loss::Mae.value(3.0, 1.0), 2.0);
        assert_eq!(Loss::Mae.gradient(3.0, 1.0), 1.0);
        assert_eq!(Loss::Mae.gradient(-3.0, 1.0), -1.0);
        assert_eq!(Loss::Mae.gradient(1.0, 1.0), 0.0);
    }

    #[test]
    fn huber_transitions_at_delta() {
        let h = Loss::Huber { delta: 1.0 };
        assert_eq!(h.value(0.5, 0.0), 0.125); // quadratic region
        assert_eq!(h.value(2.0, 0.0), 1.5); // linear region
        assert_eq!(h.gradient(0.5, 0.0), 0.5);
        assert_eq!(h.gradient(5.0, 0.0), 1.0);
        assert_eq!(h.gradient(-5.0, 0.0), -1.0);
    }

    #[test]
    fn huber_is_continuous_at_delta() {
        let h = Loss::Huber { delta: 2.0 };
        let eps = 1e-9;
        let below = h.value(2.0 - eps, 0.0);
        let above = h.value(2.0 + eps, 0.0);
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn mean_averages_batch() {
        let p = [1.0, 2.0];
        let t = [0.0, 0.0];
        assert_eq!(Loss::Mse.mean(&p, &t), 2.5);
        assert_eq!(Loss::Mae.mean(&p, &t), 1.5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        for loss in [Loss::Mse, Loss::Huber { delta: 1.3 }] {
            for (p, t) in [(0.7, 0.2), (-2.0, 1.0), (3.0, 3.5)] {
                let eps = 1e-6;
                let num = (loss.value(p + eps, t) - loss.value(p - eps, t)) / (2.0 * eps);
                let ana = loss.gradient(p, t);
                assert!(
                    (num - ana).abs() < 1e-4,
                    "{loss:?} at ({p},{t}): {num} vs {ana}"
                );
            }
        }
    }
}
