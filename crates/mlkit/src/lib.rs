//! Minimal ML substrate replacing the paper's Keras models.
//!
//! The evaluation (§V, Table III) trains two regressors per query: a
//! linear regression (a single dense unit) and a small neural network
//! (one dense layer of 64 ReLU units), both under MSE loss with a 0.2
//! validation split and 100 epochs. This crate implements exactly those
//! models from scratch - dense forward/backward passes, SGD/momentum/Adam
//! optimisers, losses, metrics, mini-batch and *incremental* training
//! (the paper trains one supporting cluster after another, treating each
//! cluster as a mini-batch stage) - with flat weight vectors exposed for
//! federated aggregation.
//!
//! * [`data`] - `DenseDataset` (feature matrix + target vector), splits,
//!   batching.
//! * [`loss`] - MSE / MAE / Huber with gradients.
//! * [`metrics`] - MSE, RMSE, MAE, R².
//! * [`optim`] - SGD, momentum, Adam.
//! * [`model`] - the [`model::Regressor`] trait and the clonable
//!   [`model::Model`] enum over the two paper architectures.
//! * [`linear`] - linear regression (Table III "LR": Dense 1, lr 0.03).
//! * [`mlp`] - one-hidden-layer MLP (Table III "NN": Dense 64 ReLU, lr 0.001).
//! * [`mod@train`] - epoch/batch training loops, validation split, incremental
//!   per-cluster training.

pub mod data;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod optim;
pub mod schedule;
pub mod train;

pub use data::DenseDataset;
pub use linear::LinearRegression;
pub use loss::Loss;
pub use mlp::Mlp;
pub use model::{Model, ModelKind, Regressor};
pub use optim::{Optimizer, OptimizerKind};
pub use schedule::LrSchedule;
pub use train::{train, train_incremental, train_interleaved, TrainConfig, TrainReport};
