//! One-hidden-layer MLP — the paper's "NN" model (Table III: Dense 64,
//! ReLU, MSE).

use crate::data::DenseDataset;
use crate::loss::Loss;
use crate::model::Regressor;

/// `ŷ = w2 · relu(W1 x + b1) + b2`.
///
/// Hidden weights use He-uniform initialisation (the right scaling for
/// ReLU and what Keras does by default up to the distribution family),
/// driven by an explicit seed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    /// Hidden weights, row h = weights of hidden unit h (hidden × dim).
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
}

impl Mlp {
    /// A deterministically-initialised MLP.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `hidden == 0`.
    pub fn new(dim: usize, hidden: usize, seed: u64) -> Self {
        assert!(dim > 0, "mlp needs at least one input feature");
        assert!(hidden > 0, "mlp needs at least one hidden unit");
        use linalg::rng::Rng;
        let mut rng = linalg::rng::rng_for(seed, 0x4E_E7);
        // He-uniform bound for the hidden layer; Glorot-ish for output.
        let limit1 = (6.0 / dim as f64).sqrt();
        let limit2 = (6.0 / (hidden + 1) as f64).sqrt();
        let w1 = (0..hidden * dim)
            .map(|_| rng.gen_range(-limit1..limit1))
            .collect();
        let w2 = (0..hidden)
            .map(|_| rng.gen_range(-limit2..limit2))
            .collect();
        Self {
            dim,
            hidden,
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: 0.0,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Forward pass returning the hidden activations and the output.
    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        debug_assert_eq!(x.len(), self.dim);
        let mut h = vec![0.0; self.hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let row = &self.w1[j * self.dim..(j + 1) * self.dim];
            let z = linalg::ops::dot(row, x) + self.b1[j];
            *hj = z.max(0.0); // ReLU
        }
        let out = linalg::ops::dot(&self.w2, &h) + self.b2;
        (h, out)
    }
}

impl Regressor for Mlp {
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.forward(x).1
    }

    fn num_weights(&self) -> usize {
        self.hidden * self.dim + self.hidden + self.hidden + 1
    }

    fn weights(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_weights());
        out.extend_from_slice(&self.w1);
        out.extend_from_slice(&self.b1);
        out.extend_from_slice(&self.w2);
        out.push(self.b2);
        out
    }

    fn set_weights(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.num_weights(), "weight vector length mismatch");
        let (w1, rest) = w.split_at(self.hidden * self.dim);
        let (b1, rest) = rest.split_at(self.hidden);
        let (w2, b2) = rest.split_at(self.hidden);
        self.w1.copy_from_slice(w1);
        self.b1.copy_from_slice(b1);
        self.w2.copy_from_slice(w2);
        self.b2 = b2[0];
    }

    fn grad_batch(&self, batch: &DenseDataset, loss: Loss) -> (Vec<f64>, f64) {
        assert!(!batch.is_empty(), "gradient of an empty batch");
        assert_eq!(
            batch.dim(),
            self.dim,
            "batch width {} != model dim {}",
            batch.dim(),
            self.dim
        );
        let n = batch.len() as f64;
        let mut g_w1 = vec![0.0; self.w1.len()];
        let mut g_b1 = vec![0.0; self.hidden];
        let mut g_w2 = vec![0.0; self.hidden];
        let mut g_b2 = 0.0;
        let mut total_loss = 0.0;

        for (x, &y) in batch.x().row_iter().zip(batch.y()) {
            let (h, pred) = self.forward(x);
            total_loss += loss.value(pred, y);
            let g_out = loss.gradient(pred, y);
            // Output layer.
            linalg::ops::axpy(g_out, &h, &mut g_w2);
            g_b2 += g_out;
            // Hidden layer: dL/dz_j = g_out * w2_j * 1[h_j > 0].
            for j in 0..self.hidden {
                if h[j] > 0.0 {
                    let gz = g_out * self.w2[j];
                    g_b1[j] += gz;
                    let row = &mut g_w1[j * self.dim..(j + 1) * self.dim];
                    linalg::ops::axpy(gz, x, row);
                }
            }
        }

        let inv = 1.0 / n;
        let mut grad = Vec::with_capacity(self.num_weights());
        grad.extend(g_w1.iter().map(|g| g * inv));
        grad.extend(g_b1.iter().map(|g| g * inv));
        grad.extend(g_w2.iter().map(|g| g * inv));
        grad.push(g_b2 * inv);
        (grad, total_loss * inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::OptimizerKind;
    use linalg::Matrix;

    fn toy_nonlinear(n: usize, seed: u64) -> DenseDataset {
        // y = x0^2 + 0.5 x1, a gentle non-linearity an MLP can fit but a
        // linear model cannot.
        let mut rng = linalg::rng::rng_for(seed, 88);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    linalg::rng::normal(&mut rng, 0.0, 1.0),
                    linalg::rng::normal(&mut rng, 0.0, 1.0),
                ]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0] + 0.5 * r[1]).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    fn train_full_batch(model: &mut Mlp, data: &DenseDataset, lr: f64, steps: usize) {
        let mut opt = OptimizerKind::adam(lr).build(model.num_weights());
        for _ in 0..steps {
            let (grad, _) = model.grad_batch(data, Loss::Mse);
            let mut w = model.weights();
            opt.step(&mut w, &grad);
            model.set_weights(&w);
        }
    }

    #[test]
    fn fits_a_nonlinear_function_better_than_linear() {
        let data = toy_nonlinear(300, 3);
        let mut mlp = Mlp::new(2, 24, 7);
        train_full_batch(&mut mlp, &data, 0.01, 800);
        let mlp_loss = mlp.evaluate(&data, Loss::Mse);

        let mut lin = crate::linear::LinearRegression::new(2);
        let mut opt = OptimizerKind::Sgd { lr: 0.05 }.build(lin.num_weights());
        for _ in 0..800 {
            let (grad, _) = lin.grad_batch(&data, Loss::Mse);
            let mut w = lin.weights();
            opt.step(&mut w, &grad);
            lin.set_weights(&w);
        }
        let lin_loss = lin.evaluate(&data, Loss::Mse);
        assert!(
            mlp_loss < lin_loss * 0.5,
            "mlp {mlp_loss} should beat linear {lin_loss} on a quadratic target"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let data = toy_nonlinear(10, 4);
        let model = Mlp::new(2, 5, 11);
        let (grad, _) = model.grad_batch(&data, Loss::Mse);
        let base = model.weights();
        let eps = 1e-6;
        for i in (0..base.len()).step_by(3) {
            let mut plus = model.clone();
            let mut wp = base.clone();
            wp[i] += eps;
            plus.set_weights(&wp);
            let mut minus = model.clone();
            let mut wm = base.clone();
            wm[i] -= eps;
            minus.set_weights(&wm);
            let num =
                (plus.evaluate(&data, Loss::Mse) - minus.evaluate(&data, Loss::Mse)) / (2.0 * eps);
            assert!(
                (num - grad[i]).abs() < 1e-4,
                "param {i}: {num} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = Mlp::new(3, 8, 42);
        let b = Mlp::new(3, 8, 42);
        let c = Mlp::new(3, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_round_trip() {
        let a = Mlp::new(3, 4, 1);
        let mut b = Mlp::new(3, 4, 2);
        b.set_weights(&a.weights());
        assert_eq!(a, b);
        assert_eq!(a.num_weights(), 3 * 4 + 4 + 4 + 1);
    }

    #[test]
    fn relu_kills_negative_preactivations() {
        let mut m = Mlp::new(1, 1, 0);
        // w1 = 1, b1 = 0, w2 = 1, b2 = 0 -> relu(x)
        m.set_weights(&[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.predict_row(&[2.0]), 2.0);
        assert_eq!(m.predict_row(&[-2.0]), 0.0);
    }
}
