//! Training loops: epoch/batch descent and the paper's *incremental*
//! per-cluster training (§IV-A remark: "each cluster represents a
//! mini-batch", trained for `E` rounds each, producing one model per node).

use crate::data::DenseDataset;
use crate::loss::Loss;
use crate::model::Regressor;
use crate::optim::OptimizerKind;
use crate::schedule::LrSchedule;

/// Hyper-parameters of a training run (Table III).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainConfig {
    /// Epochs over the training split.
    pub epochs: usize,
    /// Mini-batch size inside an epoch (full-batch when it exceeds the
    /// dataset length).
    pub batch_size: usize,
    /// Fraction of data held out for validation (Table III: 0.2).
    pub validation_split: f64,
    /// Optimiser and learning rate.
    pub optimizer: OptimizerKind,
    /// Loss to minimise (Table III: MSE).
    pub loss: Loss,
    /// Stop early when validation loss has not improved for this many
    /// epochs; `None` disables early stopping.
    pub patience: Option<usize>,
    /// L2 weight decay coefficient added to every gradient
    /// (`g += weight_decay * w`); 0 disables it (the paper's setting).
    pub weight_decay: f64,
    /// Clip the global gradient L2 norm to this value before the
    /// optimiser step; `None` disables clipping.
    pub grad_clip: Option<f64>,
    /// Learning-rate schedule over epochs (constant in the paper).
    pub schedule: LrSchedule,
    /// Seed for the shuffles/splits.
    pub seed: u64,
}

impl TrainConfig {
    /// Table III column "LR": 100 epochs, validation split 0.2, learning
    /// rate 0.03, MSE.
    pub fn paper_lr(seed: u64) -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            validation_split: 0.2,
            optimizer: OptimizerKind::Sgd { lr: 0.03 },
            loss: Loss::Mse,
            patience: None,
            weight_decay: 0.0,
            grad_clip: None,
            schedule: LrSchedule::Constant,
            seed,
        }
    }

    /// Table III column "NN": 100 epochs, validation split 0.2, learning
    /// rate 0.001 (Adam, matching the Keras default optimiser family),
    /// MSE.
    pub fn paper_nn(seed: u64) -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            validation_split: 0.2,
            optimizer: OptimizerKind::adam(0.001),
            loss: Loss::Mse,
            patience: None,
            weight_decay: 0.0,
            grad_clip: None,
            schedule: LrSchedule::Constant,
            seed,
        }
    }

    /// A faster variant with fewer epochs, used where the experiment loop
    /// repeats training hundreds of times.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

/// What a training run measured.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainReport {
    /// Mean training loss after each epoch.
    pub train_loss: Vec<f64>,
    /// Mean validation loss after each epoch (empty when the validation
    /// split is 0 or the dataset was too small to split).
    pub val_loss: Vec<f64>,
    /// Total number of sample-visits (samples × epochs actually run).
    pub samples_seen: usize,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
}

impl TrainReport {
    /// The last recorded training loss.
    pub fn final_train_loss(&self) -> Option<f64> {
        self.train_loss.last().copied()
    }

    /// The best (minimum) validation loss seen.
    pub fn best_val_loss(&self) -> Option<f64> {
        self.val_loss.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.min(x),
            })
        })
    }

    /// Merges a follow-on report (incremental training stages).
    fn extend(&mut self, other: TrainReport) {
        self.train_loss.extend(other.train_loss);
        self.val_loss.extend(other.val_loss);
        self.samples_seen += other.samples_seen;
        self.early_stopped |= other.early_stopped;
    }
}

/// Trains `model` on `data` for `config.epochs` epochs of mini-batch
/// descent, with an optional validation split and early stopping.
///
/// Returns the report; the model is updated in place.
///
/// # Panics
/// Panics if `data` is empty.
pub fn train<M: Regressor>(
    model: &mut M,
    data: &DenseDataset,
    config: &TrainConfig,
) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let _span = telemetry::span!("qens_mlkit_train_nanos");
    telemetry::counter!("qens_mlkit_train_calls_total").incr();
    assert!(
        data.x().all_finite() && data.y().iter().all(|v| v.is_finite()),
        "training data contains NaN/inf - impute missing values first (see airdata::impute)"
    );
    let (train_set, val_set) = if config.validation_split > 0.0 && data.len() >= 2 {
        data.split(config.validation_split, config.seed)
    } else {
        (data.clone(), DenseDataset::empty(data.dim()))
    };

    let mut opt = config.optimizer.build(model.num_weights());
    let base_lr = config.optimizer.learning_rate();
    let mut report = TrainReport {
        train_loss: Vec::with_capacity(config.epochs),
        val_loss: Vec::new(),
        samples_seen: 0,
        early_stopped: false,
    };
    let mut best_val = f64::INFINITY;
    let mut since_best = 0usize;

    for epoch in 0..config.epochs {
        opt.set_learning_rate(config.schedule.rate(epoch, base_lr));
        let shuffled = train_set.shuffled(config.seed.wrapping_add(epoch as u64 + 1));
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for batch in shuffled.batches(config.batch_size) {
            let (mut grad, loss) = model.grad_batch(&batch, config.loss);
            let mut w = model.weights();
            if config.weight_decay > 0.0 {
                linalg::ops::axpy(config.weight_decay, &w, &mut grad);
            }
            if let Some(max_norm) = config.grad_clip {
                let norm = linalg::ops::norm(&grad);
                if norm > max_norm {
                    linalg::ops::scale(max_norm / norm, &mut grad);
                }
            }
            opt.step(&mut w, &grad);
            model.set_weights(&w);
            epoch_loss += loss;
            batches += 1;
            report.samples_seen += batch.len();
        }
        report.train_loss.push(epoch_loss / batches.max(1) as f64);

        if !val_set.is_empty() {
            let vl = model.evaluate(&val_set, config.loss);
            report.val_loss.push(vl);
            if let Some(patience) = config.patience {
                if vl + 1e-12 < best_val {
                    best_val = vl;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        report.early_stopped = true;
                        break;
                    }
                }
            }
        }
    }
    report
}

/// The paper's incremental per-cluster training (§IV-A/§IV-B): the model
/// visits each supporting cluster's data in turn, running the full
/// `config` schedule on each stage, and carries its weights across stages
/// so "each node produces only one model including all the training
/// obtained by the K' supporting clusters".
///
/// Empty stages are skipped. Returns the concatenated report.
///
/// Note: with many epochs per stage this *sequential* order lets the last
/// cluster overwrite what earlier clusters taught (intra-node
/// forgetting), which bites non-linear models in particular — see
/// [`train_interleaved`] for the §IV-A "each cluster represents a
/// mini-batch" reading that rotates through the clusters every epoch.
///
/// # Panics
/// Panics if every stage is empty.
pub fn train_incremental<M: Regressor>(
    model: &mut M,
    stages: &[DenseDataset],
    config: &TrainConfig,
) -> TrainReport {
    let mut combined: Option<TrainReport> = None;
    for (i, stage) in stages.iter().enumerate() {
        if stage.is_empty() {
            continue;
        }
        let stage_cfg = TrainConfig {
            seed: config.seed.wrapping_add(i as u64 * 7919),
            ..config.clone()
        };
        let _stage_span = telemetry::span!("qens_mlkit_stage_nanos");
        telemetry::counter!("qens_mlkit_stage_samples_total").add(stage.len() as u64);
        let rep = train(model, stage, &stage_cfg);
        match &mut combined {
            None => combined = Some(rep),
            Some(c) => c.extend(rep),
        }
    }
    combined.expect("train_incremental requires at least one non-empty stage")
}

/// Interleaved per-cluster training — the §IV-A mini-batch reading of the
/// paper's scheme: every epoch visits *each* supporting cluster for one
/// epoch of mini-batch descent, repeating for `config.epochs` cycles.
/// Total work equals [`train_incremental`]'s, but no cluster gets the
/// final word, which protects non-linear models from intra-node
/// forgetting.
///
/// Early stopping and validation splits are per-cluster-epoch and
/// therefore disabled here; the report carries the per-cycle mean
/// training loss across stages.
///
/// # Panics
/// Panics if every stage is empty.
pub fn train_interleaved<M: Regressor>(
    model: &mut M,
    stages: &[DenseDataset],
    config: &TrainConfig,
) -> TrainReport {
    let nonempty: Vec<&DenseDataset> = stages.iter().filter(|s| !s.is_empty()).collect();
    assert!(
        !nonempty.is_empty(),
        "train_interleaved requires at least one non-empty stage"
    );
    let _span = telemetry::span!("qens_mlkit_train_nanos");
    telemetry::counter!("qens_mlkit_train_calls_total").incr();
    for stage in &nonempty {
        telemetry::counter!("qens_mlkit_stage_samples_total").add(stage.len() as u64);
    }
    let mut report = TrainReport {
        train_loss: Vec::with_capacity(config.epochs),
        val_loss: Vec::new(),
        samples_seen: 0,
        early_stopped: false,
    };
    // One optimiser across the whole run so moments persist over cycles.
    let mut opt = config.optimizer.build(model.num_weights());
    let base_lr = config.optimizer.learning_rate();
    for epoch in 0..config.epochs {
        opt.set_learning_rate(config.schedule.rate(epoch, base_lr));
        let mut cycle_loss = 0.0;
        let mut batches = 0usize;
        for (si, stage) in nonempty.iter().enumerate() {
            let shuffled = stage.shuffled(
                config
                    .seed
                    .wrapping_add(epoch as u64 + 1)
                    .wrapping_add(si as u64 * 7919),
            );
            for batch in shuffled.batches(config.batch_size) {
                let (mut grad, loss) = model.grad_batch(&batch, config.loss);
                let mut w = model.weights();
                if config.weight_decay > 0.0 {
                    linalg::ops::axpy(config.weight_decay, &w, &mut grad);
                }
                if let Some(max_norm) = config.grad_clip {
                    let norm = linalg::ops::norm(&grad);
                    if norm > max_norm {
                        linalg::ops::scale(max_norm / norm, &mut grad);
                    }
                }
                opt.step(&mut w, &grad);
                model.set_weights(&w);
                cycle_loss += loss;
                batches += 1;
                report.samples_seen += batch.len();
            }
        }
        report.train_loss.push(cycle_loss / batches.max(1) as f64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ModelKind};
    use linalg::Matrix;

    fn linear_data(n: usize, seed: u64) -> DenseDataset {
        let mut rng = linalg::rng::rng_for(seed, 55);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    linalg::rng::normal(&mut rng, 0.0, 1.0),
                    linalg::rng::normal(&mut rng, 0.0, 1.0),
                ]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0 + linalg::rng::normal(&mut rng, 0.0, 0.01))
            .collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn paper_lr_config_matches_table_iii() {
        let c = TrainConfig::paper_lr(0);
        assert_eq!(c.epochs, 100);
        assert_eq!(c.validation_split, 0.2);
        assert_eq!(c.optimizer.learning_rate(), 0.03);
        assert_eq!(c.loss, Loss::Mse);
    }

    #[test]
    fn paper_nn_config_matches_table_iii() {
        let c = TrainConfig::paper_nn(0);
        assert_eq!(c.epochs, 100);
        assert_eq!(c.validation_split, 0.2);
        assert_eq!(c.optimizer.learning_rate(), 0.001);
        assert_eq!(c.loss, Loss::Mse);
    }

    #[test]
    fn training_reduces_loss() {
        let data = linear_data(200, 1);
        let mut model = ModelKind::Linear.build(2, 0);
        let report = train(&mut model, &data, &TrainConfig::paper_lr(3));
        assert_eq!(report.train_loss.len(), 100);
        assert_eq!(report.val_loss.len(), 100);
        let first = report.train_loss[0];
        let last = report.final_train_loss().unwrap();
        assert!(last < first * 0.1, "loss {first} -> {last} did not drop");
        assert!(report.best_val_loss().unwrap() < 0.1);
    }

    #[test]
    fn training_is_deterministic() {
        let data = linear_data(100, 2);
        let cfg = TrainConfig::paper_lr(17).with_epochs(20);
        let mut a = ModelKind::Linear.build(2, 0);
        let mut b = ModelKind::Linear.build(2, 0);
        let ra = train(&mut a, &data, &cfg);
        let rb = train(&mut b, &data, &cfg);
        assert_eq!(ra, rb);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let data = linear_data(120, 4);
        let mut model = ModelKind::Linear.build(2, 0);
        let cfg = TrainConfig {
            patience: Some(3),
            epochs: 400,
            ..TrainConfig::paper_lr(5)
        };
        let report = train(&mut model, &data, &cfg);
        assert!(report.early_stopped);
        assert!(report.train_loss.len() < 400);
    }

    #[test]
    fn zero_validation_split_trains_on_everything() {
        let data = linear_data(50, 6);
        let mut model = ModelKind::Linear.build(2, 0);
        let cfg = TrainConfig {
            validation_split: 0.0,
            ..TrainConfig::paper_lr(7)
        }
        .with_epochs(5);
        let report = train(&mut model, &data, &cfg);
        assert!(report.val_loss.is_empty());
        assert_eq!(report.samples_seen, 50 * 5);
    }

    #[test]
    fn incremental_training_carries_weights_across_stages() {
        let data = linear_data(300, 8);
        let idx_a: Vec<usize> = (0..100).collect();
        let idx_b: Vec<usize> = (100..300).collect();
        let stages = vec![data.select(&idx_a), data.select(&idx_b)];
        let mut model = ModelKind::Linear.build(2, 0);
        let cfg = TrainConfig::paper_lr(9).with_epochs(30);
        let report = train_incremental(&mut model, &stages, &cfg);
        assert_eq!(report.train_loss.len(), 60);
        // Having seen both stages, the model fits the whole set well.
        assert!(model.evaluate(&data, Loss::Mse) < 0.5);
    }

    #[test]
    fn incremental_training_skips_empty_stages() {
        let data = linear_data(60, 10);
        let stages = vec![DenseDataset::empty(2), data.clone(), DenseDataset::empty(2)];
        let mut model = ModelKind::Linear.build(2, 0);
        let report = train_incremental(
            &mut model,
            &stages,
            &TrainConfig::paper_lr(1).with_epochs(10),
        );
        assert_eq!(report.train_loss.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one non-empty stage")]
    fn incremental_all_empty_panics() {
        let mut model = ModelKind::Linear.build(2, 0);
        train_incremental(
            &mut model,
            &[DenseDataset::empty(2)],
            &TrainConfig::paper_lr(0),
        );
    }

    #[test]
    fn weight_decay_shrinks_coefficients() {
        let data = linear_data(150, 12);
        let plain_cfg = TrainConfig::paper_lr(3).with_epochs(40);
        let decayed_cfg = TrainConfig {
            weight_decay: 0.5,
            ..plain_cfg.clone()
        };
        let mut plain = ModelKind::Linear.build(2, 0);
        let mut decayed = ModelKind::Linear.build(2, 0);
        train(&mut plain, &data, &plain_cfg);
        train(&mut decayed, &data, &decayed_cfg);
        let norm = |m: &Model| m.weights().iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(
            norm(&decayed) < norm(&plain) * 0.95,
            "decay {} should shrink weights vs {}",
            norm(&decayed),
            norm(&plain)
        );
    }

    #[test]
    fn gradient_clipping_bounds_each_step() {
        // Exploding setting: big targets, big learning rate. With a tight
        // clip the weights stay bounded by lr * clip * steps.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 1e6 * i as f64).collect();
        let data = DenseDataset::new(Matrix::from_rows(&rows), y);
        let cfg = TrainConfig {
            grad_clip: Some(1.0),
            validation_split: 0.0,
            ..TrainConfig::paper_lr(1).with_epochs(5)
        };
        let mut model = ModelKind::Linear.build(1, 0);
        train(&mut model, &data, &cfg);
        // 5 epochs * 1 batch, lr 0.03, clip 1 => |w| <= 0.15 + eps.
        assert!(
            model.weights().iter().all(|w| w.abs() <= 0.2),
            "{:?}",
            model.weights()
        );
    }

    #[test]
    fn cosine_schedule_trains_to_convergence() {
        let data = linear_data(150, 14);
        let cfg = TrainConfig {
            schedule: crate::schedule::LrSchedule::Cosine {
                total: 60,
                min_lr: 1e-4,
            },
            ..TrainConfig::paper_lr(5).with_epochs(60)
        };
        let mut model = ModelKind::Linear.build(2, 0);
        let report = train(&mut model, &data, &cfg);
        assert!(report.final_train_loss().unwrap() < 0.05);
    }

    #[test]
    #[should_panic(expected = "contains NaN")]
    fn nan_training_data_rejected() {
        let data = DenseDataset::new(
            Matrix::from_rows(&[vec![1.0, f64::NAN], vec![2.0, 3.0]]),
            vec![1.0, 2.0],
        );
        let mut model = ModelKind::Linear.build(2, 0);
        train(&mut model, &data, &TrainConfig::paper_lr(0));
    }

    #[test]
    fn interleaved_training_covers_all_stages() {
        let data = linear_data(200, 20);
        let idx_a: Vec<usize> = (0..100).collect();
        let idx_b: Vec<usize> = (100..200).collect();
        let stages = vec![
            data.select(&idx_a),
            DenseDataset::empty(2),
            data.select(&idx_b),
        ];
        let mut model = ModelKind::Linear.build(2, 0);
        let cfg = TrainConfig::paper_lr(4).with_epochs(25);
        let report = train_interleaved(&mut model, &stages, &cfg);
        assert_eq!(report.train_loss.len(), 25);
        assert!(model.evaluate(&data, Loss::Mse) < 0.2);
    }

    #[test]
    fn interleaved_resists_intra_node_forgetting_where_sequential_does_not() {
        // Two stages teaching *different* relations: stage A (x in [0,1],
        // y = 5x), stage B (x in [2,3], y = -5x + 20). An NN trained
        // sequentially with many epochs per stage forgets stage A; the
        // interleaved order retains both.
        use linalg::rng::Rng;
        let mk = |lo: f64, slope: f64, b: f64, seed: u64| {
            let mut rng = linalg::rng::rng_for(seed, 9);
            let rows: Vec<Vec<f64>> = (0..120)
                .map(|_| vec![lo + rng.gen_range(0.0..1.0)])
                .collect();
            let y: Vec<f64> = rows.iter().map(|r| slope * r[0] + b).collect();
            DenseDataset::new(Matrix::from_rows(&rows), y)
        };
        let stage_a = mk(0.0, 5.0, 0.0, 1);
        let stage_b = mk(2.0, -5.0, 20.0, 2);
        let stages = vec![stage_a.clone(), stage_b];
        let cfg = TrainConfig {
            optimizer: crate::optim::OptimizerKind::adam(0.02),
            validation_split: 0.0,
            ..TrainConfig::paper_nn(7).with_epochs(120)
        };
        let mut sequential = ModelKind::Neural { hidden: 12 }.build(1, 3);
        train_incremental(&mut sequential, &stages, &cfg);
        let mut interleaved = ModelKind::Neural { hidden: 12 }.build(1, 3);
        train_interleaved(&mut interleaved, &stages, &cfg);
        let seq_a = sequential.evaluate(&stage_a, Loss::Mse);
        let int_a = interleaved.evaluate(&stage_a, Loss::Mse);
        assert!(
            int_a < seq_a,
            "interleaved ({int_a}) should retain stage A better than sequential ({seq_a})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one non-empty stage")]
    fn interleaved_all_empty_panics() {
        let mut model = ModelKind::Linear.build(2, 0);
        train_interleaved(
            &mut model,
            &[DenseDataset::empty(2)],
            &TrainConfig::paper_lr(0),
        );
    }

    #[test]
    fn nn_trains_on_nonlinear_target() {
        // Small NN + Adam on y = x^2.
        let mut rng = linalg::rng::rng_for(3, 66);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![linalg::rng::normal(&mut rng, 0.0, 1.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let data = DenseDataset::new(Matrix::from_rows(&rows), y);
        let mut model: Model = ModelKind::Neural { hidden: 16 }.build(1, 5);
        let cfg = TrainConfig {
            optimizer: OptimizerKind::adam(0.01),
            ..TrainConfig::paper_nn(2)
        };
        let report = train(&mut model, &data, &cfg);
        assert!(
            report.final_train_loss().unwrap() < 0.1,
            "loss {:?}",
            report.final_train_loss()
        );
    }
}
