//! Supervised regression datasets: a feature matrix plus a target vector.

use linalg::rng::SliceRandom;
use linalg::{rng, Matrix};

/// A dense supervised dataset: `x` has one sample per row, `y` one target
/// per sample (`ξ = (x, y)` in the paper's notation).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DenseDataset {
    x: Matrix,
    y: Vec<f64>,
}

impl DenseDataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if `x.rows() != y.len()`.
    pub fn new(x: Matrix, y: Vec<f64>) -> Self {
        assert_eq!(
            x.rows(),
            y.len(),
            "feature rows ({}) != targets ({})",
            x.rows(),
            y.len()
        );
        Self { x, y }
    }

    /// An empty dataset of the given feature width.
    pub fn empty(dim: usize) -> Self {
        Self {
            x: Matrix::zeros(0, dim),
            y: Vec::new(),
        }
    }

    /// Feature matrix.
    #[inline]
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// Target vector.
    #[inline]
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// A new dataset containing the listed sample indices, in order.
    pub fn select(&self, indices: &[usize]) -> DenseDataset {
        let x = self.x.select_rows(indices);
        let y = indices.iter().map(|&i| self.y[i]).collect();
        DenseDataset::new(x, y)
    }

    /// Concatenates two datasets (same feature width).
    pub fn concat(&self, other: &DenseDataset) -> DenseDataset {
        assert_eq!(self.dim(), other.dim(), "concat dimensionality mismatch");
        let x = self.x.vstack(&other.x);
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        DenseDataset::new(x, y)
    }

    /// Deterministically shuffles the samples.
    pub fn shuffled(&self, seed: u64) -> DenseDataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng::rng_for(seed, 0xDA7A));
        self.select(&idx)
    }

    /// Splits into `(train, validation)` with the given validation
    /// fraction, after a deterministic shuffle.
    ///
    /// The split never leaves the training side empty unless the dataset
    /// itself has fewer than 2 samples.
    ///
    /// # Panics
    /// Panics if `val_fraction` is outside `[0, 1)`.
    pub fn split(&self, val_fraction: f64, seed: u64) -> (DenseDataset, DenseDataset) {
        assert!(
            (0.0..1.0).contains(&val_fraction),
            "val_fraction {val_fraction} outside [0,1)"
        );
        let shuffled = self.shuffled(seed);
        let n = shuffled.len();
        let n_val = ((n as f64 * val_fraction).round() as usize).min(n.saturating_sub(1));
        let split_at = n - n_val;
        let train_idx: Vec<usize> = (0..split_at).collect();
        let val_idx: Vec<usize> = (split_at..n).collect();
        (shuffled.select(&train_idx), shuffled.select(&val_idx))
    }

    /// Yields `(x_batch, y_batch)` index ranges of at most `batch_size`
    /// samples, in order.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = DenseDataset> + '_ {
        assert!(batch_size > 0, "batch_size must be positive");
        (0..self.len()).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(self.len());
            let idx: Vec<usize> = (start..end).collect();
            self.select(&idx)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn construction_checks_lengths() {
        let ds = toy(5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dim(), 2);
        assert!(!ds.is_empty());
        assert!(DenseDataset::empty(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_lengths_rejected() {
        DenseDataset::new(Matrix::zeros(3, 2), vec![1.0]);
    }

    #[test]
    fn select_keeps_pairs_aligned() {
        let ds = toy(6);
        let s = ds.select(&[5, 0, 3]);
        assert_eq!(s.y(), &[50.0, 0.0, 30.0]);
        assert_eq!(s.x().row(0), &[5.0, 10.0]);
        assert_eq!(s.x().row(2), &[3.0, 6.0]);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let ds = toy(20);
        let a = ds.shuffled(9);
        let b = ds.shuffled(9);
        assert_eq!(a, b);
        let mut ys = a.y().to_vec();
        ys.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mut want = ds.y().to_vec();
        want.sort_by(|p, q| p.partial_cmp(q).unwrap());
        assert_eq!(ys, want);
        // Pairs stay aligned after shuffling: y == 10 * x[0] everywhere.
        for (row, &y) in a.x().row_iter().zip(a.y()) {
            assert_eq!(y, row[0] * 10.0);
        }
    }

    #[test]
    fn split_fractions_are_respected() {
        let ds = toy(10);
        let (train, val) = ds.split(0.2, 1);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        let (train, val) = ds.split(0.0, 1);
        assert_eq!((train.len(), val.len()), (10, 0));
    }

    #[test]
    fn split_never_empties_training_side() {
        let ds = toy(2);
        let (train, val) = ds.split(0.9, 3);
        assert_eq!(train.len(), 1);
        assert_eq!(val.len(), 1);
        let one = toy(1);
        let (train, val) = one.split(0.5, 3);
        assert_eq!((train.len(), val.len()), (1, 0));
    }

    #[test]
    fn batches_cover_everything_in_order() {
        let ds = toy(7);
        let batches: Vec<DenseDataset> = ds.batches(3).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[2].len(), 1);
        let all: Vec<f64> = batches.iter().flat_map(|b| b.y().to_vec()).collect();
        assert_eq!(all, ds.y());
    }

    #[test]
    fn concat_appends_samples() {
        let a = toy(2);
        let b = toy(3);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.y()[2..], b.y()[..]);
    }
}
