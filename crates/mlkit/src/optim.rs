//! First-order optimisers over flat parameter vectors.

/// Optimiser configuration; [`OptimizerKind::build`] instantiates the
/// stateful [`Optimizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient (typically 0.9).
        beta: f64,
    },
    /// Adam (Kingma & Ba) with the usual defaults.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay (default 0.9).
        beta1: f64,
        /// Second-moment decay (default 0.999).
        beta2: f64,
        /// Numerical-stability constant.
        eps: f64,
    },
}

impl OptimizerKind {
    /// Adam with the standard moment defaults.
    pub fn adam(lr: f64) -> Self {
        OptimizerKind::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Builds the stateful optimiser for a parameter vector of length `n`.
    pub fn build(&self, n: usize) -> Optimizer {
        Optimizer {
            kind: *self,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        match *self {
            OptimizerKind::Sgd { lr }
            | OptimizerKind::Momentum { lr, .. }
            | OptimizerKind::Adam { lr, .. } => lr,
        }
    }
}

/// A stateful first-order optimiser bound to one parameter vector.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Optimizer {
    kind: OptimizerKind,
    /// First-moment / velocity buffer.
    m: Vec<f64>,
    /// Second-moment buffer (Adam only).
    v: Vec<f64>,
    /// Step counter (Adam bias correction).
    t: u64,
}

impl Optimizer {
    /// Applies one update `params -= f(grads)` in place.
    ///
    /// # Panics
    /// Panics if `params`/`grads` lengths differ from the build length.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            self.m.len(),
            "optimizer built for {} params, got {}",
            self.m.len(),
            params.len()
        );
        assert_eq!(grads.len(), self.m.len(), "gradient length mismatch");
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                for (p, &g) in params.iter_mut().zip(grads) {
                    *p -= lr * g;
                }
            }
            OptimizerKind::Momentum { lr, beta } => {
                for ((p, m), &g) in params.iter_mut().zip(&mut self.m).zip(grads) {
                    *m = beta * *m + g;
                    *p -= lr * *m;
                }
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                self.t += 1;
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for (((p, m), v), &g) in params
                    .iter_mut()
                    .zip(&mut self.m)
                    .zip(&mut self.v)
                    .zip(grads)
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    /// The optimiser's configuration.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Changes the learning rate in place (moment state is preserved) —
    /// how learning-rate schedules drive a live optimiser.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        match &mut self.kind {
            OptimizerKind::Sgd { lr: l }
            | OptimizerKind::Momentum { lr: l, .. }
            | OptimizerKind::Adam { lr: l, .. } => *l = lr,
        }
    }

    /// Resets all accumulated state (moments, step counter).
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 from x = 0 with each optimiser.
    fn minimise(kind: OptimizerKind, steps: usize) -> f64 {
        let mut x = vec![0.0_f64];
        let mut opt = kind.build(1);
        for _ in 0..steps {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimise(OptimizerKind::Sgd { lr: 0.1 }, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = minimise(
            OptimizerKind::Momentum {
                lr: 0.05,
                beta: 0.9,
            },
            300,
        );
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimise(OptimizerKind::adam(0.1), 600);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_step_is_exactly_lr_times_grad() {
        let mut p = vec![1.0, 2.0];
        let mut opt = OptimizerKind::Sgd { lr: 0.5 }.build(2);
        opt.step(&mut p, &[2.0, -4.0]);
        assert_eq!(p, vec![0.0, 4.0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = OptimizerKind::adam(0.1).build(1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
        let after_one = p[0];
        opt.reset();
        let mut q = vec![0.0];
        opt.step(&mut q, &[1.0]);
        assert_eq!(
            q[0], after_one,
            "reset optimiser must repeat its first step"
        );
    }

    #[test]
    #[should_panic(expected = "optimizer built for")]
    fn wrong_length_panics() {
        let mut opt = OptimizerKind::Sgd { lr: 0.1 }.build(2);
        let mut p = vec![0.0];
        opt.step(&mut p, &[0.0]);
    }

    #[test]
    fn set_learning_rate_preserves_state() {
        let mut opt = OptimizerKind::Momentum { lr: 0.1, beta: 0.9 }.build(1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]); // velocity = 1, p = -0.1
        opt.set_learning_rate(0.2);
        opt.step(&mut p, &[0.0]); // velocity = 0.9, p -= 0.2*0.9
        assert!((p[0] - (-0.1 - 0.18)).abs() < 1e-12, "p = {}", p[0]);
    }

    #[test]
    fn learning_rate_accessor() {
        assert_eq!(OptimizerKind::Sgd { lr: 0.03 }.learning_rate(), 0.03);
        assert_eq!(OptimizerKind::adam(0.001).learning_rate(), 0.001);
    }
}
