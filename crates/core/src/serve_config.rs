//! Admission-control configuration for the query-serving front end.
//!
//! The serving subsystem (`repro serve`) sits between untrusted HTTP
//! clients and the federation engine, so it needs explicit back-pressure
//! knobs: how many queries may wait in the ingestion queue before the
//! server answers 429, how stale a queued query may get before the
//! batcher sheds it with 503, how many compatible queries one federation
//! wave may coalesce, and how large a request body the parser accepts at
//! all. The config lives in `core` (not `bench`) because the builder
//! resolves it alongside the cache config and experiments pass it
//! programmatically.

/// Back-pressure and batching knobs for the serving front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Ingestion-queue capacity. A `POST /query` arriving while this
    /// many queries are already waiting is rejected with `429` and
    /// `Retry-After` instead of growing the queue without bound. `0` is
    /// a deterministic test hook: every query is rejected at the door.
    pub queue_depth: usize,
    /// Per-request staleness budget in milliseconds, measured from
    /// enqueue to the moment the batcher picks the query up. `None`
    /// waits forever; `Some(0)` is a deterministic test hook that sheds
    /// every dequeued query with `503`.
    pub deadline_ms: Option<u64>,
    /// Most queries one federation wave may coalesce. The batcher only
    /// merges queries whose quantized cache keys match
    /// ([`selection::CacheConfig::compatibility_key`]); this caps how
    /// long a popular bucket can keep one wave growing. Floored at 1.
    pub batch_max: usize,
    /// Largest `Content-Length` the HTTP layer accepts; bigger bodies
    /// get `413` without the server reading (or buffering) them.
    pub body_cap_bytes: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            deadline_ms: None,
            batch_max: 8,
            body_cap_bytes: 64 * 1024,
        }
    }
}

impl AdmissionConfig {
    /// Builds a config from raw environment-variable values. Separated
    /// from [`AdmissionConfig::from_env`] so tests can exercise the
    /// parsing without mutating process-wide environment state.
    ///
    /// Unset, empty or unparseable values keep the defaults. For the
    /// deadline, `"none"`/`"off"` (or unset) means no deadline; a parsed
    /// number — including 0 — is honoured, because 0 is the
    /// shed-everything test hook.
    pub fn from_parts(
        queue: Option<&str>,
        deadline_ms: Option<&str>,
        batch: Option<&str>,
        body_cap: Option<&str>,
    ) -> Self {
        let mut cfg = Self::default();
        if let Some(n) = queue.and_then(|v| v.trim().parse::<usize>().ok()) {
            cfg.queue_depth = n;
        }
        if let Some(v) = deadline_ms {
            let v = v.trim();
            if !matches!(v, "" | "none" | "off") {
                if let Ok(ms) = v.parse::<u64>() {
                    cfg.deadline_ms = Some(ms);
                }
            }
        }
        if let Some(n) = batch.and_then(|v| v.trim().parse::<usize>().ok()) {
            cfg.batch_max = n.max(1);
        }
        if let Some(n) = body_cap.and_then(|v| v.trim().parse::<usize>().ok()) {
            cfg.body_cap_bytes = n;
        }
        cfg
    }

    /// Reads `QENS_SERVE_QUEUE`, `QENS_SERVE_DEADLINE_MS`,
    /// `QENS_SERVE_BATCH` and `QENS_SERVE_BODY_CAP` on top of the
    /// defaults (parsing rules in [`AdmissionConfig::from_parts`]).
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        let (q, d, b, c) = (
            get("QENS_SERVE_QUEUE"),
            get("QENS_SERVE_DEADLINE_MS"),
            get("QENS_SERVE_BATCH"),
            get("QENS_SERVE_BODY_CAP"),
        );
        Self::from_parts(q.as_deref(), d.as_deref(), b.as_deref(), c.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = AdmissionConfig::default();
        assert!(cfg.queue_depth > 0);
        assert_eq!(cfg.deadline_ms, None);
        assert!(cfg.batch_max >= 1);
        assert!(cfg.body_cap_bytes >= 16 * 1024);
    }

    #[test]
    fn from_parts_parses_each_knob() {
        let cfg = AdmissionConfig::from_parts(Some("5"), Some("250"), Some("3"), Some("1024"));
        assert_eq!(cfg.queue_depth, 5);
        assert_eq!(cfg.deadline_ms, Some(250));
        assert_eq!(cfg.batch_max, 3);
        assert_eq!(cfg.body_cap_bytes, 1024);
    }

    #[test]
    fn zero_hooks_are_honoured_but_batch_is_floored() {
        let cfg = AdmissionConfig::from_parts(Some("0"), Some("0"), Some("0"), None);
        assert_eq!(cfg.queue_depth, 0, "queue 0 = reject-everything hook");
        assert_eq!(
            cfg.deadline_ms,
            Some(0),
            "deadline 0 = shed-everything hook"
        );
        assert_eq!(cfg.batch_max, 1, "a wave always fits one query");
    }

    #[test]
    fn garbage_and_off_fall_back_to_defaults() {
        let cfg =
            AdmissionConfig::from_parts(Some("not-a-number"), Some("off"), Some(""), Some("-1"));
        assert_eq!(cfg, AdmissionConfig::default());
        assert_eq!(
            AdmissionConfig::from_parts(None, None, None, None),
            AdmissionConfig::default()
        );
    }
}
