//! Experiment pipelines shared by the repro harness and the examples.

use fedlearn::StreamResult;
use workload::QueryWorkload;

use crate::builder::Federation;
use crate::policy_kind::PolicyKind;

/// One policy's summary row in a comparison (a Fig. 7 bar).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PolicyComparison {
    /// Policy display name.
    pub policy: String,
    /// Mean per-query loss (scaled units); `None` when every round
    /// failed.
    pub mean_loss: Option<f64>,
    /// Mean fraction of the network's data used per query.
    pub mean_data_fraction: f64,
    /// Mean simulated seconds per query.
    pub mean_sim_seconds: f64,
    /// Queries that produced no model.
    pub failed_queries: usize,
    /// The full stream result, for callers that need per-query rows.
    pub stream: StreamResult,
}

/// Runs each policy over the same workload and summarises (Fig. 7).
pub fn compare_policies(
    federation: &Federation,
    workload: &QueryWorkload,
    policies: &[PolicyKind],
) -> Vec<PolicyComparison> {
    policies
        .iter()
        .map(|p| {
            let stream = federation.run_workload(workload, p);
            PolicyComparison {
                policy: stream.policy.clone(),
                mean_loss: stream.mean_loss(),
                mean_data_fraction: stream.mean_data_fraction(),
                mean_sim_seconds: stream.mean_sim_seconds(),
                failed_queries: stream.failed_queries(),
                stream,
            }
        })
        .collect()
}

/// Per-query with/without-selectivity series (Figs. 8 and 9).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SelectivitySeries {
    /// Query ids in issue order.
    pub query_ids: Vec<u64>,
    /// Simulated total training seconds per query, with data
    /// selectivity (sequential view - the paper's Fig. 8 green line).
    pub with_seconds: Vec<f64>,
    /// Simulated total training seconds per query, without (full node
    /// data - the blue line).
    pub without_seconds: Vec<f64>,
    /// Fraction of the network's data used per query, with selectivity.
    pub with_fraction: Vec<f64>,
    /// Fraction used without selectivity.
    pub without_fraction: Vec<f64>,
}

impl SelectivitySeries {
    /// Mean time saving factor (without / with); `None` when empty.
    pub fn mean_speedup(&self) -> Option<f64> {
        if self.with_seconds.is_empty() {
            return None;
        }
        let with: f64 = self.with_seconds.iter().sum();
        let without: f64 = self.without_seconds.iter().sum();
        (with > 0.0).then(|| without / with)
    }
}

/// Runs the same query-driven node choices twice — once training on the
/// supporting clusters only (the paper's mechanism), once on the selected
/// nodes' whole datasets — and pairs the per-query costs. Queries that
/// fail under either arm are dropped from the series (both arms select
/// identically, so failures coincide).
pub fn selectivity_comparison(
    federation: &Federation,
    workload: &QueryWorkload,
    epsilon: f64,
    l: usize,
) -> SelectivitySeries {
    let with = federation.run_workload(workload, &PolicyKind::QueryDriven { epsilon, l });
    let without = federation.run_workload(
        workload,
        &PolicyKind::QueryDrivenNoSelectivity { epsilon, l },
    );
    let mut series = SelectivitySeries {
        query_ids: Vec::new(),
        with_seconds: Vec::new(),
        without_seconds: Vec::new(),
        with_fraction: Vec::new(),
        without_fraction: Vec::new(),
    };
    for (a, b) in with.per_query.iter().zip(&without.per_query) {
        debug_assert_eq!(a.query_id, b.query_id);
        if a.error.is_some() || b.error.is_some() {
            continue;
        }
        series.query_ids.push(a.query_id);
        series.with_seconds.push(a.sim_seconds_total);
        series.without_seconds.push(b.sim_seconds_total);
        series.with_fraction.push(a.data_fraction);
        series.without_fraction.push(b.data_fraction);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FederationBuilder;
    use workload::WorkloadConfig;

    fn federation() -> Federation {
        FederationBuilder::new()
            .heterogeneous_nodes(6, 80)
            .seed(13)
            .epochs(4)
            .build()
    }

    #[test]
    fn compare_policies_produces_one_row_per_policy() {
        let fed = federation();
        let wl = fed.workload(&WorkloadConfig {
            n_queries: 8,
            ..WorkloadConfig::paper_default(3)
        });
        let rows = compare_policies(
            &fed,
            &wl,
            &[
                PolicyKind::query_driven(3),
                PolicyKind::Random { l: 3, seed: 5 },
                PolicyKind::AllNodes,
            ],
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].policy, "query-driven");
        assert_eq!(
            rows[2].mean_data_fraction, 1.0,
            "all-nodes must use all data"
        );
    }

    #[test]
    fn selectivity_series_shows_savings() {
        let fed = federation();
        let wl = fed.workload(&WorkloadConfig {
            n_queries: 10,
            ..WorkloadConfig::paper_default(7)
        });
        let series = selectivity_comparison(&fed, &wl, 0.05, 3);
        assert!(!series.query_ids.is_empty());
        for i in 0..series.query_ids.len() {
            assert!(
                series.with_fraction[i] <= series.without_fraction[i] + 1e-12,
                "selectivity must never use more data"
            );
            assert!(series.with_seconds[i] <= series.without_seconds[i] + 1e-12);
        }
        assert!(series.mean_speedup().unwrap() >= 1.0);
    }
}
