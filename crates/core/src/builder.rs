//! The high-level federation builder and runner.

use airdata::scenario;
use airdata::Feature;
use edgesim::{CostModel, EdgeNetwork};
use faults::{FaultSpec, FaultTolerance};
use fedlearn::{run_query, run_stream, FederationConfig, RoundOutcome, StreamResult};
use fedlearn::{Aggregation, FederationError, StageOrder};
use geom::Query;
use mlkit::{ModelKind, TrainConfig};
use workload::{generate, QueryWorkload, WorkloadConfig};

use crate::policy_kind::PolicyKind;
use crate::serve_config::AdmissionConfig;

/// Where the node population comes from.
#[derive(Debug, Clone)]
enum NodeSource {
    /// Synthetic air-quality stations (§V-A); one or more input features.
    AirQuality {
        n_nodes: usize,
        hours: u64,
        inputs: Vec<Feature>,
        label: Feature,
    },
    /// The controlled homogeneous regression scenario (§II, Table I).
    Homogeneous { n_nodes: usize, samples: usize },
    /// The controlled heterogeneous regression scenario (§II, Table II).
    Heterogeneous { n_nodes: usize, samples: usize },
    /// Caller-provided datasets.
    Datasets(Vec<(String, mlkit::DenseDataset)>),
}

/// Builder for a [`Federation`].
///
/// Defaults mirror the paper's evaluation: `N = 10` air-quality nodes,
/// `K = 5` clusters, LR model with Table III hyper-parameters, weighted
/// averaging.
#[derive(Debug, Clone)]
pub struct FederationBuilder {
    source: NodeSource,
    k: usize,
    seed: u64,
    model: ModelKind,
    epochs: Option<usize>,
    aggregation: Aggregation,
    cost: CostModel,
    capacity_range: Option<(f64, f64)>,
    rounds: usize,
    stage_order: StageOrder,
    telemetry: Option<bool>,
    fleet: Option<bool>,
    trace: Option<Option<telemetry::trace::Clock>>,
    threads: Option<usize>,
    faults: Option<FaultSpec>,
    tolerance: FaultTolerance,
    link_range: Option<((f64, f64), (f64, f64))>,
    selection_cache: Option<bool>,
    cache_bucket_width: Option<f64>,
    selection_index: Option<bool>,
    admission: Option<AdmissionConfig>,
}

impl Default for FederationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FederationBuilder {
    /// A builder with the paper's defaults.
    pub fn new() -> Self {
        Self {
            source: NodeSource::AirQuality {
                n_nodes: 10,
                hours: 24 * 120,
                inputs: vec![Feature::Pm10],
                label: Feature::Pm25,
            },
            k: 5,
            seed: 42,
            model: ModelKind::Linear,
            epochs: None,
            aggregation: Aggregation::WeightedAveraging,
            cost: CostModel::default(),
            capacity_range: None,
            rounds: 1,
            stage_order: StageOrder::Sequential,
            telemetry: None,
            fleet: None,
            trace: None,
            threads: None,
            faults: None,
            tolerance: FaultTolerance::default(),
            link_range: None,
            selection_cache: None,
            cache_bucket_width: None,
            selection_index: None,
            admission: None,
        }
    }

    /// Uses `n` synthetic air-quality stations with `hours` hourly
    /// records each (§V-A; inputs PM10, labels PM2.5).
    pub fn air_quality_nodes(mut self, n: usize, hours: u64) -> Self {
        self.source = NodeSource::AirQuality {
            n_nodes: n,
            hours,
            inputs: vec![Feature::Pm10],
            label: Feature::Pm25,
        };
        self
    }

    /// Like [`FederationBuilder::air_quality_nodes`] with explicit
    /// input/label features.
    pub fn air_quality_features(
        mut self,
        n: usize,
        hours: u64,
        input: Feature,
        label: Feature,
    ) -> Self {
        self.source = NodeSource::AirQuality {
            n_nodes: n,
            hours,
            inputs: vec![input],
            label,
        };
        self
    }

    /// Multi-feature air-quality nodes: the joint data space (and the
    /// query boundary vectors) become `inputs.len() + 1` dimensional.
    pub fn air_quality_multi(
        mut self,
        n: usize,
        hours: u64,
        inputs: Vec<Feature>,
        label: Feature,
    ) -> Self {
        self.source = NodeSource::AirQuality {
            n_nodes: n,
            hours,
            inputs,
            label,
        };
        self
    }

    /// Uses the homogeneous synthetic scenario (§II, Table I).
    pub fn homogeneous_nodes(mut self, n: usize, samples: usize) -> Self {
        self.source = NodeSource::Homogeneous {
            n_nodes: n,
            samples,
        };
        self
    }

    /// Uses the heterogeneous synthetic scenario (§II, Table II).
    pub fn heterogeneous_nodes(mut self, n: usize, samples: usize) -> Self {
        self.source = NodeSource::Heterogeneous {
            n_nodes: n,
            samples,
        };
        self
    }

    /// Uses caller-provided `(name, dataset)` pairs.
    pub fn datasets(mut self, datasets: Vec<(String, mlkit::DenseDataset)>) -> Self {
        self.source = NodeSource::Datasets(datasets);
        self
    }

    /// Clusters per node `K` (the paper fixes 5).
    pub fn clusters_per_node(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Master seed for data generation, quantisation and training.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Model architecture (Table III: LR or NN).
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Overrides the Table III epoch count (100) — the experiment loops
    /// use fewer epochs to keep hundreds of queries tractable.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = Some(epochs);
        self
    }

    /// Aggregation rule (Eq. 6 or Eq. 7).
    pub fn aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// FedAvg-style communication rounds (forces weight aggregation when
    /// above 1; the paper's protocol is single-round).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Supporting-cluster visit order (sequential per §IV-B, or the
    /// interleaved §IV-A mini-batch reading).
    pub fn stage_order(mut self, order: StageOrder) -> Self {
        self.stage_order = order;
        self
    }

    /// Replaces the simulated cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Draws heterogeneous compute capacities from `[lo, hi]`.
    pub fn capacities(mut self, lo: f64, hi: f64) -> Self {
        self.capacity_range = Some((lo, hi));
        self
    }

    /// Draws heterogeneous per-node uplinks: bandwidth uniform in
    /// `[bw_lo, bw_hi]` bytes/s and latency uniform in `[lat_lo, lat_hi]`
    /// seconds (deterministic in the master seed).
    pub fn links(mut self, bandwidth: (f64, f64), latency: (f64, f64)) -> Self {
        self.link_range = Some((bandwidth, latency));
        self
    }

    /// Injects deterministic faults (dropout, stragglers, link loss,
    /// crashes) into every round. The schedule is a pure function of the
    /// federation seed and each query id — see the `faults` crate. An
    /// inert spec (all probabilities zero) leaves runs bit-identical to
    /// never calling this.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Configures how the leader tolerates faults: retry/backoff budget,
    /// straggler deadline and quorum rule (which also controls ranked
    /// standby promotion). Defaults to [`FaultTolerance::default`]:
    /// three upload attempts, no deadline, quorum of one.
    pub fn fault_tolerance(mut self, tolerance: FaultTolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Turns the global telemetry registry on (or off) when the
    /// federation is built, overriding the `QENS_TELEMETRY` environment
    /// variable. Left untouched when never called, so an already-enabled
    /// registry keeps recording. Snapshots are read via
    /// [`telemetry::global`] and exported with [`telemetry::export`].
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = Some(on);
        self
    }

    /// Turns the fleet observability layer (per-node scorecards, skew
    /// analytics and the structured event journal — see
    /// [`telemetry::fleet`] / [`telemetry::journal`]) on or off when the
    /// federation is built, overriding the `QENS_FLEET` environment
    /// variable. Off by default: scorecards cost one mutex hop per
    /// round-loop event, and disabled runs are bitwise identical to a
    /// build without the layer. Left untouched when never called.
    pub fn fleet(mut self, on: bool) -> Self {
        self.fleet = Some(on);
        self
    }

    /// Turns structured query tracing on (with the given clock) or off
    /// when the federation is built, overriding `QENS_TRACE`. Pass
    /// `Some(Clock::Logical)` for the deterministic tick clock (traces
    /// byte-identical across thread counts) or `Some(Clock::Wall)` for
    /// profiler-style nanosecond timestamps. Export the buffer with
    /// [`telemetry::trace::export_chrome`] / `write_chrome`.
    pub fn trace(mut self, clock: Option<telemetry::trace::Clock>) -> Self {
        self.trace = Some(clock);
        self
    }

    /// Pins the training thread pool to exactly `n` workers (backed by a
    /// process-wide cached pool, [`par::sized`]; threads are created once
    /// per process, not per query). When never called, the federation
    /// uses the global pool ([`par::global`]): `QENS_THREADS` or the
    /// machine's available parallelism. `n == 1` runs participants
    /// inline on the caller — results are bit-identical either way.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Turns the selection cache on (or off) for query-driven policies
    /// run through this federation, overriding the `QENS_CACHE`
    /// environment variable. Cached selections are bit-identical to
    /// uncached ones (see [`selection::CachedQueryDriven`]); only the
    /// work to compute them changes. Off by default.
    pub fn selection_cache(mut self, on: bool) -> Self {
        self.selection_cache = Some(on);
        self
    }

    /// Bucket width (data units) of the cache's query quantisation,
    /// overriding `QENS_CACHE_QUANT`. Coarser buckets share entries
    /// across more queries via delta re-scoring.
    ///
    /// # Panics
    /// Panics if `width` is not positive-finite.
    pub fn selection_cache_bucket(mut self, width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "cache bucket width must be positive and finite, got {width}"
        );
        self.cache_bucket_width = Some(width);
        self
    }

    /// Turns spatial-index candidate generation on (or off) for
    /// query-driven policies run through this federation, overriding the
    /// `QENS_INDEX` environment variable. Indexed selections are
    /// bit-identical to full scans (see [`selection::IndexedQueryDriven`]);
    /// only the work to compute them changes — sublinear in fleet size
    /// instead of scoring every node. Composes with
    /// [`FederationBuilder::selection_cache`]: cache hits bypass the
    /// index, misses generate candidates through it. Off by default.
    pub fn index(mut self, on: bool) -> Self {
        self.selection_index = Some(on);
        self
    }

    /// Pins the serving front end's admission control (queue depth,
    /// staleness deadline, batch cap, body cap), overriding the
    /// `QENS_SERVE_*` environment variables. Only consulted by the
    /// serving subsystem (`repro serve` / `repro load`); batch
    /// experiments never touch it.
    pub fn admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(cfg);
        self
    }

    /// Materialises the federation: generates/loads node data, builds the
    /// network and quantises every node.
    pub fn build(self) -> Federation {
        if let Some(on) = self.telemetry {
            telemetry::set_enabled(on);
        }
        if let Some(on) = self.fleet {
            telemetry::fleet::set_enabled(on);
        }
        if let Some(clock) = self.trace {
            telemetry::trace::set_mode(clock);
        }
        let datasets: Vec<(String, mlkit::DenseDataset)> = match self.source {
            NodeSource::AirQuality {
                n_nodes,
                hours,
                inputs,
                label,
            } => scenario::realistic_nodes_multi(n_nodes, hours, self.seed, &inputs, label)
                .into_iter()
                .map(|n| (n.name, n.dataset))
                .collect(),
            NodeSource::Homogeneous { n_nodes, samples } => {
                scenario::homogeneous_nodes(n_nodes, samples, self.seed)
                    .into_iter()
                    .map(|n| (n.name, n.dataset))
                    .collect()
            }
            NodeSource::Heterogeneous { n_nodes, samples } => {
                scenario::heterogeneous_nodes(n_nodes, samples, self.seed)
                    .into_iter()
                    .map(|n| (n.name, n.dataset))
                    .collect()
            }
            NodeSource::Datasets(d) => d,
        };
        let mut network = EdgeNetwork::from_datasets(datasets).with_cost_model(self.cost);
        if let Some((lo, hi)) = self.capacity_range {
            network = network.with_random_capacities(lo, hi, self.seed);
        }
        if let Some((bw, lat)) = self.link_range {
            network = network.with_random_links(bw, lat, self.seed);
        }
        network.quantize_all(self.k, self.seed);

        let mut train = match self.model {
            ModelKind::Linear => TrainConfig::paper_lr(self.seed),
            ModelKind::Neural { .. } => TrainConfig::paper_nn(self.seed),
        };
        if let Some(e) = self.epochs {
            train = train.with_epochs(e);
        }
        let aggregation = if self.rounds > 1 {
            Aggregation::FedAvgWeights
        } else {
            self.aggregation
        };
        let config = FederationConfig {
            model: self.model,
            train,
            aggregation,
            model_seed: self.seed,
            parallel: true,
            threads: self.threads,
            stage_order: self.stage_order,
            rounds: self.rounds,
            faults: self.faults,
            tolerance: self.tolerance,
        };
        let cache_enabled =
            self.selection_cache
                .unwrap_or_else(|| match std::env::var("QENS_CACHE") {
                    Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off" | "no"),
                    Err(_) => false,
                });
        let cache = cache_enabled.then(|| {
            let mut cfg = selection::CacheConfig::from_env();
            if let Some(w) = self.cache_bucket_width {
                cfg.bucket_width = w;
            }
            cfg
        });
        let index_enabled =
            self.selection_index
                .unwrap_or_else(|| match std::env::var("QENS_INDEX") {
                    Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off" | "no"),
                    Err(_) => false,
                });
        Federation {
            network,
            config,
            seed: self.seed,
            cache,
            index: index_enabled,
            admission: self.admission.unwrap_or_else(AdmissionConfig::from_env),
        }
    }
}

/// A ready-to-query federation: the node network plus the learning
/// configuration.
#[derive(Debug, Clone)]
pub struct Federation {
    network: EdgeNetwork,
    config: FederationConfig,
    seed: u64,
    /// Selection-cache configuration for query-driven policies, `None`
    /// when caching is off (builder flag / `QENS_CACHE`).
    cache: Option<selection::CacheConfig>,
    /// Spatial-index candidate generation for query-driven policies
    /// (builder flag / `QENS_INDEX`).
    index: bool,
    /// Admission control for the serving front end (builder override or
    /// the `QENS_SERVE_*` environment, resolved at build time).
    admission: AdmissionConfig,
}

impl Federation {
    /// The underlying network (nodes, summaries, cost model).
    pub fn network(&self) -> &EdgeNetwork {
        &self.network
    }

    /// The learning configuration in force.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// Builds a query from a joint-space boundary vector
    /// `[x_1^min, x_1^max, …, y^min, y^max]`.
    pub fn query_from_bounds(&self, id: u64, bounds: &[f64]) -> Query {
        Query::from_boundary_vec(id, bounds)
    }

    /// Generates the paper's 200-query dynamic workload over the
    /// network's global data space.
    pub fn paper_workload(&self, seed: u64) -> QueryWorkload {
        generate(
            &self.network.global_space(),
            &WorkloadConfig::paper_default(seed),
        )
    }

    /// Generates a custom workload over the global space.
    pub fn workload(&self, config: &WorkloadConfig) -> QueryWorkload {
        generate(&self.network.global_space(), config)
    }

    /// Generates a data-anchored workload: query centres sampled from
    /// actual node data points (`anchors_per_node` per node), so no query
    /// lands in an empty region. `seed` drives both the anchor sample and
    /// the query jitter.
    pub fn anchored_workload(
        &self,
        n_queries: usize,
        anchors_per_node: usize,
        seed: u64,
    ) -> QueryWorkload {
        use linalg::rng::SliceRandom;
        let mut rng = linalg::rng::rng_for(seed, 0xA2C4);
        let mut anchors: Vec<Vec<f64>> = Vec::new();
        for node in self.network.nodes() {
            let mut idx: Vec<usize> = (0..node.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(anchors_per_node.min(node.len()));
            for i in idx {
                anchors.push(node.joint().row(i).to_vec());
            }
        }
        let config = WorkloadConfig {
            n_queries,
            kind: workload::WorkloadKind::DataAnchored {
                anchors,
                jitter_frac: 0.02,
            },
            ..WorkloadConfig::paper_default(seed)
        };
        generate(&self.network.global_space(), &config)
    }

    /// The selection-cache configuration in force (`None` = caching off).
    pub fn cache_config(&self) -> Option<selection::CacheConfig> {
        self.cache
    }

    /// Whether spatial-index candidate generation is in force for
    /// query-driven policies (builder flag / `QENS_INDEX`).
    pub fn index_enabled(&self) -> bool {
        self.index
    }

    /// The serving front end's admission control in force.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// Builds the runtime policy object, wrapped in a selection cache
    /// and/or spatial index when enabled and the policy is query-driven.
    /// The cache and index live as long as the returned object: one
    /// [`Federation::run_workload`] call shares them across its whole
    /// stream.
    pub fn build_policy(&self, policy: &PolicyKind) -> Box<dyn selection::SelectionPolicy> {
        let grid = selection::GridConfig::default();
        match (self.cache, self.index) {
            (Some(cfg), true) => policy.build_cached_indexed(cfg, grid),
            (Some(cfg), false) => policy.build_cached(cfg),
            (None, true) => policy.build_indexed(grid),
            (None, false) => policy.build(),
        }
    }

    /// Runs one query under a policy.
    pub fn run_query(
        &self,
        query: &Query,
        policy: &PolicyKind,
    ) -> Result<RoundOutcome, FederationError> {
        run_query(
            &self.network,
            query,
            self.build_policy(policy).as_ref(),
            &self.config,
        )
    }

    /// Runs a batch of queries through one shared federation wave when
    /// the configuration allows it ([`fedlearn::batchable`]), falling
    /// back to per-query rounds otherwise. Outcomes are bit-identical to
    /// [`Federation::run_query`] either way; only the wave scheduling
    /// changes. The policy object (and therefore any selection cache) is
    /// shared across the whole batch.
    pub fn run_batch(
        &self,
        queries: &[Query],
        policy: &PolicyKind,
    ) -> Vec<Result<RoundOutcome, FederationError>> {
        fedlearn::run_batch(
            &self.network,
            queries,
            self.build_policy(policy).as_ref(),
            &self.config,
        )
    }

    /// Runs a whole workload under a policy.
    pub fn run_workload(&self, workload: &QueryWorkload, policy: &PolicyKind) -> StreamResult {
        run_stream(
            &self.network,
            workload,
            self.build_policy(policy).as_ref(),
            &self.config,
        )
    }

    /// The federation's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_matches_paper_setup() {
        let fed = FederationBuilder::new()
            .air_quality_nodes(10, 200)
            .epochs(2)
            .build();
        assert_eq!(fed.network().len(), 10);
        for node in fed.network().nodes() {
            assert!(node.is_quantized());
            assert!(node.k() <= 5);
        }
        assert_eq!(fed.config().model, ModelKind::Linear);
        assert_eq!(fed.config().aggregation, Aggregation::WeightedAveraging);
    }

    #[test]
    fn heterogeneous_build_and_query_round_trip() {
        let fed = FederationBuilder::new()
            .heterogeneous_nodes(6, 100)
            .seed(7)
            .epochs(5)
            .build();
        let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
        let out = fed.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
        assert!(out.query_loss(fed.network(), &q).unwrap().is_finite());
    }

    #[test]
    fn workload_runs_end_to_end() {
        let fed = FederationBuilder::new()
            .homogeneous_nodes(4, 80)
            .seed(3)
            .epochs(3)
            .build();
        let wl = fed.workload(&WorkloadConfig {
            n_queries: 5,
            ..WorkloadConfig::paper_default(9)
        });
        let res = fed.run_workload(&wl, &PolicyKind::query_driven(2));
        assert_eq!(res.per_query.len(), 5);
    }

    #[test]
    fn capacities_and_cost_model_are_applied() {
        let fed = FederationBuilder::new()
            .homogeneous_nodes(4, 50)
            .capacities(0.5, 2.0)
            .cost_model(CostModel {
                seconds_per_sample_visit: 1e-3,
                ..CostModel::default()
            })
            .epochs(2)
            .build();
        assert!((fed.network().cost_model().seconds_per_sample_visit - 1e-3).abs() < 1e-15);
        assert!(fed.network().nodes().iter().any(|n| n.capacity() != 1.0));
    }

    #[test]
    fn anchored_workload_rarely_fails() {
        let fed = FederationBuilder::new()
            .heterogeneous_nodes(6, 100)
            .seed(5)
            .epochs(3)
            .build();
        let wl = fed.anchored_workload(15, 4, 9);
        assert_eq!(wl.len(), 15);
        let res = fed.run_workload(&wl, &PolicyKind::query_driven(3));
        // Anchored queries land on real data, so almost everything runs.
        assert!(
            res.failed_queries() <= 1,
            "{} of 15 anchored queries failed",
            res.failed_queries()
        );
    }

    #[test]
    fn pinned_thread_counts_change_nothing_observable() {
        let build = |threads: Option<usize>| {
            let mut b = FederationBuilder::new()
                .heterogeneous_nodes(5, 60)
                .seed(21)
                .epochs(3);
            if let Some(n) = threads {
                b = b.threads(n);
            }
            b.build()
        };
        let q = Query::from_boundary_vec(2, &[0.0, 20.0, 0.0, 45.0]);
        let losses: Vec<f64> = [None, Some(1), Some(3)]
            .into_iter()
            .map(|t| {
                let fed = build(t);
                assert_eq!(fed.config().threads, t);
                let out = fed.run_query(&q, &PolicyKind::query_driven(2)).unwrap();
                out.query_loss(fed.network(), &q).unwrap()
            })
            .collect();
        assert_eq!(losses[0].to_bits(), losses[1].to_bits());
        assert_eq!(losses[0].to_bits(), losses[2].to_bits());
    }

    #[test]
    fn faults_and_tolerance_flow_through_the_builder() {
        let build = |spec: Option<FaultSpec>| {
            let mut b = FederationBuilder::new()
                .heterogeneous_nodes(6, 100)
                .seed(7)
                .epochs(3)
                .links((1e6, 20e6), (0.005, 0.05))
                // Quorum of one: aggregate whoever survives instead of
                // failing the round on heavy dropout (full-strength
                // promotion is exercised in the fedlearn tests).
                .fault_tolerance(FaultTolerance::default());
            if let Some(s) = spec {
                b = b.faults(s);
            }
            b.build()
        };
        let clean = build(None);
        let q = clean.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
        let base = clean.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
        assert!(base.fault_trace.is_empty());

        // Heavy dropout still completes: survivors (plus any promoted
        // ranked standbys) carry the round.
        let faulty = build(Some(FaultSpec::dropout(1, 0.5)));
        assert_eq!(faulty.config().faults, Some(FaultSpec::dropout(1, 0.5)));
        let out = faulty.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
        assert!(out.query_loss(faulty.network(), &q).unwrap().is_finite());

        // An inert spec is bit-identical to never configuring faults.
        let inert = build(Some(FaultSpec::none()));
        let same = inert.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
        assert_eq!(
            base.query_loss(clean.network(), &q).unwrap().to_bits(),
            same.query_loss(inert.network(), &q).unwrap().to_bits()
        );
    }

    #[test]
    fn selection_cache_flag_flows_through_and_changes_nothing() {
        let build = |cached: bool| {
            let mut b = FederationBuilder::new()
                .heterogeneous_nodes(5, 60)
                .seed(13)
                .epochs(3);
            if cached {
                b = b.selection_cache(true).selection_cache_bucket(2.5);
            }
            b.build()
        };
        let plain = build(false);
        assert!(plain.cache_config().is_none());
        let cached = build(true);
        let cfg = cached.cache_config().expect("cache flag sets the config");
        assert_eq!(cfg.bucket_width, 2.5);

        let wl = plain.workload(&WorkloadConfig {
            n_queries: 6,
            ..WorkloadConfig::paper_default(17)
        });
        let a = plain.run_workload(&wl, &PolicyKind::query_driven(3));
        let b = cached.run_workload(&wl, &PolicyKind::query_driven(3));
        // The cache must be invisible in every outcome…
        assert_eq!(a.per_query, b.per_query);
        assert_eq!(a.policy, b.policy);
        // …and visible only in the stats surface.
        assert!(a.cache.is_none());
        let stats = b.cache.expect("cached run reports stats");
        assert_eq!(stats.hits + stats.misses, 6);
    }

    #[test]
    fn index_flag_flows_through_and_changes_nothing() {
        let build = |indexed: bool, cached: bool| {
            let mut b = FederationBuilder::new()
                .heterogeneous_nodes(5, 60)
                .seed(13)
                .epochs(3);
            if indexed {
                b = b.index(true);
            }
            if cached {
                b = b.selection_cache(true);
            }
            b.build()
        };
        let plain = build(false, false);
        assert!(!plain.index_enabled());
        let indexed = build(true, false);
        assert!(indexed.index_enabled());
        let both = build(true, true);
        assert!(both.index_enabled() && both.cache_config().is_some());

        let wl = plain.workload(&WorkloadConfig {
            n_queries: 6,
            ..WorkloadConfig::paper_default(17)
        });
        let policy = PolicyKind::query_driven(3);
        let a = plain.run_workload(&wl, &policy);
        let b = indexed.run_workload(&wl, &policy);
        let c = both.run_workload(&wl, &policy);
        // The index must be invisible in every outcome, alone and
        // composed with the cache.
        assert_eq!(a.per_query, b.per_query);
        assert_eq!(a.per_query, c.per_query);
        assert_eq!(a.policy, b.policy);
    }

    #[test]
    fn admission_config_flows_through_the_builder() {
        let fed = FederationBuilder::new()
            .homogeneous_nodes(3, 40)
            .epochs(2)
            .admission(AdmissionConfig {
                queue_depth: 7,
                deadline_ms: Some(125),
                batch_max: 2,
                body_cap_bytes: 4096,
            })
            .build();
        assert_eq!(fed.admission().queue_depth, 7);
        assert_eq!(fed.admission().deadline_ms, Some(125));
        assert_eq!(fed.admission().batch_max, 2);
        assert_eq!(fed.admission().body_cap_bytes, 4096);
    }

    #[test]
    fn run_batch_matches_run_query_through_the_federation() {
        let fed = FederationBuilder::new()
            .heterogeneous_nodes(5, 60)
            .seed(13)
            .epochs(3)
            .selection_cache(true)
            .build();
        let queries = vec![
            fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]),
            fed.query_from_bounds(1, &[0.0, 20.0, 0.0, 45.0]),
            fed.query_from_bounds(2, &[0.0, 10.0, 0.0, 25.0]),
        ];
        let policy = PolicyKind::query_driven(3);
        let batched = fed.run_batch(&queries, &policy);
        for (q, b) in queries.iter().zip(&batched) {
            let single = fed.run_query(q, &policy).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(b.selection, single.selection);
            assert_eq!(
                b.query_loss(fed.network(), q).unwrap().to_bits(),
                single.query_loss(fed.network(), q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let build = || {
            FederationBuilder::new()
                .heterogeneous_nodes(5, 60)
                .seed(99)
                .epochs(2)
                .build()
        };
        let a = build();
        let b = build();
        let q = a.query_from_bounds(1, &[0.0, 20.0, 0.0, 45.0]);
        let oa = a.run_query(&q, &PolicyKind::query_driven(2)).unwrap();
        let ob = b.run_query(&q, &PolicyKind::query_driven(2)).unwrap();
        assert_eq!(
            oa.query_loss(a.network(), &q).unwrap(),
            ob.query_loss(b.network(), &q).unwrap()
        );
    }
}
