//! Serialisable policy configuration.

use selection::{
    AllNodes, CacheConfig, CachedQueryDriven, DataCentric, FairStochastic, GameTheory, GridConfig,
    IndexedQueryDriven, QueryDriven, RandomSelection, SelectionPolicy, WithoutSelectivity,
};

/// A selection policy as configuration — convertible into the trait
/// object [`PolicyKind::build`] the federation loop consumes.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PolicyKind {
    /// The paper's mechanism (§III-C) with top-ℓ capping.
    QueryDriven {
        /// Overlap threshold ε.
        epsilon: f64,
        /// Participants per query ℓ.
        l: usize,
    },
    /// The paper's mechanism with the ψ-threshold cut (Eq. 5).
    QueryDrivenThreshold {
        /// Overlap threshold ε.
        epsilon: f64,
        /// Ranking threshold ψ.
        psi: f64,
    },
    /// Query-driven node choice but no per-cluster data selectivity
    /// (the "without query" arm of Figs. 8–9).
    QueryDrivenNoSelectivity {
        /// Overlap threshold ε.
        epsilon: f64,
        /// Participants per query ℓ.
        l: usize,
    },
    /// Random selection of ℓ nodes (Ye et al.; ref. 6 of the paper).
    Random {
        /// Participants per query ℓ.
        l: usize,
        /// Draw seed.
        seed: u64,
    },
    /// Game-theory selection (Hammoud et al.; ref. 7 of the paper).
    GameTheory {
        /// Leader node index.
        leader: usize,
        /// Participants per query ℓ.
        l: usize,
        /// Probe training seed.
        seed: u64,
    },
    /// Every node with all its data.
    AllNodes,
    /// Data-centric composite scoring (Saha et al.; ref. 8 of the paper) - query-blind.
    DataCentric {
        /// Participants per query ℓ.
        l: usize,
    },
    /// Fairness-aware stochastic selection (Huang et al.; ref. 12 of the paper).
    FairStochastic {
        /// Participants per query ℓ.
        l: usize,
        /// Draw seed.
        seed: u64,
    },
}

impl PolicyKind {
    /// The paper's defaults for a query-driven run: ε = 0.05, top-ℓ.
    pub fn query_driven(l: usize) -> Self {
        PolicyKind::QueryDriven { epsilon: 0.05, l }
    }

    /// Builds the runtime policy object.
    pub fn build(&self) -> Box<dyn SelectionPolicy> {
        match *self {
            PolicyKind::QueryDriven { epsilon, l } => Box::new(QueryDriven {
                epsilon,
                ..QueryDriven::top_l(l)
            }),
            PolicyKind::QueryDrivenThreshold { epsilon, psi } => {
                Box::new(QueryDriven::threshold(epsilon, psi))
            }
            PolicyKind::QueryDrivenNoSelectivity { epsilon, l } => {
                Box::new(WithoutSelectivity(QueryDriven {
                    epsilon,
                    ..QueryDriven::top_l(l)
                }))
            }
            PolicyKind::Random { l, seed } => Box::new(RandomSelection { l, seed }),
            PolicyKind::GameTheory { leader, l, seed } => {
                Box::new(GameTheory::paper_default(leader, l, seed))
            }
            PolicyKind::AllNodes => Box::new(AllNodes),
            PolicyKind::DataCentric { l } => Box::new(DataCentric::equal_weights(l)),
            PolicyKind::FairStochastic { l, seed } => Box::new(FairStochastic::new(l, seed)),
        }
    }

    /// Like [`PolicyKind::build`], but query-driven variants come back
    /// behind a [`CachedQueryDriven`] selection cache. Policies without
    /// an Eq. 2–4 kernel (random, game-theory, …) have nothing to cache
    /// and build plain. Selections are bit-identical either way; only
    /// the scoring work changes.
    pub fn build_cached(&self, config: CacheConfig) -> Box<dyn SelectionPolicy> {
        match *self {
            PolicyKind::QueryDriven { epsilon, l } => Box::new(CachedQueryDriven::new(
                QueryDriven {
                    epsilon,
                    ..QueryDriven::top_l(l)
                },
                config,
            )),
            PolicyKind::QueryDrivenThreshold { epsilon, psi } => Box::new(CachedQueryDriven::new(
                QueryDriven::threshold(epsilon, psi),
                config,
            )),
            PolicyKind::QueryDrivenNoSelectivity { epsilon, l } => {
                Box::new(WithoutSelectivity(CachedQueryDriven::new(
                    QueryDriven {
                        epsilon,
                        ..QueryDriven::top_l(l)
                    },
                    config,
                )))
            }
            _ => self.build(),
        }
    }

    /// Like [`PolicyKind::build`], but query-driven variants generate
    /// candidates through a spatial index ([`selection::indexed`])
    /// before the scoring kernel runs. Policies that never score
    /// summaries build plain. Selections are bit-identical either way;
    /// only the scoring work changes.
    pub fn build_indexed(&self, grid: GridConfig) -> Box<dyn SelectionPolicy> {
        match *self {
            PolicyKind::QueryDriven { epsilon, l } => Box::new(IndexedQueryDriven::new(
                QueryDriven {
                    epsilon,
                    ..QueryDriven::top_l(l)
                },
                grid,
            )),
            PolicyKind::QueryDrivenThreshold { epsilon, psi } => Box::new(IndexedQueryDriven::new(
                QueryDriven::threshold(epsilon, psi),
                grid,
            )),
            PolicyKind::QueryDrivenNoSelectivity { epsilon, l } => {
                Box::new(WithoutSelectivity(IndexedQueryDriven::new(
                    QueryDriven {
                        epsilon,
                        ..QueryDriven::top_l(l)
                    },
                    grid,
                )))
            }
            _ => self.build(),
        }
    }

    /// Cache *and* index: [`PolicyKind::build_cached`] with misses
    /// routed through the spatial index
    /// ([`CachedQueryDriven::with_index`]).
    pub fn build_cached_indexed(
        &self,
        config: CacheConfig,
        grid: GridConfig,
    ) -> Box<dyn SelectionPolicy> {
        match *self {
            PolicyKind::QueryDriven { epsilon, l } => Box::new(CachedQueryDriven::with_index(
                QueryDriven {
                    epsilon,
                    ..QueryDriven::top_l(l)
                },
                config,
                grid,
            )),
            PolicyKind::QueryDrivenThreshold { epsilon, psi } => Box::new(
                CachedQueryDriven::with_index(QueryDriven::threshold(epsilon, psi), config, grid),
            ),
            PolicyKind::QueryDrivenNoSelectivity { epsilon, l } => {
                Box::new(WithoutSelectivity(CachedQueryDriven::with_index(
                    QueryDriven {
                        epsilon,
                        ..QueryDriven::top_l(l)
                    },
                    config,
                    grid,
                )))
            }
            _ => self.build(),
        }
    }

    /// Display name (delegates to the built policy).
    pub fn name(&self) -> &'static str {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(PolicyKind::query_driven(3).name(), "query-driven");
        assert_eq!(PolicyKind::Random { l: 2, seed: 0 }.name(), "random");
        assert_eq!(PolicyKind::AllNodes.name(), "all-nodes");
        assert_eq!(
            PolicyKind::GameTheory {
                leader: 0,
                l: 2,
                seed: 0
            }
            .name(),
            "game-theory"
        );
        assert_eq!(
            PolicyKind::QueryDrivenNoSelectivity {
                epsilon: 0.05,
                l: 3
            }
            .name(),
            "without-selectivity"
        );
        assert_eq!(PolicyKind::DataCentric { l: 2 }.name(), "data-centric");
        assert_eq!(
            PolicyKind::FairStochastic { l: 2, seed: 0 }.name(),
            "fair-stochastic"
        );
    }

    #[test]
    fn cached_builds_keep_names_and_expose_stats() {
        let cfg = CacheConfig::default();
        // Names must not fork on caching: result tables key on them.
        assert_eq!(
            PolicyKind::query_driven(3).build_cached(cfg).name(),
            "query-driven"
        );
        assert_eq!(
            PolicyKind::QueryDrivenNoSelectivity {
                epsilon: 0.05,
                l: 3
            }
            .build_cached(cfg)
            .name(),
            "without-selectivity"
        );
        assert_eq!(PolicyKind::AllNodes.build_cached(cfg).name(), "all-nodes");
        // Only cache-backed policies report cache stats.
        assert!(PolicyKind::query_driven(3)
            .build_cached(cfg)
            .cache_stats()
            .is_some());
        assert!(PolicyKind::query_driven(3).build().cache_stats().is_none());
        assert!(PolicyKind::AllNodes
            .build_cached(cfg)
            .cache_stats()
            .is_none());
        assert!(PolicyKind::QueryDrivenNoSelectivity {
            epsilon: 0.05,
            l: 3
        }
        .build_cached(cfg)
        .cache_stats()
        .is_some());
    }

    #[test]
    fn indexed_builds_keep_names() {
        let grid = GridConfig::default();
        // Names must not fork on indexing: result tables key on them.
        assert_eq!(
            PolicyKind::query_driven(3).build_indexed(grid).name(),
            "query-driven"
        );
        assert_eq!(
            PolicyKind::QueryDrivenNoSelectivity {
                epsilon: 0.05,
                l: 3
            }
            .build_indexed(grid)
            .name(),
            "without-selectivity"
        );
        assert_eq!(PolicyKind::AllNodes.build_indexed(grid).name(), "all-nodes");
        let cfg = CacheConfig::default();
        assert_eq!(
            PolicyKind::query_driven(3)
                .build_cached_indexed(cfg, grid)
                .name(),
            "query-driven"
        );
        // Cached-indexed still reports cache stats.
        assert!(PolicyKind::query_driven(3)
            .build_cached_indexed(cfg, grid)
            .cache_stats()
            .is_some());
    }

    #[test]
    fn variants_carry_their_parameters() {
        let p = PolicyKind::QueryDriven { epsilon: 0.1, l: 4 };
        assert_eq!(format!("{p:?}"), "QueryDriven { epsilon: 0.1, l: 4 }");
    }
}
