//! The commonly used surface of the `qens` workspace in one import.

pub use crate::builder::{Federation, FederationBuilder};
pub use crate::experiment::{
    compare_policies, selectivity_comparison, PolicyComparison, SelectivitySeries,
};
pub use crate::policy_kind::PolicyKind;
pub use crate::serve_config::AdmissionConfig;

pub use airdata::scenario;
pub use airdata::Feature;
pub use edgesim::{
    CostModel, EdgeNetwork, EdgeNode, LinkProfile, NodeId, QueryAccounting, SpaceScaler,
};
pub use faults::{FaultEvent, FaultSpec, FaultTolerance, FaultTrace, Quorum, RetryPolicy};
pub use fedlearn::{
    Aggregation, FederationConfig, FederationError, GlobalModel, RoundOutcome, StageOrder,
    StreamResult,
};
pub use geom::{HyperRect, Interval, OverlapCase, Query};
pub use mlkit::{DenseDataset, Loss, Model, ModelKind, Regressor, TrainConfig};
pub use selection::{
    AllNodes, CacheConfig, CacheStats, CachedQueryDriven, DataCentric, FairStochastic, GameTheory,
    QueryDriven, RandomSelection, Selection, SelectionContext, SelectionPolicy, WithoutSelectivity,
};
pub use workload::{QueryWorkload, WorkloadConfig, WorkloadKind};
