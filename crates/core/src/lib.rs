//! # qens - Query-driven Edge Node Selection
//!
//! A Rust implementation of *"Query-driven Edge Node Selection in
//! Distributed Learning Environments"* (Aladwani, Anagnostopoulos,
//! Kolomvatsos, Alghamdi, Deligianni - DASC @ IEEE ICDE 2023).
//!
//! Edge nodes hold private local datasets with very different ranges,
//! patterns and volumes. For each incoming analytics query - a
//! hyper-rectangle over the data space describing the data a model is to
//! be built over - the leader must pick the participants whose data
//! actually *supports* the query, and, inside each participant, the data
//! subsets worth training on. This crate ties the full pipeline together:
//!
//! 1. every node quantises its joint data space with k-means and shares
//!    only per-cluster bounding rectangles (`cluster`, `edgesim`);
//! 2. the leader ranks nodes by query/cluster data overlap
//!    (`geom`, `selection`) - Eqs. 2-5 of the paper;
//! 3. selected participants train the broadcast model incrementally over
//!    their supporting clusters only (`mlkit`, `fedlearn`);
//! 4. the leader aggregates by plain or ranking-weighted prediction
//!    averaging - Eqs. 6-7.
//!
//! ## Quick start
//!
//! ```
//! use qens::prelude::*;
//!
//! // Ten heterogeneous synthetic nodes (see `airdata::scenario`).
//! let fed = FederationBuilder::new()
//!     .heterogeneous_nodes(10, 200)
//!     .clusters_per_node(5)
//!     .seed(42)
//!     .epochs(10)
//!     .build();
//!
//! // A query over part of the data space (features then label bounds).
//! let query = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
//! let outcome = fed.run_query(&query, &PolicyKind::query_driven(3)).unwrap();
//! let loss = outcome.query_loss(fed.network(), &query).unwrap();
//! assert!(loss.is_finite());
//! ```
//!
//! The sub-crates are re-exported under their own names (`qens::geom`,
//! `qens::selection`, ...) for direct access; [`prelude`] pulls in the
//! common surface.

pub use airdata;
pub use cluster;
pub use edgesim;
pub use faults;
pub use fedlearn;
pub use geom;
pub use linalg;
pub use mlkit;
pub use par;
pub use selection;
pub use telemetry;
pub use workload;

pub mod builder;
pub mod experiment;
pub mod policy_kind;
pub mod prelude;
pub mod serve_config;

pub use builder::{Federation, FederationBuilder};
pub use experiment::{
    compare_policies, selectivity_comparison, PolicyComparison, SelectivitySeries,
};
pub use policy_kind::PolicyKind;
pub use serve_config::AdmissionConfig;
