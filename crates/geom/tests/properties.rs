//! Property-style tests for the overlap geometry.
//!
//! The most important property in this file proves the design note in
//! DESIGN.md: the paper's explicit five-case overlap ratio equals the
//! interval Jaccard for every pair of intervals. Cases are swept with
//! the in-tree deterministic RNG (no proptest needed offline).

use geom::{HyperRect, Interval, OverlapCase, Query};
use linalg::rng::{rng_for, Rng};

const CASES: usize = 300;

fn random_interval(rng: &mut impl Rng) -> Interval {
    let lo = rng.gen_range(-1e6..1e6);
    let len = rng.gen_range(0.0..1e6);
    Interval::new(lo, lo + len)
}

fn random_rect(rng: &mut impl Rng, dim: usize) -> HyperRect {
    HyperRect::new((0..dim).map(|_| random_interval(rng)).collect())
}

/// A pair of rects of equal dimensionality in `1..=max_dim`.
fn rect_pair(rng: &mut impl Rng, max_dim: usize) -> (HyperRect, HyperRect) {
    let d = rng.gen_range(1..=max_dim);
    (random_rect(rng, d), random_rect(rng, d))
}

/// The paper's five explicit case formulas collapse to the interval
/// Jaccard — all five cases, including degenerate intervals.
#[test]
fn five_case_ratio_equals_interval_jaccard() {
    let mut rng = rng_for(0x6E0, 1);
    for _ in 0..CASES {
        let q = random_interval(&mut rng);
        let k = random_interval(&mut rng);
        let five = q.overlap_ratio(&k);
        let jac = q.jaccard(&k);
        assert!(
            (five - jac).abs() <= 1e-12 * jac.max(1.0),
            "five-case {five} vs jaccard {jac} for q={q:?} k={k:?}"
        );
    }
}

#[test]
fn overlap_ratio_is_bounded() {
    let mut rng = rng_for(0x6E0, 2);
    for _ in 0..CASES {
        let q = random_interval(&mut rng);
        let k = random_interval(&mut rng);
        let r = q.overlap_ratio(&k);
        assert!((0.0..=1.0).contains(&r), "ratio {r}");
    }
}

/// Jaccard is symmetric, so the five-case ratio must be too.
#[test]
fn overlap_ratio_is_symmetric() {
    let mut rng = rng_for(0x6E0, 3);
    for _ in 0..CASES {
        let q = random_interval(&mut rng);
        let k = random_interval(&mut rng);
        let a = q.overlap_ratio(&k);
        let b = k.overlap_ratio(&q);
        assert!((a - b).abs() <= 1e-12, "asymmetry {a} vs {b}");
    }
}

#[test]
fn disjoint_case_iff_zero_ratio_or_touching() {
    let mut rng = rng_for(0x6E0, 4);
    for _ in 0..CASES {
        let q = random_interval(&mut rng);
        let k = random_interval(&mut rng);
        match q.overlap_case(&k) {
            OverlapCase::Disjoint => assert_eq!(q.overlap_ratio(&k), 0.0),
            _ => {
                // Non-disjoint cases may still produce 0 when the shared
                // region is a single point (measure zero).
                assert!(q.overlap_ratio(&k) >= 0.0);
            }
        }
    }
}

#[test]
fn intersection_is_contained_in_both() {
    let mut rng = rng_for(0x6E0, 5);
    for _ in 0..CASES {
        let (x, y) = rect_pair(&mut rng, 5);
        if let Some(i) = x.intersection(&y) {
            for (d, iv) in i.intervals().iter().enumerate() {
                assert!(x.interval(d).contains_interval(iv));
                assert!(y.interval(d).contains_interval(iv));
            }
        }
    }
}

#[test]
fn hull_contains_both() {
    let mut rng = rng_for(0x6E0, 6);
    for _ in 0..CASES {
        let (x, y) = rect_pair(&mut rng, 5);
        let h = x.hull(&y);
        for d in 0..x.dim() {
            assert!(h.interval(d).contains_interval(x.interval(d)));
            assert!(h.interval(d).contains_interval(y.interval(d)));
        }
    }
}

#[test]
fn overlap_rate_bounded_and_symmetric() {
    let mut rng = rng_for(0x6E0, 7);
    for _ in 0..CASES {
        let (q, k) = rect_pair(&mut rng, 6);
        let a = q.overlap_rate(&k);
        let b = k.overlap_rate(&q);
        assert!((0.0..=1.0 + 1e-12).contains(&a));
        assert!((a - b).abs() <= 1e-12);
    }
}

#[test]
fn volume_overlap_never_exceeds_eq2_rate_by_am_gm() {
    // vol ratio = prod(h_d') with each factor <= the per-dim jaccard,
    // and Eq.2 is the arithmetic mean of per-dim jaccards, so by
    // AM >= GM the volume score never exceeds the Eq.2 score.
    let mut rng = rng_for(0x6E0, 8);
    for _ in 0..CASES {
        let (q, k) = rect_pair(&mut rng, 6);
        assert!(q.volume_overlap(&k) <= q.overlap_rate(&k) + 1e-9);
    }
}

#[test]
fn self_overlap_is_full() {
    let mut rng = rng_for(0x6E0, 9);
    for _ in 0..CASES {
        let d = rng.gen_range(1..=6usize);
        let r = random_rect(&mut rng, d);
        assert!((r.overlap_rate(&r) - 1.0).abs() <= 1e-12);
    }
}

#[test]
fn bounding_box_contains_every_point() {
    let mut rng = rng_for(0x6E0, 10);
    for _ in 0..CASES {
        let n = rng.gen_range(1..=40usize);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-1e6..1e6)).collect())
            .collect();
        let rect = HyperRect::bounding_points(pts.iter().map(|p| p.as_slice())).unwrap();
        for p in &pts {
            assert!(rect.contains_point(p));
        }
    }
}

#[test]
fn query_selectivity_counts_match_filter() {
    let mut rng = rng_for(0x6E0, 11);
    for _ in 0..CASES {
        let n = rng.gen_range(0..=60usize);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..2).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let x0 = rng.gen_range(-10.0..10.0);
        let xl = rng.gen_range(0.0..20.0);
        let y0 = rng.gen_range(-10.0..10.0);
        let yl = rng.gen_range(0.0..20.0);
        let q = Query::from_boundary_vec(0, &[x0, x0 + xl, y0, y0 + yl]);
        let (inside, total) = q.selectivity(pts.iter().map(|p| p.as_slice()));
        let idx = q.filter_indices(pts.iter().map(|p| p.as_slice()));
        assert_eq!(total, pts.len());
        assert_eq!(inside, idx.len());
        for i in idx {
            assert!(q.region().contains_point(&pts[i]));
        }
    }
}
