//! Property-based tests for the overlap geometry.
//!
//! The most important property in this file proves the design note in
//! DESIGN.md: the paper's explicit five-case overlap ratio equals the
//! interval Jaccard for every pair of intervals.

use geom::{HyperRect, Interval, OverlapCase, Query};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-1e6_f64..1e6, 0.0_f64..1e6).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn rect_strategy(max_dim: usize) -> impl Strategy<Value = HyperRect> {
    prop::collection::vec(interval_strategy(), 1..=max_dim).prop_map(HyperRect::new)
}

/// A pair of rects of equal dimensionality.
fn rect_pair(max_dim: usize) -> impl Strategy<Value = (HyperRect, HyperRect)> {
    (1..=max_dim).prop_flat_map(|d| {
        (
            prop::collection::vec(interval_strategy(), d).prop_map(HyperRect::new),
            prop::collection::vec(interval_strategy(), d).prop_map(HyperRect::new),
        )
    })
}

proptest! {
    /// The paper's five explicit case formulas collapse to the interval
    /// Jaccard — all five cases, including degenerate intervals.
    #[test]
    fn five_case_ratio_equals_interval_jaccard(q in interval_strategy(), k in interval_strategy()) {
        let five = q.overlap_ratio(&k);
        let jac = q.jaccard(&k);
        prop_assert!((five - jac).abs() <= 1e-12 * jac.max(1.0),
            "five-case {five} vs jaccard {jac} for q={q:?} k={k:?}");
    }

    #[test]
    fn overlap_ratio_is_bounded(q in interval_strategy(), k in interval_strategy()) {
        let r = q.overlap_ratio(&k);
        prop_assert!((0.0..=1.0).contains(&r), "ratio {r}");
    }

    /// Jaccard is symmetric, so the five-case ratio must be too.
    #[test]
    fn overlap_ratio_is_symmetric(q in interval_strategy(), k in interval_strategy()) {
        let a = q.overlap_ratio(&k);
        let b = k.overlap_ratio(&q);
        prop_assert!((a - b).abs() <= 1e-12, "asymmetry {a} vs {b}");
    }

    #[test]
    fn disjoint_case_iff_zero_ratio_or_touching(q in interval_strategy(), k in interval_strategy()) {
        match q.overlap_case(&k) {
            OverlapCase::Disjoint => prop_assert_eq!(q.overlap_ratio(&k), 0.0),
            _ => {
                // Non-disjoint cases may still produce 0 when the shared
                // region is a single point (measure zero).
                let r = q.overlap_ratio(&k);
                prop_assert!(r >= 0.0);
            }
        }
    }

    #[test]
    fn intersection_is_contained_in_both(a in rect_pair(5)) {
        let (x, y) = a;
        if let Some(i) = x.intersection(&y) {
            for (d, iv) in i.intervals().iter().enumerate() {
                prop_assert!(x.interval(d).contains_interval(iv));
                prop_assert!(y.interval(d).contains_interval(iv));
            }
        }
    }

    #[test]
    fn hull_contains_both(a in rect_pair(5)) {
        let (x, y) = a;
        let h = x.hull(&y);
        for d in 0..x.dim() {
            prop_assert!(h.interval(d).contains_interval(x.interval(d)));
            prop_assert!(h.interval(d).contains_interval(y.interval(d)));
        }
    }

    #[test]
    fn overlap_rate_bounded_and_symmetric(p in rect_pair(6)) {
        let (q, k) = p;
        let a = q.overlap_rate(&k);
        let b = k.overlap_rate(&q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        prop_assert!((a - b).abs() <= 1e-12);
    }

    #[test]
    fn volume_overlap_never_exceeds_eq2_rate_by_am_gm(p in rect_pair(6)) {
        // vol ratio = prod(h_d') with each factor <= the per-dim jaccard,
        // and Eq.2 is the arithmetic mean of per-dim jaccards, so by
        // AM >= GM the volume score never exceeds the Eq.2 score.
        let (q, k) = p;
        prop_assert!(q.volume_overlap(&k) <= q.overlap_rate(&k) + 1e-9);
    }

    #[test]
    fn self_overlap_is_full(r in rect_strategy(6)) {
        prop_assert!((r.overlap_rate(&r) - 1.0).abs() <= 1e-12);
    }

    #[test]
    fn bounding_box_contains_every_point(
        pts in prop::collection::vec(prop::collection::vec(-1e6_f64..1e6, 3), 1..40)
    ) {
        let rect = HyperRect::bounding_points(pts.iter().map(|p| p.as_slice())).unwrap();
        for p in &pts {
            prop_assert!(rect.contains_point(p));
        }
    }

    #[test]
    fn query_selectivity_counts_match_filter(
        pts in prop::collection::vec(prop::collection::vec(-10.0_f64..10.0, 2), 0..60),
        b in (-10.0_f64..10.0, 0.0_f64..20.0, -10.0_f64..10.0, 0.0_f64..20.0)
    ) {
        let q = Query::from_boundary_vec(0, &[b.0, b.0 + b.1, b.2, b.2 + b.3]);
        let (inside, total) = q.selectivity(pts.iter().map(|p| p.as_slice()));
        let idx = q.filter_indices(pts.iter().map(|p| p.as_slice()));
        prop_assert_eq!(total, pts.len());
        prop_assert_eq!(inside, idx.len());
        for i in idx {
            prop_assert!(q.region().contains_point(&pts[i]));
        }
    }
}
