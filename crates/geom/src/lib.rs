//! Query/cluster overlap geometry for query-driven node selection.
//!
//! The paper (Aladwani et al., ICDE DASC 2023, §III-C) summarises each
//! k-means cluster by its per-dimension bounding box and expresses an
//! analytics query as a hyper-rectangle
//! `q = [q_1^min, q_1^max, ..., q_d^min, q_d^max]`. The *data overlapping
//! rate* between a cluster and a query is the mean over dimensions of a
//! per-dimension interval overlap ratio with five cases (the paper's
//! Fig. 3/4); this crate implements that ratio both as the explicit
//! five-case match and as the equivalent closed-form interval Jaccard,
//! plus the hyper-rectangle machinery built on top of it.
//!
//! * [`interval`] - 1-D intervals, the five overlap cases, and the ratio.
//! * [`rect`] - d-dimensional hyper-rectangles, `h_ik` (Eq. 2), volumes.
//! * [`query`] - analytics queries as bounded regions of the data space.
//! * [`index`] - a deterministic two-level spatial index for sublinear
//!   candidate generation over many rectangles.

pub mod index;
pub mod interval;
pub mod query;
pub mod rect;

pub use index::{GridConfig, Probe, SpatialIndex, SpatialIndexBuilder};
pub use interval::{Interval, OverlapCase};
pub use query::Query;
pub use rect::HyperRect;
