//! A deterministic spatial index over axis-aligned rectangles.
//!
//! The selection kernel asks one question per node: *does any dimension
//! of the node's summary hull intersect the query interval for that
//! dimension?* (Per-**axis** union, not full-rectangle intersection —
//! Eq. 2 overlap is the *mean* of per-dimension ratios, so a rectangle
//! disjoint on one axis can still support a query through the others.
//! Only a node disjoint on *every* axis is guaranteed to score exactly
//! zero.) This module answers that question sublinearly with a two-level
//! hierarchy:
//!
//! 1. **Domains** — items are laid out in **Morton (z-order)** of their
//!    rectangle centres and grouped into fixed-size contiguous domains
//!    of that order; each domain keeps per-dimension aggregated
//!    `lo`/`hi` bounds, so one comparison pair prunes a whole group of
//!    items at once. The spatial layout is load-bearing: under per-axis
//!    union semantics a domain is pruned only when it is disjoint from
//!    the query in *every* dimension, so domains must be tight in every
//!    dimension at once — push-order grouping over a scattered fleet
//!    gives each domain a space-covering hull and prunes nothing.
//! 2. **Grid** — per dimension, a 1-D uniform grid over the indexed
//!    range, each cell listing (in ascending order) the domains whose
//!    aggregated interval touches the cell. A probe bins the query
//!    interval, unions the touched cells per dimension, unions across
//!    dimensions, then verifies each surviving domain exactly.
//!
//! Item bounds are stored in SoA layout — one contiguous `lo` and `hi`
//! slice per dimension, in Morton slot order — so the final per-item
//! verify ([`SpatialIndex::verify_domain`]) is a branch-light slice
//! loop. The verify reports the *original* push-order ids (the slot →
//! id permutation is kept), so callers never see the internal layout.
//!
//! Everything is bulk-built and immutable; determinism is structural:
//! the Morton sort has a total key (quantised key, then push id), cells
//! are filled in ascending domain order, the probe's dedupe is a
//! boolean mark array scanned in ascending order, and the per-item loop
//! walks slots ascending. No hashing, no pointers, no iteration-order
//! dependence — the same inputs always produce the same candidate list,
//! bit for bit, on any machine and any thread count.

use crate::rect::HyperRect;

/// Tuning knobs for [`SpatialIndexBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Items per domain (the hierarchy's lower level). Each domain costs
    /// one aggregated bound pair per dimension; smaller domains prune
    /// tighter but make the grid level work harder.
    pub domain_size: usize,
    /// Grid cells per dimension; `0` picks `≈ √n_domains` automatically
    /// (balances cells scanned per probe against domains per cell).
    pub cells_per_dim: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            domain_size: 64,
            cells_per_dim: 0,
        }
    }
}

/// Per-dimension 1-D uniform grid over the indexed domains.
#[derive(Debug, Clone)]
struct Grid1D {
    /// Lower edge of the indexed range in this dimension.
    lo: f64,
    /// Upper edge (kept for the probe's fast miss test).
    hi: f64,
    /// Cell width (`> 0`; degenerate ranges collapse to one cell).
    width: f64,
    /// `cells[c]` = domains whose aggregated interval touches cell `c`,
    /// ascending.
    cells: Vec<Vec<u32>>,
}

impl Grid1D {
    /// The cell containing `x`, clamped to the valid range. Monotone in
    /// `x`, and the *same* function bins build values and probe bounds —
    /// that shared monotone binning is what makes the probed cell range
    /// a superset of every intersecting domain's cells.
    fn bin(&self, x: f64) -> usize {
        let c = ((x - self.lo) / self.width).floor();
        (c.max(0.0) as usize).min(self.cells.len() - 1)
    }
}

/// The outcome of [`SpatialIndex::probe`]: surviving domains plus the
/// query bounds (SoA, ready for [`SpatialIndex::verify_domain`]) and the
/// probe's work counters.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Domains with at least one dimension intersecting the query,
    /// ascending. Every item intersecting the query on some axis lives
    /// in one of these.
    pub domains: Vec<u32>,
    /// Query lower bounds, one per dimension.
    pub q_lo: Vec<f64>,
    /// Query upper bounds, one per dimension.
    pub q_hi: Vec<f64>,
    /// Grid cells visited across all dimensions.
    pub cells_probed: u64,
    /// Domains eliminated without touching any of their items.
    pub domains_pruned: u64,
}

/// An immutable two-level spatial index; see the module docs.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    dims: usize,
    len: usize,
    domain_size: usize,
    /// Per-dimension item bounds, SoA in Morton slot order:
    /// `item_lo[d][slot]` / `item_hi[d][slot]`.
    item_lo: Vec<Vec<f64>>,
    item_hi: Vec<Vec<f64>>,
    /// Slot → original push-order id.
    ids: Vec<u32>,
    /// Per-dimension aggregated domain bounds: `domain_lo[d][g]`.
    domain_lo: Vec<Vec<f64>>,
    domain_hi: Vec<Vec<f64>>,
    grids: Vec<Grid1D>,
}

/// Accumulates item rectangles (SoA from the start) for a bulk
/// [`SpatialIndexBuilder::build`].
#[derive(Debug, Clone)]
pub struct SpatialIndexBuilder {
    dims: usize,
    lo: Vec<Vec<f64>>,
    hi: Vec<Vec<f64>>,
}

impl SpatialIndexBuilder {
    /// A builder for `dims`-dimensional rectangles.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "spatial index needs at least one dimension");
        Self {
            dims,
            lo: vec![Vec::new(); dims],
            hi: vec![Vec::new(); dims],
        }
    }

    /// Like [`SpatialIndexBuilder::new`] with capacity reserved for `n`
    /// items, so pushing exactly `n` rectangles never reallocates.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        assert!(dims > 0, "spatial index needs at least one dimension");
        Self {
            dims,
            lo: vec![Vec::with_capacity(n); dims],
            hi: vec![Vec::with_capacity(n); dims],
        }
    }

    /// Appends the next item's bounding rectangle. Item ids are assigned
    /// by push order: the `i`-th push is item `i`.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn push(&mut self, rect: &HyperRect) {
        assert_eq!(
            rect.dim(),
            self.dims,
            "rect dim {} != index dim {}",
            rect.dim(),
            self.dims
        );
        for d in 0..self.dims {
            let iv = rect.interval(d);
            self.lo[d].push(iv.lo());
            self.hi[d].push(iv.hi());
        }
    }

    /// Number of items pushed so far.
    pub fn len(&self) -> usize {
        self.lo[0].len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bulk-builds the index. The SoA item arrays are moved, not copied,
    /// so the whole build allocates `O(len / domain_size)` domain bounds
    /// plus the grid cells — asymptotically below the item storage the
    /// builder already holds.
    ///
    /// # Panics
    /// Panics if no items were pushed or the config is degenerate.
    pub fn build(self, config: GridConfig) -> SpatialIndex {
        assert!(!self.is_empty(), "cannot build an index over zero items");
        assert!(config.domain_size > 0, "domain size must be non-zero");
        let dims = self.dims;
        let len = self.len();
        let domain_size = config.domain_size;
        let n_domains = len.div_ceil(domain_size);

        // Morton slot order (see module docs): quantise every item's
        // centre against the global per-dimension range, interleave the
        // bits, sort. Ties (and the degenerate all-equal case) fall back
        // to push order, so the permutation is a total, deterministic
        // function of the inputs.
        let mut global_lo = vec![f64::INFINITY; dims];
        let mut global_hi = vec![f64::NEG_INFINITY; dims];
        for d in 0..dims {
            for i in 0..len {
                global_lo[d] = global_lo[d].min(self.lo[d][i]);
                global_hi[d] = global_hi[d].max(self.hi[d][i]);
            }
        }
        let bits = (128 / dims).min(16) as u32;
        let levels = ((1u64 << bits) - 1) as f64;
        let mut quantised = vec![0u64; dims];
        let keys: Vec<u128> = (0..len)
            .map(|i| {
                for d in 0..dims {
                    let span = global_hi[d] - global_lo[d];
                    let t = if span > 0.0 {
                        let centre = (self.lo[d][i] + self.hi[d][i]) * 0.5;
                        ((centre - global_lo[d]) / span).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    quantised[d] = (t * levels) as u64;
                }
                let mut key = 0u128;
                for b in (0..bits).rev() {
                    for &q in &quantised {
                        key = (key << 1) | u128::from((q >> b) & 1);
                    }
                }
                key
            })
            .collect();
        let mut ids: Vec<u32> = (0..len as u32).collect();
        ids.sort_unstable_by_key(|&i| (keys[i as usize], i));

        let mut item_lo = vec![Vec::with_capacity(len); dims];
        let mut item_hi = vec![Vec::with_capacity(len); dims];
        for d in 0..dims {
            for &i in &ids {
                item_lo[d].push(self.lo[d][i as usize]);
                item_hi[d].push(self.hi[d][i as usize]);
            }
        }

        let mut domain_lo = vec![Vec::with_capacity(n_domains); dims];
        let mut domain_hi = vec![Vec::with_capacity(n_domains); dims];
        for d in 0..dims {
            for g in 0..n_domains {
                let start = g * domain_size;
                let end = (start + domain_size).min(len);
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for i in start..end {
                    lo = lo.min(item_lo[d][i]);
                    hi = hi.max(item_hi[d][i]);
                }
                domain_lo[d].push(lo);
                domain_hi[d].push(hi);
            }
        }

        let cells_per_dim = if config.cells_per_dim > 0 {
            config.cells_per_dim
        } else {
            // ≈ √n_domains cells: a probe over a small query interval
            // then visits O(√G) cells each holding O(√G) domains.
            ((n_domains as f64).sqrt().ceil() as usize).clamp(1, 65_536)
        };
        let grids = (0..dims)
            .map(|d| {
                let lo = domain_lo[d].iter().copied().fold(f64::INFINITY, f64::min);
                let hi = domain_hi[d]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                let span = hi - lo;
                // Degenerate range (all bounds equal): one cell holds
                // everything and any positive width keeps bin() total.
                let (cells_n, width) = if span > 0.0 {
                    (cells_per_dim, span / cells_per_dim as f64)
                } else {
                    (1, 1.0)
                };
                let mut grid = Grid1D {
                    lo,
                    hi,
                    width,
                    cells: vec![Vec::new(); cells_n],
                };
                for g in 0..n_domains {
                    let first = grid.bin(domain_lo[d][g]);
                    let last = grid.bin(domain_hi[d][g]);
                    for cell in &mut grid.cells[first..=last] {
                        cell.push(g as u32);
                    }
                }
                grid
            })
            .collect();

        SpatialIndex {
            dims,
            len,
            domain_size,
            item_lo,
            item_hi,
            ids,
            domain_lo,
            domain_hi,
            grids,
        }
    }
}

impl SpatialIndex {
    /// Dimensionality of the indexed rectangles.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// An index is never empty (the builder rejects zero items).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of domains (upper hierarchy level).
    pub fn n_domains(&self) -> usize {
        self.domain_lo[0].len()
    }

    /// Items per domain.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The *slot* range `[start, end)` of a domain (Morton layout;
    /// translate slots to push-order ids via [`SpatialIndex::verify_domain`]).
    pub fn domain_items(&self, domain: u32) -> (usize, usize) {
        let start = domain as usize * self.domain_size;
        (start, (start + self.domain_size).min(self.len))
    }

    /// Grid-level probe: returns every domain with at least one
    /// dimension whose aggregated interval intersects the query's —
    /// ascending, exact at the domain level (grid false positives are
    /// re-checked against the aggregated bounds before surviving).
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn probe(&self, query: &HyperRect) -> Probe {
        assert_eq!(
            query.dim(),
            self.dims,
            "query dim {} != index dim {}",
            query.dim(),
            self.dims
        );
        let q_lo: Vec<f64> = (0..self.dims).map(|d| query.interval(d).lo()).collect();
        let q_hi: Vec<f64> = (0..self.dims).map(|d| query.interval(d).hi()).collect();
        let n_domains = self.n_domains();
        let mut marked = vec![false; n_domains];
        let mut cells_probed = 0u64;
        for (d, grid) in self.grids.iter().enumerate() {
            // The query misses the whole indexed range in this
            // dimension: no domain can intersect it here.
            if q_hi[d] < grid.lo || q_lo[d] > grid.hi {
                continue;
            }
            let first = grid.bin(q_lo[d].max(grid.lo));
            let last = grid.bin(q_hi[d].min(grid.hi));
            for cell in &grid.cells[first..=last] {
                cells_probed += 1;
                for &g in cell {
                    // Exact domain-level test (the cell is conservative):
                    // intersect in *this* dimension, touching included —
                    // matching `Interval::intersects`.
                    let gi = g as usize;
                    if self.domain_lo[d][gi] <= q_hi[d] && self.domain_hi[d][gi] >= q_lo[d] {
                        marked[gi] = true;
                    }
                }
            }
        }
        let domains: Vec<u32> = (0..n_domains as u32)
            .filter(|&g| marked[g as usize])
            .collect();
        let domains_pruned = (n_domains - domains.len()) as u64;
        Probe {
            domains,
            q_lo,
            q_hi,
            cells_probed,
            domains_pruned,
        }
    }

    /// Item-level verify for one domain: appends the **original
    /// push-order id** of every item whose bounds intersect the query
    /// interval in **at least one** dimension. The inner loop is a
    /// branch-light OR-accumulation over the SoA slices, walked in slot
    /// order — so the output order is deterministic but *not* globally
    /// ascending across domains; sort the concatenation if the caller's
    /// contract needs ascending ids.
    pub fn verify_domain(&self, domain: u32, q_lo: &[f64], q_hi: &[f64], out: &mut Vec<u32>) {
        let (start, end) = self.domain_items(domain);
        for i in start..end {
            let mut hit = false;
            for d in 0..self.dims {
                hit |= self.item_lo[d][i] <= q_hi[d] && self.item_hi[d][i] >= q_lo[d];
            }
            if hit {
                out.push(self.ids[i]);
            }
        }
    }

    /// Serial convenience: probe then verify every surviving domain,
    /// returning the candidate item list in ascending push-order id and
    /// the probe's work counters. Parallel callers should
    /// [`SpatialIndex::probe`] once and fan
    /// [`SpatialIndex::verify_domain`] out per domain instead.
    pub fn candidates(&self, query: &HyperRect) -> (Vec<u32>, Probe) {
        let probe = self.probe(query);
        let mut out = Vec::new();
        for &g in &probe.domains {
            self.verify_domain(g, &probe.q_lo, &probe.q_hi, &mut out);
        }
        out.sort_unstable();
        (out, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    /// xorshift64*: enough randomness for test geometry, zero deps.
    struct TestRng(u64);

    impl TestRng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn rect2(x0: f64, x1: f64, y0: f64, y1: f64) -> HyperRect {
        HyperRect::new(vec![Interval::new(x0, x1), Interval::new(y0, y1)])
    }

    fn random_rects(n: usize, seed: u64) -> Vec<HyperRect> {
        let mut rng = TestRng(seed | 1);
        (0..n)
            .map(|_| {
                let cx = rng.next_f64() * 100.0;
                let cy = rng.next_f64() * 100.0;
                let hx = rng.next_f64() * 3.0;
                let hy = rng.next_f64() * 3.0;
                rect2(cx - hx, cx + hx, cy - hy, cy + hy)
            })
            .collect()
    }

    /// The reference predicate: intersects the query in ≥ 1 dimension.
    fn brute_force(rects: &[HyperRect], query: &HyperRect) -> Vec<u32> {
        rects
            .iter()
            .enumerate()
            .filter(|(_, r)| (0..r.dim()).any(|d| r.interval(d).intersects(query.interval(d))))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn build(rects: &[HyperRect], config: GridConfig) -> SpatialIndex {
        let mut b = SpatialIndexBuilder::with_capacity(rects[0].dim(), rects.len());
        for r in rects {
            b.push(r);
        }
        b.build(config)
    }

    #[test]
    fn candidates_match_brute_force_per_axis_union() {
        let rects = random_rects(500, 42);
        let index = build(&rects, GridConfig::default());
        let mut rng = TestRng(7);
        for _ in 0..50 {
            let cx = rng.next_f64() * 110.0 - 5.0;
            let cy = rng.next_f64() * 110.0 - 5.0;
            let q = rect2(cx, cx + 8.0, cy, cy + 8.0);
            assert_eq!(index.candidates(&q).0, brute_force(&rects, &q));
        }
    }

    #[test]
    fn exotic_grid_shapes_stay_exact() {
        let rects = random_rects(97, 3);
        for config in [
            GridConfig {
                domain_size: 1,
                cells_per_dim: 0,
            },
            GridConfig {
                domain_size: 7,
                cells_per_dim: 1,
            },
            GridConfig {
                domain_size: 500, // one domain swallowing everything
                cells_per_dim: 3,
            },
        ] {
            let index = build(&rects, config);
            let q = rect2(20.0, 35.0, 40.0, 55.0);
            assert_eq!(index.candidates(&q).0, brute_force(&rects, &q));
        }
    }

    #[test]
    fn disjoint_on_every_axis_yields_nothing() {
        let rects = random_rects(200, 9);
        let index = build(&rects, GridConfig::default());
        // All data lives in roughly [-3, 103]^2.
        let q = rect2(500.0, 510.0, 500.0, 510.0);
        let (cands, probe) = index.candidates(&q);
        assert!(cands.is_empty());
        assert_eq!(probe.domains_pruned, index.n_domains() as u64);
    }

    #[test]
    fn one_axis_overlap_is_a_candidate() {
        // Disjoint in y but overlapping in x: Eq. 2 still scores it, so
        // it must be a candidate (full-rectangle pruning would be wrong).
        let rects = vec![rect2(0.0, 10.0, 0.0, 10.0)];
        let index = build(&rects, GridConfig::default());
        let q = rect2(5.0, 8.0, 1000.0, 1001.0);
        assert_eq!(index.candidates(&q).0, vec![0]);
    }

    #[test]
    fn touching_bounds_count_as_intersecting() {
        // Interval::intersects treats shared endpoints as intersecting;
        // the index must agree or candidates diverge from the kernel.
        let rects = vec![rect2(0.0, 10.0, 0.0, 10.0)];
        let index = build(&rects, GridConfig::default());
        let q = rect2(10.0, 20.0, 10.0, 20.0);
        assert_eq!(index.candidates(&q).0, vec![0]);
    }

    #[test]
    fn degenerate_space_collapses_to_one_cell() {
        // Every rect is the same point: spans are zero in both dims.
        let rects = vec![rect2(5.0, 5.0, 5.0, 5.0); 10];
        let index = build(&rects, GridConfig::default());
        assert_eq!(index.candidates(&rect2(0.0, 9.0, 0.0, 9.0)).0.len(), 10);
        assert!(index
            .candidates(&rect2(90.0, 99.0, 90.0, 99.0))
            .0
            .is_empty());
    }

    #[test]
    fn probe_counters_account_for_pruning() {
        let rects = random_rects(1000, 11);
        let index = build(
            &rects,
            GridConfig {
                domain_size: 16,
                cells_per_dim: 0,
            },
        );
        let q = rect2(10.0, 14.0, 10.0, 14.0);
        let (cands, probe) = index.candidates(&q);
        assert_eq!(
            probe.domains.len() + probe.domains_pruned as usize,
            index.n_domains()
        );
        assert!(probe.cells_probed > 0);
        // A small query over scattered data must actually prune.
        assert!(probe.domains_pruned > 0);
        assert_eq!(cands, brute_force(&rects, &q));
    }

    #[test]
    fn domains_partition_the_items() {
        let rects = random_rects(130, 5);
        let index = build(
            &rects,
            GridConfig {
                domain_size: 32,
                cells_per_dim: 0,
            },
        );
        assert_eq!(index.n_domains(), 5); // ceil(130 / 32)
        let mut covered = 0;
        for g in 0..index.n_domains() as u32 {
            let (start, end) = index.domain_items(g);
            assert_eq!(start, g as usize * 32);
            covered += end - start;
        }
        assert_eq!(covered, index.len());
    }

    #[test]
    fn morton_layout_prunes_scattered_fleets() {
        // The regression this layout exists for: scattered tight rects,
        // narrow query. Push-order domains would have space-covering
        // hulls and prune nothing; the Morton layout must prune most of
        // the fleet at the domain level.
        let rects = random_rects(4096, 21);
        let index = build(
            &rects,
            GridConfig {
                domain_size: 16,
                cells_per_dim: 0,
            },
        );
        let q = rect2(40.0, 44.0, 40.0, 44.0);
        let (cands, probe) = index.candidates(&q);
        assert_eq!(cands, brute_force(&rects, &q));
        assert!(
            probe.domains_pruned as usize > index.n_domains() / 2,
            "only {} of {} domains pruned — spatial layout is not grouping",
            probe.domains_pruned,
            index.n_domains()
        );
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn empty_build_rejected() {
        SpatialIndexBuilder::new(2).build(GridConfig::default());
    }

    #[test]
    #[should_panic(expected = "rect dim")]
    fn wrong_dim_rejected() {
        let mut b = SpatialIndexBuilder::new(2);
        b.push(&HyperRect::new(vec![Interval::new(0.0, 1.0)]));
    }
}
