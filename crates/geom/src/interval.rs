//! Closed 1-D intervals and the paper's five-case overlap ratio.

/// A closed interval `[lo, hi]` on one data dimension.
///
/// `lo == hi` (a degenerate, point interval) is allowed: it arises
/// naturally when a cluster contains a single sample or a constant
/// feature.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// How a query interval relates to a cluster interval on one dimension.
///
/// These are exactly the five cases of the paper's Fig. 3 and Fig. 4
/// (Fig. 4's two sub-figures are both [`OverlapCase::Disjoint`]; the fifth
/// case — cluster strictly inside the query — is stated in the text as
/// "five overlapping cases" and recovered here by symmetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OverlapCase {
    /// Fig. 3a: both query boundaries lie inside the cluster boundaries.
    QueryInsideCluster,
    /// Fig. 3b: only the query's minimum boundary lies inside the cluster
    /// (the query extends beyond the cluster's maximum).
    PartialLow,
    /// Fig. 3c: only the query's maximum boundary lies inside the cluster
    /// (the query starts below the cluster's minimum).
    PartialHigh,
    /// The cluster lies entirely inside the query.
    ClusterInsideQuery,
    /// Fig. 4: the intervals do not intersect.
    Disjoint,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "interval bounds must be finite ({lo}, {hi})"
        );
        assert!(
            lo <= hi,
            "interval lower bound {lo} exceeds upper bound {hi}"
        );
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// The smallest interval containing every *finite* value in `xs`.
    ///
    /// Non-finite values (NaN and ±∞) are skipped: an interval's bounds
    /// must be finite (see [`Interval::new`]), so an infinite sample can
    /// contribute no usable bound. Returns `None` if `xs` is empty or
    /// holds no finite value.
    pub fn bounding(xs: &[f64]) -> Option<Self> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            if !x.is_finite() {
                continue;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        (lo <= hi).then(|| Self::new(lo, hi))
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Length `hi - lo` (0 for a point interval).
    #[inline]
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    #[inline]
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// True when `x` lies in `[lo, hi]`.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True when `other` lies entirely within `self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// True when the two intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection interval, or `None` when disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// The smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Grows the interval by `margin` on both sides.
    ///
    /// # Panics
    /// Panics if `margin` is negative enough to invert the interval.
    pub fn expanded(&self, margin: f64) -> Interval {
        Interval::new(self.lo - margin, self.hi + margin)
    }

    /// Classifies the relation of a *query* interval (`self`) against a
    /// *cluster* interval per the paper's five cases.
    ///
    /// Boundary ties resolve toward containment: a query exactly equal to
    /// the cluster is [`OverlapCase::QueryInsideCluster`] (the ratio is 1
    /// either way).
    pub fn overlap_case(&self, cluster: &Interval) -> OverlapCase {
        let q = self;
        let k = cluster;
        if !q.intersects(k) {
            OverlapCase::Disjoint
        } else if k.contains_interval(q) {
            OverlapCase::QueryInsideCluster
        } else if q.contains_interval(k) {
            OverlapCase::ClusterInsideQuery
        } else if q.lo >= k.lo {
            // q starts inside the cluster and ends above it (Fig. 3b).
            OverlapCase::PartialLow
        } else {
            // q starts below the cluster and ends inside it (Fig. 3c).
            OverlapCase::PartialHigh
        }
    }

    /// The paper's per-dimension overlap ratio `h_{ik}^d`, written as the
    /// explicit five-case expressions of §III-C:
    ///
    /// * query inside cluster: `(q_max − q_min) / (k_max − k_min)`
    /// * partial low (Fig. 3b): `(k_max − q_min) / (q_max − k_min)`
    /// * partial high (Fig. 3c): `(q_max − k_min) / (k_max − q_min)`
    /// * cluster inside query: `(k_max − k_min) / (q_max − q_min)`
    /// * disjoint: `0`
    ///
    /// Every case is the interval Jaccard `|q∩k| / |span(q∪k)|` (see
    /// [`Interval::jaccard`], property-tested equal), except that
    /// degenerate (zero-width) intervals are defined by membership, not
    /// measure: a point interval that lies inside the other interval
    /// overlaps fully (1), otherwise not at all (0). A point query asks
    /// for exactly one value; a cluster that covers that value can serve
    /// it completely, and a single-valued cluster dimension (one sample,
    /// or a constant feature) inside the query range is fully requested.
    /// Without this branch the five-case formulas divide 0/0 for, e.g., a
    /// point query sharing a boundary with a point cluster — the NaN then
    /// poisons every downstream ranking sort.
    pub fn overlap_ratio(&self, cluster: &Interval) -> f64 {
        let q = self;
        let k = cluster;
        if q.length() == 0.0 || k.length() == 0.0 {
            return if q.intersects(k) { 1.0 } else { 0.0 };
        }
        // Both lengths are strictly positive from here on, so every
        // denominator below is strictly positive (the partial cases span
        // at least the longer of the two overlapping intervals): the
        // divisions can produce neither NaN nor infinity.
        match q.overlap_case(k) {
            OverlapCase::Disjoint => 0.0,
            OverlapCase::QueryInsideCluster => q.length() / k.length(),
            OverlapCase::PartialLow => (k.hi - q.lo) / (q.hi - k.lo),
            OverlapCase::PartialHigh => (q.hi - k.lo) / (k.hi - q.lo),
            OverlapCase::ClusterInsideQuery => k.length() / q.length(),
        }
    }

    /// Interval Jaccard: `|q ∩ k| / |hull(q, k)|`, the closed form of
    /// [`Interval::overlap_ratio`] — including the membership rule for
    /// degenerate intervals (a point inside the other interval gives 1,
    /// outside gives 0), so the two stay property-test equal.
    ///
    /// Identical intervals give 1 (including identical points); disjoint
    /// intervals give 0; two distinct non-degenerate intervals touching
    /// at a single point give 0 (a measure-zero shared range).
    pub fn jaccard(&self, other: &Interval) -> f64 {
        if self.length() == 0.0 || other.length() == 0.0 {
            return if self.intersects(other) { 1.0 } else { 0.0 };
        }
        match self.intersection(other) {
            None => 0.0,
            Some(inter) => inter.length() / self.hull(other).length(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(-1.0, 3.0);
        assert_eq!(i.lo(), -1.0);
        assert_eq!(i.hi(), 3.0);
        assert_eq!(i.length(), 4.0);
        assert_eq!(i.center(), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_rejected() {
        Interval::new(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_bounds_rejected() {
        Interval::new(f64::NEG_INFINITY, 0.0);
    }

    #[test]
    fn bounding_skips_nans_and_handles_empty() {
        assert_eq!(Interval::bounding(&[]), None);
        assert_eq!(Interval::bounding(&[f64::NAN]), None);
        assert_eq!(
            Interval::bounding(&[2.0, f64::NAN, -1.0]),
            Some(Interval::new(-1.0, 2.0))
        );
        assert_eq!(Interval::bounding(&[5.0]), Some(Interval::point(5.0)));
    }

    /// Regression: `bounding` used to skip only NaN, so an infinite
    /// sample flowed into `Interval::new` and tripped its finiteness
    /// assert (a panic deep inside summary construction). Non-finite
    /// values must be skipped like NaN, with `None` when nothing finite
    /// remains.
    #[test]
    fn bounding_skips_non_finite_values() {
        assert_eq!(Interval::bounding(&[f64::INFINITY]), None);
        assert_eq!(
            Interval::bounding(&[f64::NEG_INFINITY, f64::INFINITY]),
            None
        );
        assert_eq!(
            Interval::bounding(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
            None
        );
        assert_eq!(
            Interval::bounding(&[1.0, f64::INFINITY]),
            Some(Interval::point(1.0))
        );
        assert_eq!(
            Interval::bounding(&[f64::NEG_INFINITY, -2.0, 7.0, f64::NAN]),
            Some(Interval::new(-2.0, 7.0))
        );
    }

    #[test]
    fn containment_and_intersection() {
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(2.0, 4.0);
        assert!(a.contains_interval(&b));
        assert!(!b.contains_interval(&a));
        assert_eq!(a.intersection(&b), Some(b));
        assert_eq!(a.hull(&b), a);
        assert!(a.contains(0.0) && a.contains(10.0) && !a.contains(10.1));
    }

    #[test]
    fn disjoint_intersection_is_none() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.intersection(&b), None);
        assert!(!a.intersects(&b));
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
    }

    #[test]
    fn touching_intervals_intersect_at_a_point() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Interval::point(1.0)));
        // Measure-zero intersection contributes no overlap.
        assert_eq!(a.overlap_ratio(&b), 0.0);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    // ---- the five paper cases (Fig. 3 and Fig. 4) ----

    #[test]
    fn case1_query_inside_cluster() {
        let q = Interval::new(2.0, 4.0);
        let k = Interval::new(0.0, 10.0);
        assert_eq!(q.overlap_case(&k), OverlapCase::QueryInsideCluster);
        // (q_max - q_min) / (k_max - k_min) = 2/10
        assert_eq!(q.overlap_ratio(&k), 0.2);
    }

    #[test]
    fn case2_partial_low_only_query_min_inside() {
        let q = Interval::new(6.0, 14.0);
        let k = Interval::new(0.0, 10.0);
        assert_eq!(q.overlap_case(&k), OverlapCase::PartialLow);
        // (k_max - q_min) / (q_max - k_min) = 4/14
        assert!((q.overlap_ratio(&k) - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn case3_partial_high_only_query_max_inside() {
        let q = Interval::new(-4.0, 4.0);
        let k = Interval::new(0.0, 10.0);
        assert_eq!(q.overlap_case(&k), OverlapCase::PartialHigh);
        // (q_max - k_min) / (k_max - q_min) = 4/14
        assert!((q.overlap_ratio(&k) - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn case4_disjoint_both_directions() {
        let k = Interval::new(0.0, 10.0);
        let right = Interval::new(11.0, 12.0); // q_min > k_max (Fig. 4a)
        let left = Interval::new(-5.0, -1.0); // q_max < k_min (Fig. 4b)
        assert_eq!(right.overlap_case(&k), OverlapCase::Disjoint);
        assert_eq!(left.overlap_case(&k), OverlapCase::Disjoint);
        assert_eq!(right.overlap_ratio(&k), 0.0);
        assert_eq!(left.overlap_ratio(&k), 0.0);
    }

    #[test]
    fn case5_cluster_inside_query() {
        let q = Interval::new(-10.0, 20.0);
        let k = Interval::new(0.0, 10.0);
        assert_eq!(q.overlap_case(&k), OverlapCase::ClusterInsideQuery);
        // (k_max - k_min) / (q_max - q_min) = 10/30
        assert!((q.overlap_ratio(&k) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_intervals_overlap_fully() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a.overlap_case(&a), OverlapCase::QueryInsideCluster);
        assert_eq!(a.overlap_ratio(&a), 1.0);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn identical_point_intervals_overlap_fully() {
        let p = Interval::point(3.0);
        assert_eq!(p.overlap_ratio(&p), 1.0);
        assert_eq!(p.jaccard(&p), 1.0);
    }

    /// Degenerate semantics: a point query inside a wide cluster is
    /// fully served (the cluster covers the one requested value), so
    /// the ratio is 1, not the measure-theoretic 0.
    #[test]
    fn point_query_inside_wide_cluster_overlaps_fully() {
        let p = Interval::point(5.0);
        let k = Interval::new(0.0, 10.0);
        assert_eq!(p.overlap_case(&k), OverlapCase::QueryInsideCluster);
        assert_eq!(p.overlap_ratio(&k), 1.0);
        assert_eq!(p.jaccard(&k), 1.0);
    }

    /// Regression (degenerate-interval sweep): a single-valued cluster
    /// dimension — one sample, or a constant feature — must score 1
    /// inside the query range and 0 outside, never NaN. The boundary
    /// cases (point exactly on a query bound, point query on a point
    /// cluster) are the 0/0 shapes that used to be reachable.
    #[test]
    fn single_valued_cluster_dimension_never_yields_nan() {
        let q = Interval::new(0.0, 10.0);
        for (cluster, expected) in [
            (Interval::point(5.0), 1.0),  // inside
            (Interval::point(0.0), 1.0),  // on the low bound
            (Interval::point(10.0), 1.0), // on the high bound
            (Interval::point(-1.0), 0.0), // outside (below)
            (Interval::point(11.0), 0.0), // outside (above)
        ] {
            let r = q.overlap_ratio(&cluster);
            assert!(r.is_finite(), "NaN/inf for cluster {cluster:?}");
            assert_eq!(r, expected, "cluster {cluster:?}");
            // Symmetric: the degenerate interval as the query side.
            assert_eq!(cluster.overlap_ratio(&q), expected);
            assert_eq!(q.jaccard(&cluster), expected);
        }
        // Point query vs point cluster: 0/0 in every five-case formula.
        assert_eq!(
            Interval::point(3.0).overlap_ratio(&Interval::point(3.0)),
            1.0
        );
        assert_eq!(
            Interval::point(3.0).overlap_ratio(&Interval::point(4.0)),
            0.0
        );
        // Point sitting exactly on the boundary of a wide interval: the
        // PartialLow/PartialHigh formulas would divide 0 by the width
        // sum only by luck of case classification; the membership rule
        // makes the answer principled.
        assert_eq!(Interval::point(10.0).overlap_ratio(&q), 1.0);
    }

    #[test]
    fn ratio_is_bounded_by_one() {
        let q = Interval::new(0.0, 8.0);
        for (lo, hi) in [
            (0.0, 8.0),
            (2.0, 6.0),
            (-3.0, 5.0),
            (4.0, 20.0),
            (-100.0, 100.0),
        ] {
            let k = Interval::new(lo, hi);
            let r = q.overlap_ratio(&k);
            assert!(
                (0.0..=1.0).contains(&r),
                "ratio {r} for cluster [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn expanded_grows_both_sides() {
        assert_eq!(
            Interval::new(1.0, 2.0).expanded(0.5),
            Interval::new(0.5, 2.5)
        );
    }
}
