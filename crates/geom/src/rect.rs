//! d-dimensional hyper-rectangles and the data-overlapping rate (Eq. 2).

use crate::interval::Interval;

/// An axis-aligned hyper-rectangle: one [`Interval`] per data dimension.
///
/// Both cluster summaries (per-dimension min/max of the members) and
/// analytics queries are hyper-rectangles in the paper's formulation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HyperRect {
    dims: Vec<Interval>,
}

impl HyperRect {
    /// Builds a rectangle from per-dimension intervals.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<Interval>) -> Self {
        assert!(
            !dims.is_empty(),
            "hyper-rectangle needs at least one dimension"
        );
        Self { dims }
    }

    /// Builds a rectangle from the paper's flat boundary vector
    /// `[x_1^min, x_1^max, …, x_d^min, x_d^max]`.
    ///
    /// # Panics
    /// Panics if the vector is empty, has odd length, or any `min > max`.
    pub fn from_boundary_vec(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty() && bounds.len().is_multiple_of(2),
            "boundary vector must have positive even length, got {}",
            bounds.len()
        );
        let dims = bounds
            .chunks_exact(2)
            .map(|c| Interval::new(c[0], c[1]))
            .collect();
        Self::new(dims)
    }

    /// The bounding box of a set of points (each point a `dim()`-length
    /// slice row in `points`).
    ///
    /// Returns `None` when `points` is empty.
    pub fn bounding_points<'a>(mut points: impl Iterator<Item = &'a [f64]>) -> Option<Self> {
        let first = points.next()?;
        let mut lo = first.to_vec();
        let mut hi = first.to_vec();
        for p in points {
            assert_eq!(p.len(), lo.len(), "inconsistent point dimensionality");
            for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(p) {
                *l = l.min(x);
                *h = h.max(x);
            }
        }
        Some(Self::new(
            lo.into_iter()
                .zip(hi)
                .map(|(l, h)| Interval::new(l, h))
                .collect(),
        ))
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension intervals.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// Interval of dimension `d`.
    #[inline]
    pub fn interval(&self, d: usize) -> &Interval {
        &self.dims[d]
    }

    /// The paper's flat boundary vector `[x_1^min, x_1^max, …]`.
    pub fn to_boundary_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 * self.dims.len());
        for i in &self.dims {
            v.push(i.lo());
            v.push(i.hi());
        }
        v
    }

    /// Geometric centre.
    pub fn center(&self) -> Vec<f64> {
        self.dims.iter().map(Interval::center).collect()
    }

    /// Product of side lengths (0 when any side is degenerate).
    pub fn volume(&self) -> f64 {
        self.dims.iter().map(Interval::length).product()
    }

    /// True when the point lies inside (boundaries inclusive).
    ///
    /// # Panics
    /// Panics if `point.len() != dim()`.
    pub fn contains_point(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dim(), "point dimensionality mismatch");
        self.dims.iter().zip(point).all(|(i, &x)| i.contains(x))
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: &HyperRect) -> bool {
        assert_eq!(self.dim(), other.dim(), "rect dimensionality mismatch");
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.intersects(b))
    }

    /// The intersection rectangle, or `None` when disjoint on any axis.
    pub fn intersection(&self, other: &HyperRect) -> Option<HyperRect> {
        assert_eq!(self.dim(), other.dim(), "rect dimensionality mismatch");
        let dims: Option<Vec<Interval>> = self
            .dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| a.intersection(b))
            .collect();
        dims.map(HyperRect::new)
    }

    /// The smallest rectangle containing both.
    pub fn hull(&self, other: &HyperRect) -> HyperRect {
        assert_eq!(self.dim(), other.dim(), "rect dimensionality mismatch");
        HyperRect::new(
            self.dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        )
    }

    /// Grows every side by `margin`.
    pub fn expanded(&self, margin: f64) -> HyperRect {
        HyperRect::new(self.dims.iter().map(|i| i.expanded(margin)).collect())
    }

    /// The paper's data-overlapping rate (Eq. 2) of `self` (a *query*
    /// rectangle) against `cluster`:
    ///
    /// `h_ik = (1/d) Σ_d h_ik^d`
    ///
    /// where `h_ik^d` is the five-case per-dimension ratio
    /// ([`Interval::overlap_ratio`]). Always in `[0, 1]`.
    pub fn overlap_rate(&self, cluster: &HyperRect) -> f64 {
        assert_eq!(self.dim(), cluster.dim(), "rect dimensionality mismatch");
        let sum: f64 = self
            .dims
            .iter()
            .zip(&cluster.dims)
            .map(|(q, k)| q.overlap_ratio(k))
            .sum();
        sum / self.dim() as f64
    }

    /// Volume-fraction overlap: `vol(q ∩ k) / vol(hull(q, k))`.
    ///
    /// This is the natural multiplicative alternative to the paper's
    /// additive Eq. 2 and is used only by the ablation benches. It is much
    /// harsher: one disjoint dimension zeroes the whole score.
    pub fn volume_overlap(&self, cluster: &HyperRect) -> f64 {
        match self.intersection(cluster) {
            None => 0.0,
            Some(inter) => {
                let hull_vol = self.hull(cluster).volume();
                if hull_vol > 0.0 {
                    inter.volume() / hull_vol
                } else {
                    1.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> HyperRect {
        HyperRect::from_boundary_vec(&[0.0, 1.0, 0.0, 1.0])
    }

    #[test]
    fn boundary_vec_round_trips() {
        let r = HyperRect::from_boundary_vec(&[0.0, 1.0, -2.0, 3.0]);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.to_boundary_vec(), vec![0.0, 1.0, -2.0, 3.0]);
        assert_eq!(r.center(), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive even length")]
    fn odd_boundary_vec_rejected() {
        HyperRect::from_boundary_vec(&[0.0, 1.0, 2.0]);
    }

    #[test]
    fn bounding_points_covers_all_points() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, -1.0], vec![1.0, 3.0]];
        let r = HyperRect::bounding_points(pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(r.to_boundary_vec(), vec![0.0, 2.0, -1.0, 5.0]);
        for p in &pts {
            assert!(r.contains_point(p));
        }
        assert!(HyperRect::bounding_points(std::iter::empty()).is_none());
    }

    #[test]
    fn volume_and_containment() {
        let r = HyperRect::from_boundary_vec(&[0.0, 2.0, 0.0, 3.0]);
        assert_eq!(r.volume(), 6.0);
        assert!(r.contains_point(&[0.0, 3.0]));
        assert!(!r.contains_point(&[2.1, 1.0]));
    }

    #[test]
    fn intersection_and_hull() {
        let a = unit_square();
        let b = HyperRect::from_boundary_vec(&[0.5, 2.0, 0.5, 2.0]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.to_boundary_vec(), vec![0.5, 1.0, 0.5, 1.0]);
        let h = a.hull(&b);
        assert_eq!(h.to_boundary_vec(), vec![0.0, 2.0, 0.0, 2.0]);
    }

    #[test]
    fn disjoint_on_one_axis_means_disjoint() {
        let a = unit_square();
        let b = HyperRect::from_boundary_vec(&[0.0, 1.0, 5.0, 6.0]);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.volume_overlap(&b), 0.0);
        // But the additive Eq. 2 rate still credits the overlapping axis.
        assert_eq!(a.overlap_rate(&b), 0.5);
    }

    #[test]
    fn overlap_rate_identical_rects_is_one() {
        let a = unit_square();
        assert_eq!(a.overlap_rate(&a), 1.0);
        assert_eq!(a.volume_overlap(&a), 1.0);
    }

    #[test]
    fn overlap_rate_averages_dimensions() {
        // dim 0: query [0,1] inside cluster [0,2] -> 0.5
        // dim 1: identical -> 1.0
        let q = HyperRect::from_boundary_vec(&[0.0, 1.0, 0.0, 1.0]);
        let k = HyperRect::from_boundary_vec(&[0.0, 2.0, 0.0, 1.0]);
        assert!((q.overlap_rate(&k) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn expanded_contains_original() {
        let r = unit_square().expanded(0.5);
        assert_eq!(r.to_boundary_vec(), vec![-0.5, 1.5, -0.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_dims_panic() {
        let a = unit_square();
        let b = HyperRect::from_boundary_vec(&[0.0, 1.0]);
        a.overlap_rate(&b);
    }
}
