//! Analytics queries as bounded regions of the data space.

use crate::rect::HyperRect;

/// An analytics query `q` (§III-C): a request to build a model over the
/// data falling inside a hyper-rectangular region of the feature space.
///
/// The paper expresses it as the boundary vector
/// `q = [q_1^min, q_1^max, …, q_d^min, q_d^max]`; [`Query::region`]
/// exposes it as a [`HyperRect`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Query {
    id: u64,
    region: HyperRect,
}

impl Query {
    /// Creates a query with an explicit identifier.
    pub fn new(id: u64, region: HyperRect) -> Self {
        Self { id, region }
    }

    /// Creates a query from the paper's flat boundary vector.
    ///
    /// # Panics
    /// Panics under the same conditions as
    /// [`HyperRect::from_boundary_vec`].
    pub fn from_boundary_vec(id: u64, bounds: &[f64]) -> Self {
        Self::new(id, HyperRect::from_boundary_vec(bounds))
    }

    /// The query identifier (position in the issued workload).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The requested data region.
    #[inline]
    pub fn region(&self) -> &HyperRect {
        &self.region
    }

    /// Query dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.region.dim()
    }

    /// The paper's boundary-vector form.
    pub fn to_boundary_vec(&self) -> Vec<f64> {
        self.region.to_boundary_vec()
    }

    /// Counts how many of `points` fall inside the query region and
    /// returns `(inside, total)`.
    ///
    /// Used to report per-query data selectivity (Fig. 9).
    pub fn selectivity<'a>(&self, points: impl Iterator<Item = &'a [f64]>) -> (usize, usize) {
        let mut inside = 0;
        let mut total = 0;
        for p in points {
            total += 1;
            if self.region.contains_point(p) {
                inside += 1;
            }
        }
        (inside, total)
    }

    /// Indices of the `points` that fall inside the query region.
    pub fn filter_indices<'a>(&self, points: impl Iterator<Item = &'a [f64]>) -> Vec<usize> {
        points
            .enumerate()
            .filter(|(_, p)| self.region.contains_point(p))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_vec_round_trip() {
        let q = Query::from_boundary_vec(7, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(q.id(), 7);
        assert_eq!(q.dim(), 2);
        assert_eq!(q.to_boundary_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn selectivity_counts_inside_points() {
        let q = Query::from_boundary_vec(0, &[0.0, 1.0, 0.0, 1.0]);
        let pts: Vec<Vec<f64>> = vec![
            vec![0.5, 0.5],  // inside
            vec![1.0, 1.0],  // boundary -> inside
            vec![2.0, 0.5],  // outside
            vec![-0.1, 0.5], // outside
        ];
        let (inside, total) = q.selectivity(pts.iter().map(|p| p.as_slice()));
        assert_eq!((inside, total), (2, 4));
    }

    #[test]
    fn filter_indices_returns_positions() {
        let q = Query::from_boundary_vec(0, &[0.0, 1.0]);
        let pts: Vec<Vec<f64>> = vec![vec![2.0], vec![0.5], vec![0.9], vec![-1.0]];
        assert_eq!(
            q.filter_indices(pts.iter().map(|p| p.as_slice())),
            vec![1, 2]
        );
    }

    #[test]
    fn empty_point_set_has_zero_selectivity() {
        let q = Query::from_boundary_vec(0, &[0.0, 1.0]);
        let (inside, total) = q.selectivity(std::iter::empty());
        assert_eq!((inside, total), (0, 0));
    }
}
