//! Query profiling on top of the span-tree buffer: folded stacks, a
//! hand-rolled SVG flamegraph, a slow-query flight recorder, and a
//! rolling-window SLO burn-rate tracker.
//!
//! The trace layer ([`crate::trace`]) records *what happened*; this
//! module answers the operator questions that raw span trees cannot:
//!
//! * **Where does the pipeline spend its time?** — [`aggregate`]
//!   collapses the buffered events into per-path statistics
//!   ([`Profile`]): total time, *self* time (total minus child spans)
//!   and call count for every `query;fedlearn.round;…` phase path.
//!   [`to_folded`] renders the classic `flamegraph.pl` folded format;
//!   [`to_svg`] renders a dependency-free SVG flamegraph directly.
//! * **Which queries were the slow ones?** — the [`FlightRecorder`]
//!   keeps the complete span tree of the top-K slowest queries
//!   (slowest first; equal durations break deterministically toward the
//!   lower query id), so the one-in-a-thousand outlier is still fully
//!   inspectable after the fact.
//! * **Are we meeting the latency objective?** — the [`SloTracker`]
//!   classifies every query against a configurable objective and keeps
//!   good/bad counters plus 1x/6x rolling-window burn rates (the
//!   multi-window alerting idiom: a burn rate of 1.0 means the error
//!   budget is being consumed exactly as provisioned).
//!
//! # Clocks and determinism
//!
//! [`aggregate`] works on either trace clock. On the **wall** clock the
//! durations are nanoseconds and include worker spans (`fedlearn.train`,
//! `par.task`); on the **logical** clock they are deterministic ticks,
//! so the folded export and the SVG are *byte-identical for any
//! `QENS_THREADS`* — the same contract as the Chrome trace export,
//! which is what lets `scripts/verify.sh` diff `results/profile.folded`
//! across thread counts. The SLO tracker always measures wall time (an
//! objective over logical ticks would be meaningless) and is therefore
//! excluded from the byte-stability contract.
//!
//! # Feeding the profiler
//!
//! [`QueryObserver::begin`] is the single integration point: the
//! federation leader opens one per query (before the trace query span,
//! so it drops after the span's `End` event is buffered) and the drop
//! handler updates the SLO tracker and offers the query's span tree to
//! the flight recorder. Everything is inert while both telemetry and
//! tracing are disabled.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::{write_f64, write_key, write_str, write_u64};
use crate::trace::{self, Clock, Phase, TraceEvent};

// ---------------------------------------------------------------------------
// Folded-stack aggregation
// ---------------------------------------------------------------------------

/// Per-path timing statistics (one row of a folded profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathStat {
    /// Time spent inside this path, children included.
    pub total: u64,
    /// Time spent inside this path *excluding* child spans.
    pub self_time: u64,
    /// How many spans completed on this path.
    pub count: u64,
}

/// An aggregated profile: phase path (`query;fedlearn.round;…`) →
/// [`PathStat`], in lexicographic path order (a `BTreeMap`, so every
/// rendering below is deterministic given the same events).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// The per-path statistics.
    pub paths: BTreeMap<String, PathStat>,
}

impl Profile {
    /// Sum of root-level (single-segment path) totals — the flamegraph
    /// denominator.
    pub fn root_total(&self) -> u64 {
        self.paths
            .iter()
            .filter(|(p, _)| !p.contains(';'))
            .map(|(_, s)| s.total)
            .sum()
    }

    /// The `n` paths with the largest self time, ties broken by path
    /// (deterministic).
    pub fn top_by_self(&self, n: usize) -> Vec<(&str, PathStat)> {
        let mut rows: Vec<(&str, PathStat)> =
            self.paths.iter().map(|(p, s)| (p.as_str(), *s)).collect();
        rows.sort_by(|a, b| b.1.self_time.cmp(&a.1.self_time).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }
}

/// One span still open while scanning the event stream.
struct OpenSpan {
    path: String,
    start: u64,
    child: u64,
    parent: u64,
}

/// Collapses a trace-event stream into a [`Profile`].
///
/// Parentage follows the recorded `parent` span id (not thread stacks),
/// so wall-mode worker spans whose recording thread had no open span
/// aggregate as root paths — exactly how a sampling profiler would see
/// them. Spans still open at the end of the stream (a truncated buffer)
/// are dropped; an `End` without a matching `Begin` is ignored.
pub fn aggregate(events: &[TraceEvent]) -> Profile {
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut paths: BTreeMap<String, PathStat> = BTreeMap::new();
    for e in events {
        match e.phase {
            Phase::Begin => {
                let path = match open.get(&e.parent) {
                    Some(p) => format!("{};{}", p.path, e.name),
                    None => e.name.to_string(),
                };
                open.insert(
                    e.span,
                    OpenSpan {
                        path,
                        start: e.ts,
                        child: 0,
                        parent: e.parent,
                    },
                );
            }
            Phase::End => {
                let Some(span) = open.remove(&e.span) else {
                    continue;
                };
                let dur = e.ts.saturating_sub(span.start);
                let stat = paths.entry(span.path).or_default();
                stat.total = stat.total.saturating_add(dur);
                stat.self_time = stat
                    .self_time
                    .saturating_add(dur.saturating_sub(span.child));
                stat.count += 1;
                if let Some(parent) = open.get_mut(&span.parent) {
                    parent.child = parent.child.saturating_add(dur);
                }
            }
            Phase::Instant => {}
        }
    }
    Profile { paths }
}

/// Renders a profile in the `flamegraph.pl` folded format: one
/// `path self_time` line per path, lexicographic path order, trailing
/// newline per line. Byte-stable given the same profile.
pub fn to_folded(profile: &Profile) -> String {
    let mut out = String::with_capacity(profile.paths.len() * 48);
    for (path, stat) in &profile.paths {
        out.push_str(path);
        out.push(' ');
        out.push_str(&stat.self_time.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// SVG flamegraph
// ---------------------------------------------------------------------------

/// Canvas width of the rendered flamegraph in CSS pixels.
const SVG_WIDTH: f64 = 1200.0;
/// Height of one frame row.
const SVG_ROW: f64 = 18.0;
/// Outer margin on every side.
const SVG_PAD: f64 = 10.0;
/// Vertical space reserved for the title line.
const SVG_TITLE: f64 = 26.0;
/// Frames narrower than this many pixels are skipped (unreadable).
const SVG_MIN_W: f64 = 0.3;

/// One node of the flamegraph tree, rebuilt from the flat path map.
#[derive(Debug, Default)]
struct FlameNode {
    stat: PathStat,
    children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    /// The width-determining value: a node's own total, or the sum of
    /// its children when the node itself never closed (truncated trace).
    fn value(&self) -> u64 {
        let from_children: u64 = self.children.values().map(FlameNode::value).sum();
        self.stat.total.max(from_children)
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

fn flame_tree(profile: &Profile) -> FlameNode {
    let mut root = FlameNode::default();
    for (path, stat) in &profile.paths {
        let mut node = &mut root;
        for seg in path.split(';') {
            node = node.children.entry(seg.to_string()).or_default();
        }
        node.stat = *stat;
    }
    root
}

/// FNV-1a over the frame name: the deterministic seed of the warm
/// flamegraph palette below.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frame_color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 200 + (h % 56);
    let g = 60 + ((h >> 8) % 130);
    let b = (h >> 16) % 60;
    format!("rgb({r},{g},{b})")
}

/// Escapes the five XML special characters.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_frame(
    out: &mut String,
    name: &str,
    path: &str,
    node: &FlameNode,
    root_total: u64,
    x: f64,
    depth: usize,
    unit: &str,
) {
    let value = node.value();
    if root_total == 0 {
        return;
    }
    let w = SVG_WIDTH * (value as f64 / root_total as f64);
    if w < SVG_MIN_W {
        return;
    }
    let y = SVG_TITLE + SVG_PAD + depth as f64 * SVG_ROW;
    let pct = 100.0 * value as f64 / root_total as f64;
    out.push_str(&format!(
        "<g><title>{} — total {} {}, self {} {}, {} call{} ({:.2}%)</title>\
         <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
         fill=\"{}\" rx=\"1\"/>",
        xml_escape(path),
        value,
        unit,
        node.stat.self_time,
        unit,
        node.stat.count,
        if node.stat.count == 1 { "" } else { "s" },
        pct,
        x + SVG_PAD,
        y,
        w,
        SVG_ROW - 1.0,
        frame_color(name),
    ));
    // A label fits roughly every 7 px per character at the 12px font.
    let chars = (w / 7.0) as usize;
    if chars >= 3 {
        let label: String = if name.len() <= chars {
            name.to_string()
        } else {
            let cut: String = name.chars().take(chars.saturating_sub(2)).collect();
            format!("{cut}..")
        };
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"12\" font-family=\"monospace\">{}</text>",
            x + SVG_PAD + 3.0,
            y + SVG_ROW - 5.0,
            xml_escape(&label),
        ));
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for (child_name, child) in &node.children {
        let child_path = format!("{path};{child_name}");
        render_frame(
            out,
            child_name,
            &child_path,
            child,
            root_total,
            cx,
            depth + 1,
            unit,
        );
        cx += SVG_WIDTH * (child.value() as f64 / root_total as f64);
    }
}

/// Renders the profile as a self-contained SVG flamegraph (icicle
/// layout: roots at the top, callees below). No external scripts or
/// fonts; frame order, colors and coordinate formatting are all pure
/// functions of the profile, so two identical profiles render
/// byte-identically.
pub fn to_svg(profile: &Profile, title: &str, unit: &str) -> String {
    let root = flame_tree(profile);
    let root_total = root.value();
    let depth = root.depth().saturating_sub(1).max(1);
    let height = SVG_TITLE + 2.0 * SVG_PAD + depth as f64 * SVG_ROW;
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {:.0} {height:.0}\">\n",
        SVG_WIDTH + 2.0 * SVG_PAD,
        SVG_WIDTH + 2.0 * SVG_PAD,
    ));
    out.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{:.0}\" height=\"{height:.0}\" fill=\"#fdf6ec\"/>\n",
        SVG_WIDTH + 2.0 * SVG_PAD,
    ));
    out.push_str(&format!(
        "<text x=\"{SVG_PAD:.0}\" y=\"18\" font-size=\"14\" font-family=\"monospace\">{} \
         (root total: {root_total} {unit})</text>\n",
        xml_escape(title),
    ));
    let mut x = 0.0;
    for (name, node) in &root.children {
        render_frame(&mut out, name, name, node, root_total, x, 0, unit);
        if root_total > 0 {
            x += SVG_WIDTH * (node.value() as f64 / root_total as f64);
        }
    }
    out.push_str("</svg>\n");
    out
}

// ---------------------------------------------------------------------------
// Slow-query flight recorder
// ---------------------------------------------------------------------------

/// Default retained-query capacity of the global flight recorder
/// (override with `QENS_FLIGHT_K`).
pub const DEFAULT_FLIGHT_K: usize = 8;

/// One retained slow query: its id, end-to-end duration (nanoseconds on
/// the wall clock, tick span on the logical clock) and complete span
/// tree.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// The query id.
    pub query_id: u64,
    /// End-to-end duration in the clock's unit.
    pub duration: u64,
    /// `"wall"` or `"logical"` — which clock produced `duration`.
    pub clock: &'static str,
    /// The query's complete buffered span tree (begin/end/instants).
    pub events: Vec<TraceEvent>,
}

/// A fixed-capacity recorder of the K slowest queries seen so far.
///
/// Ordering is deterministic: slowest first, equal durations break
/// toward the **lower query id** (so re-runs at different thread counts
/// under the logical clock retain an identical set, in an identical
/// order). Re-offering a retained query id keeps whichever observation
/// was slower.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    entries: Vec<FlightEntry>,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` queries (`cap` 0 records
    /// nothing).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained queries, slowest first.
    pub fn entries(&self) -> &[FlightEntry] {
        &self.entries
    }

    /// Offers one completed query. Returns `true` when the query is
    /// retained (inserted or updated), `false` when it was too fast.
    pub fn offer(&mut self, entry: FlightEntry) -> bool {
        if self.cap == 0 {
            return false;
        }
        let qid = entry.query_id;
        if let Some(existing) = self.entries.iter_mut().find(|e| e.query_id == qid) {
            if entry.duration > existing.duration {
                *existing = entry;
                self.sort();
            }
            return true;
        }
        self.entries.push(entry);
        self.sort();
        if self.entries.len() > self.cap {
            self.entries.truncate(self.cap);
            // The offered entry may itself have been the one evicted.
            return self.entries.iter().any(|e| e.query_id == qid);
        }
        true
    }

    fn sort(&mut self) {
        self.entries.sort_by(|a, b| {
            b.duration
                .cmp(&a.duration)
                .then(a.query_id.cmp(&b.query_id))
        });
    }

    /// Drops every retained query.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

fn flight_cap_from_env() -> usize {
    std::env::var("QENS_FLIGHT_K")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_FLIGHT_K)
}

fn recorder() -> MutexGuard<'static, FlightRecorder> {
    static RECORDER: OnceLock<Mutex<FlightRecorder>> = OnceLock::new();
    RECORDER
        .get_or_init(|| Mutex::new(FlightRecorder::new(flight_cap_from_env())))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// A copy of the globally retained slowest queries, slowest first.
pub fn slowest() -> Vec<FlightEntry> {
    recorder().entries().to_vec()
}

/// Renders the global flight recorder as a JSON document with a fixed
/// key order:
///
/// ```json
/// {"slowest":[{"query_id":3,"clock":"logical","duration":120,
///   "events":64,"phases":[{"path":"query;fedlearn.select","total":9,
///   "self":4,"count":1}, …]}, …]}
/// ```
///
/// Each entry's `phases` array is the folded profile of that single
/// query's span tree.
pub fn slowest_to_json() -> String {
    let entries = slowest();
    let mut out = String::with_capacity(256 + entries.len() * 256);
    out.push('{');
    write_key(&mut out, "slowest");
    out.push('[');
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_key(&mut out, "query_id");
        write_u64(&mut out, e.query_id);
        out.push(',');
        write_key(&mut out, "clock");
        write_str(&mut out, e.clock);
        out.push(',');
        write_key(&mut out, "duration");
        write_u64(&mut out, e.duration);
        out.push(',');
        write_key(&mut out, "events");
        write_u64(&mut out, e.events.len() as u64);
        out.push(',');
        write_key(&mut out, "phases");
        out.push('[');
        let profile = aggregate(&e.events);
        for (j, (path, stat)) in profile.paths.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('{');
            write_key(&mut out, "path");
            write_str(&mut out, path);
            out.push(',');
            write_key(&mut out, "total");
            write_u64(&mut out, stat.total);
            out.push(',');
            write_key(&mut out, "self");
            write_u64(&mut out, stat.self_time);
            out.push(',');
            write_key(&mut out, "count");
            write_u64(&mut out, stat.count);
            out.push('}');
        }
        out.push(']');
        out.push('}');
    }
    out.push(']');
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// SLO burn-rate tracking
// ---------------------------------------------------------------------------

/// The latency objective the tracker classifies queries against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A query is *good* when its end-to-end wall time is at or under
    /// this many nanoseconds.
    pub objective_nanos: u64,
    /// The availability target (e.g. `0.99` = 1% error budget).
    pub target: f64,
    /// The fast (1x) window length in queries; the slow window is 6x.
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            objective_nanos: 250_000_000, // 250 ms
            target: 0.99,
            window: 64,
        }
    }
}

impl SloConfig {
    /// Reads `QENS_SLO_MS`, `QENS_SLO_TARGET` and `QENS_SLO_WINDOW`,
    /// falling back to the defaults for anything unset or unparsable.
    pub fn from_env() -> Self {
        let d = Self::default();
        let objective_nanos = std::env::var("QENS_SLO_MS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|ms| ms.is_finite() && *ms > 0.0)
            .map_or(d.objective_nanos, |ms| (ms * 1e6) as u64);
        let target = std::env::var("QENS_SLO_TARGET")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|t| t.is_finite() && *t > 0.0 && *t < 1.0)
            .unwrap_or(d.target);
        let window = std::env::var("QENS_SLO_WINDOW")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|w| *w > 0)
            .unwrap_or(d.window);
        Self {
            objective_nanos,
            target,
            window,
        }
    }
}

/// Rolling-window SLO tracking over per-query end-to-end latencies.
///
/// Keeps lifetime good/bad totals plus a circular ring of the last
/// `6 × window` verdicts, from which the 1x (last `window` queries) and
/// 6x (last `6 × window`) burn rates are computed:
///
/// ```text
/// burn_rate = bad_fraction_in_window / (1 - target)
/// ```
///
/// A burn rate of 1.0 consumes the error budget exactly as provisioned;
/// sustained values above ~1 on the 6x window or spikes above ~6 on the
/// 1x window are the classic paging thresholds.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    ring: Vec<bool>,
    next: usize,
    len: usize,
    good_total: u64,
    bad_total: u64,
}

impl SloTracker {
    /// A fresh tracker for `cfg`.
    pub fn new(cfg: SloConfig) -> Self {
        let cap = cfg.window.max(1) * 6;
        Self {
            cfg,
            ring: vec![false; cap],
            next: 0,
            len: 0,
            good_total: 0,
            bad_total: 0,
        }
    }

    /// The configured objective.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Classifies one query latency; returns `true` when it met the
    /// objective.
    pub fn observe(&mut self, nanos: u64) -> bool {
        let good = nanos <= self.cfg.objective_nanos;
        let cap = self.ring.len();
        self.ring[self.next] = good;
        self.next = (self.next + 1) % cap;
        self.len = (self.len + 1).min(cap);
        if good {
            self.good_total = self.good_total.saturating_add(1);
        } else {
            self.bad_total = self.bad_total.saturating_add(1);
        }
        good
    }

    /// Lifetime queries meeting the objective.
    pub fn good_total(&self) -> u64 {
        self.good_total
    }

    /// Lifetime queries missing the objective.
    pub fn bad_total(&self) -> u64 {
        self.bad_total
    }

    /// Queries currently held in the ring (saturates at `6 × window`).
    pub fn observed(&self) -> usize {
        self.len
    }

    /// `(bad, considered)` over the most recent `n` verdicts.
    fn bad_in_last(&self, n: usize) -> (usize, usize) {
        let considered = n.min(self.len);
        let cap = self.ring.len();
        let bad = (0..considered)
            .filter(|i| !self.ring[(self.next + cap - 1 - i) % cap])
            .count();
        (bad, considered)
    }

    fn burn_rate_over(&self, n: usize) -> f64 {
        let (bad, considered) = self.bad_in_last(n);
        if considered == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.cfg.target).max(1e-9);
        (bad as f64 / considered as f64) / budget
    }

    /// Burn rate over the last `window` queries.
    pub fn burn_rate_1x(&self) -> f64 {
        self.burn_rate_over(self.cfg.window)
    }

    /// Burn rate over the last `6 × window` queries.
    pub fn burn_rate_6x(&self) -> f64 {
        self.burn_rate_over(self.cfg.window * 6)
    }

    /// Forgets every verdict and zeroes the lifetime totals; the
    /// configuration is kept.
    pub fn reset(&mut self) {
        self.ring.fill(false);
        self.next = 0;
        self.len = 0;
        self.good_total = 0;
        self.bad_total = 0;
    }
}

fn slo() -> MutexGuard<'static, SloTracker> {
    static SLO: OnceLock<Mutex<SloTracker>> = OnceLock::new();
    SLO.get_or_init(|| Mutex::new(SloTracker::new(SloConfig::from_env())))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Feeds one end-to-end query latency (wall nanoseconds) into the
/// global SLO tracker and mirrors the result into the metric registry:
/// `qens_slo_good_total` / `qens_slo_bad_total` counters and the
/// `qens_slo_burn_rate_1x` / `qens_slo_burn_rate_6x` /
/// `qens_slo_objective_seconds` gauges. The counters and gauges are
/// inert while telemetry is disabled; the tracker itself always
/// records.
pub fn observe_query(nanos: u64) {
    let (good, b1, b6, objective) = {
        let mut t = slo();
        let good = t.observe(nanos);
        (
            good,
            t.burn_rate_1x(),
            t.burn_rate_6x(),
            t.config().objective_nanos,
        )
    };
    if good {
        crate::counter!("qens_slo_good_total").incr();
    } else {
        crate::counter!("qens_slo_bad_total").incr();
    }
    crate::gauge!("qens_slo_burn_rate_1x").set(b1);
    crate::gauge!("qens_slo_burn_rate_6x").set(b6);
    crate::gauge!("qens_slo_objective_seconds").set(objective as f64 / 1e9);
}

/// A point-in-time copy of the global SLO state (for `/slo` and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloView {
    /// The active configuration.
    pub config: SloConfig,
    /// Lifetime good queries.
    pub good_total: u64,
    /// Lifetime bad queries.
    pub bad_total: u64,
    /// Verdicts currently in the ring.
    pub observed: usize,
    /// Fast-window burn rate.
    pub burn_rate_1x: f64,
    /// Slow-window burn rate.
    pub burn_rate_6x: f64,
}

/// Reads the global tracker.
pub fn slo_view() -> SloView {
    let t = slo();
    SloView {
        config: t.config(),
        good_total: t.good_total(),
        bad_total: t.bad_total(),
        observed: t.observed(),
        burn_rate_1x: t.burn_rate_1x(),
        burn_rate_6x: t.burn_rate_6x(),
    }
}

/// Renders the global SLO state as a JSON document with a fixed key
/// order:
///
/// ```json
/// {"objective_nanos":250000000,"target":0.99,"window":64,
///  "observed":12,"good_total":11,"bad_total":1,
///  "burn_rate_1x":8.33,"burn_rate_6x":8.33}
/// ```
pub fn slo_to_json() -> String {
    let v = slo_view();
    let mut out = String::with_capacity(192);
    out.push('{');
    write_key(&mut out, "objective_nanos");
    write_u64(&mut out, v.config.objective_nanos);
    out.push(',');
    write_key(&mut out, "target");
    write_f64(&mut out, v.config.target);
    out.push(',');
    write_key(&mut out, "window");
    write_u64(&mut out, v.config.window as u64);
    out.push(',');
    write_key(&mut out, "observed");
    write_u64(&mut out, v.observed as u64);
    out.push(',');
    write_key(&mut out, "good_total");
    write_u64(&mut out, v.good_total);
    out.push(',');
    write_key(&mut out, "bad_total");
    write_u64(&mut out, v.bad_total);
    out.push(',');
    write_key(&mut out, "burn_rate_1x");
    write_f64(&mut out, v.burn_rate_1x);
    out.push(',');
    write_key(&mut out, "burn_rate_6x");
    write_f64(&mut out, v.burn_rate_6x);
    out.push('}');
    out
}

/// Clears the global flight recorder and SLO tracker (fresh profiling
/// pass; configurations are kept).
pub fn reset() {
    recorder().clear();
    slo().reset();
}

// ---------------------------------------------------------------------------
// Per-query integration point
// ---------------------------------------------------------------------------

/// RAII observer of one query's end-to-end latency.
///
/// Open it **before** the trace [`trace::query_span`] so it drops
/// *after* the span's `End` event has been buffered; the drop handler
/// then feeds the SLO tracker and offers the query's complete span tree
/// to the flight recorder. Inert (no clock read) while both telemetry
/// and tracing are disabled.
#[derive(Debug)]
pub struct QueryObserver {
    query_id: u64,
    start: Option<Instant>,
}

impl QueryObserver {
    /// Starts observing `query_id`.
    pub fn begin(query_id: u64) -> Self {
        // The fleet registry counts queries here — every run_query path
        // opens exactly one observer (batch waves count their own).
        crate::fleet::query_observed(query_id);
        let active = crate::enabled() || trace::is_enabled();
        Self {
            query_id,
            start: active.then(Instant::now),
        }
    }
}

impl Drop for QueryObserver {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        observe_query(nanos);
        let Some(clock) = trace::mode() else { return };
        let events = trace::snapshot_query(self.query_id);
        if events.is_empty() {
            return;
        }
        // On the logical clock the duration is the query's tick span —
        // a pure function of the simulation, so the recorder's top-K
        // set and order are thread-count independent.
        let (duration, clock_name) = match clock {
            Clock::Wall => (nanos, "wall"),
            Clock::Logical => {
                let min = events.iter().map(|e| e.ts).min().unwrap_or(0);
                let max = events.iter().map(|e| e.ts).max().unwrap_or(0);
                (max - min + 1, "logical")
            }
        };
        recorder().offer(FlightEntry {
            query_id: self.query_id,
            duration,
            clock: clock_name,
            events,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Args;

    fn ev(phase: Phase, name: &'static str, ts: u64, span: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            name,
            phase,
            ts,
            tid: 0,
            span,
            parent,
            query: u64::MAX,
            args: Args::default(),
        }
    }

    /// query(0..10) { select(1..3), round(4..9) { agg(5..7) } }
    fn sample_events() -> Vec<TraceEvent> {
        vec![
            ev(Phase::Begin, "query", 0, 1, 0),
            ev(Phase::Begin, "select", 1, 2, 1),
            ev(Phase::End, "select", 3, 2, 1),
            ev(Phase::Begin, "round", 4, 3, 1),
            ev(Phase::Begin, "agg", 5, 4, 3),
            ev(Phase::Instant, "fault", 6, 0, 4),
            ev(Phase::End, "agg", 7, 4, 3),
            ev(Phase::End, "round", 9, 3, 1),
            ev(Phase::End, "query", 10, 1, 0),
        ]
    }

    #[test]
    fn aggregate_computes_self_and_total() {
        let p = aggregate(&sample_events());
        let q = p.paths.get("query").unwrap();
        assert_eq!(q.total, 10);
        // query self = 10 - select(2) - round(5) = 3.
        assert_eq!(q.self_time, 3);
        assert_eq!(q.count, 1);
        let round = p.paths.get("query;round").unwrap();
        assert_eq!(round.total, 5);
        assert_eq!(round.self_time, 3); // 5 - agg(2)
        let agg = p.paths.get("query;round;agg").unwrap();
        assert_eq!(agg.total, 2);
        assert_eq!(agg.self_time, 2);
        assert_eq!(p.root_total(), 10);
    }

    #[test]
    fn aggregate_tolerates_truncated_streams() {
        // Begin without End: dropped. End without Begin: ignored.
        let events = vec![
            ev(Phase::Begin, "open_forever", 0, 1, 0),
            ev(Phase::End, "never_began", 1, 99, 0),
        ];
        let p = aggregate(&events);
        assert!(p.paths.is_empty());
    }

    #[test]
    fn folded_is_sorted_and_byte_stable() {
        let p = aggregate(&sample_events());
        let a = to_folded(&p);
        let b = to_folded(&p);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "query 3\nquery;round 3\nquery;round;agg 2\nquery;select 2\n"
        );
    }

    #[test]
    fn svg_renders_every_visible_frame_byte_stably() {
        let p = aggregate(&sample_events());
        let a = to_svg(&p, "test profile", "ticks");
        let b = to_svg(&p, "test profile", "ticks");
        assert_eq!(a, b);
        assert!(a.starts_with("<svg "));
        assert!(a.trim_end().ends_with("</svg>"));
        for name in ["query", "round", "agg", "select"] {
            assert!(a.contains(&format!(">{name}<")) || a.contains(name));
        }
        // Tooltips carry the full path and both time flavours.
        assert!(a.contains("query;round;agg"));
        assert!(a.contains("self 3 ticks"));
        // Balanced markup.
        assert_eq!(a.matches("<g>").count(), a.matches("</g>").count());
    }

    #[test]
    fn svg_escapes_markup_in_titles() {
        let p = aggregate(&sample_events());
        let svg = to_svg(&p, "a <b> & \"c\"", "ticks");
        assert!(svg.contains("a &lt;b&gt; &amp; &quot;c&quot;"));
    }

    #[test]
    fn flight_recorder_orders_and_ties_deterministically() {
        let mut r = FlightRecorder::new(3);
        let entry = |id, dur| FlightEntry {
            query_id: id,
            duration: dur,
            clock: "logical",
            events: Vec::new(),
        };
        assert!(r.offer(entry(5, 100)));
        assert!(r.offer(entry(2, 100))); // tie: lower id first
        assert!(r.offer(entry(9, 300)));
        let ids: Vec<u64> = r.entries().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![9, 2, 5]);
        // Capacity eviction: a slower query pushes the tail out…
        assert!(r.offer(entry(1, 200)));
        let ids: Vec<u64> = r.entries().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![9, 1, 2]);
        // …and a faster one is rejected outright.
        r.offer(entry(7, 50));
        let ids: Vec<u64> = r.entries().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![9, 1, 2]);
        // Re-offering a retained id keeps the slower observation.
        assert!(r.offer(entry(2, 500)));
        let top = &r.entries()[0];
        assert_eq!((top.query_id, top.duration), (2, 500));
    }

    #[test]
    fn flight_recorder_zero_capacity_records_nothing() {
        let mut r = FlightRecorder::new(0);
        assert!(!r.offer(FlightEntry {
            query_id: 1,
            duration: 1,
            clock: "wall",
            events: Vec::new(),
        }));
        assert!(r.entries().is_empty());
    }

    #[test]
    fn slo_tracker_burn_rates_roll_across_window_boundaries() {
        let cfg = SloConfig {
            objective_nanos: 100,
            target: 0.9, // 10% budget
            window: 2,   // ring holds 12
        };
        let mut t = SloTracker::new(cfg);
        assert_eq!(t.burn_rate_1x(), 0.0, "empty tracker burns nothing");
        // One good, one bad: 1x window = [good, bad] -> 50% bad / 10%.
        assert!(t.observe(50));
        assert!(!t.observe(150));
        assert_eq!(t.good_total(), 1);
        assert_eq!(t.bad_total(), 1);
        assert!((t.burn_rate_1x() - 5.0).abs() < 1e-9);
        // Two more good: the bad verdict leaves the 1x window…
        assert!(t.observe(50));
        assert!(t.observe(50));
        assert_eq!(t.burn_rate_1x(), 0.0);
        // …but stays in the 6x window (4 observed, 1 bad -> 25%/10%).
        assert!((t.burn_rate_6x() - 2.5).abs() < 1e-9);
        // Fill the ring past capacity with good verdicts: the bad one
        // eventually rolls off the 6x window too.
        for _ in 0..12 {
            t.observe(50);
        }
        assert_eq!(t.observed(), 12, "ring saturates at 6x window");
        assert_eq!(t.burn_rate_6x(), 0.0);
        assert_eq!(t.bad_total(), 1, "lifetime totals never roll off");
        t.reset();
        assert_eq!(t.observed(), 0);
        assert_eq!(t.good_total(), 0);
    }

    #[test]
    fn slo_all_bad_pegs_the_burn_rate_at_budget_inverse() {
        let cfg = SloConfig {
            objective_nanos: 10,
            target: 0.99,
            window: 4,
        };
        let mut t = SloTracker::new(cfg);
        for _ in 0..4 {
            t.observe(1_000);
        }
        // 100% bad over a 1% budget = burn rate 100.
        assert!((t.burn_rate_1x() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn slo_config_env_parsing_rejects_nonsense() {
        // from_env falls back to defaults for unset vars; direct field
        // checks cover the parse guards.
        let d = SloConfig::default();
        assert_eq!(d.objective_nanos, 250_000_000);
        assert!((d.target - 0.99).abs() < 1e-12);
        assert_eq!(d.window, 64);
    }

    #[test]
    fn slo_json_has_fixed_key_order() {
        let doc = slo_to_json();
        let o = doc.find("\"objective_nanos\"").unwrap();
        let t = doc.find("\"target\"").unwrap();
        let b1 = doc.find("\"burn_rate_1x\"").unwrap();
        let b6 = doc.find("\"burn_rate_6x\"").unwrap();
        assert!(o < t && t < b1 && b1 < b6);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }
}
