//! RAII span timers.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::Histogram;

/// Times a region of code and records the elapsed nanoseconds into a
/// histogram when dropped. Created via the [`crate::span!`] macro, which
/// caches the histogram lookup per call site.
///
/// While telemetry is disabled the guard is fully inert: no clock read,
/// no registry access, nothing on drop.
#[derive(Debug)]
pub struct SpanGuard {
    target: Option<(&'static Histogram, Instant)>,
}

impl SpanGuard {
    /// Starts a span against the call-site cache `slot` (a `'static`
    /// `OnceLock` owned by the macro expansion).
    #[inline]
    pub fn enter(slot: &'static OnceLock<Arc<Histogram>>, name: &'static str) -> Self {
        if !crate::enabled() {
            return Self { target: None };
        }
        let hist: &'static Histogram = slot.get_or_init(|| crate::global().histogram(name));
        Self {
            target: Some((hist, Instant::now())),
        }
    }

    /// An inert span (never records). Useful for conditional spans.
    pub fn disabled() -> Self {
        Self { target: None }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.target.is_some()
    }

    /// Stops the span early, recording now instead of at scope end.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_records_into_named_histogram() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let before = crate::global().histogram("qens_test_span_nanos").count();
        {
            let _s = crate::span!("qens_test_span_nanos");
            std::hint::black_box(1 + 1);
        }
        let after = crate::global().histogram("qens_test_span_nanos").count();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        let s = crate::span!("qens_test_span_disabled_nanos");
        assert!(!s.is_recording());
        drop(s);
        crate::set_enabled(true);
        assert_eq!(
            crate::global()
                .histogram("qens_test_span_disabled_nanos")
                .count(),
            0
        );
    }
}
