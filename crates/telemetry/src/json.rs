//! A minimal hand-rolled JSON writer.
//!
//! The workspace's default build path has no crates-io access, so the
//! exporters cannot lean on `serde_json`. This module provides just
//! enough: string escaping per RFC 8259 and number formatting that maps
//! non-finite floats to `null` (JSON has no NaN/Infinity).

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. `u64` is always finite, so this is a
/// plain decimal rendering.
pub fn write_u64(out: &mut String, v: u64) {
    out.push_str(&v.to_string());
}

/// Appends `v` as a JSON number, or `null` when it is NaN or infinite
/// (JSON cannot represent those). Finite values round-trip via Rust's
/// shortest-representation `Display`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 is the shortest string that parses back exactly.
        let s = format!("{v}");
        out.push_str(&s);
        // "1" would re-parse as an integer in typed consumers; that is
        // fine for our own readers, so no ".0" suffix is forced.
    } else {
        out.push_str("null");
    }
}

/// Appends `key:` (an object key plus the colon separator).
pub fn write_key(out: &mut String, key: &str) {
    write_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_of(f: impl FnOnce(&mut String)) -> String {
        let mut s = String::new();
        f(&mut s);
        s
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(str_of(|o| write_str(o, "a\"b\\c\nd")), r#""a\"b\\c\nd""#);
        assert_eq!(str_of(|o| write_str(o, "\u{1}")), "\"\\u0001\"");
        assert_eq!(str_of(|o| write_str(o, "plain")), r#""plain""#);
    }

    #[test]
    fn numbers_render_and_nonfinite_is_null() {
        assert_eq!(str_of(|o| write_u64(o, 42)), "42");
        assert_eq!(str_of(|o| write_f64(o, 1.5)), "1.5");
        assert_eq!(str_of(|o| write_f64(o, f64::NAN)), "null");
        assert_eq!(str_of(|o| write_f64(o, f64::INFINITY)), "null");
    }

    #[test]
    fn keys_include_colon() {
        assert_eq!(str_of(|o| write_key(o, "k")), r#""k":"#);
    }
}
