//! Snapshot exporters: JSON (for `results/telemetry.json`) and
//! Prometheus text exposition (for scraping a long-lived leader).

use crate::histogram::HistogramSnapshot;
use crate::json::{write_f64, write_key, write_str, write_u64};
use crate::registry::{QuerySnapshot, Snapshot};

/// Renders a snapshot (plus the per-query ring) as a JSON document:
///
/// ```json
/// {
///   "counters": {"qens_x_total": 3},
///   "gauges": {"qens_y": 1.5},
///   "histograms": [
///     {"name": "qens_z_nanos", "count": 9, "sum": 90, "min": 1,
///      "max": 30, "mean": 10.0, "p50": ..., "p90": ..., "p99": ...,
///      "buckets": [{"lo": 0, "hi": 0, "count": 1}, ...]}
///   ],
///   "queries": [{"query_id": 7, "counters": {...}, ...}]
/// }
/// ```
///
/// Only non-empty histogram buckets are emitted, so documents stay small.
pub fn to_json(snapshot: &Snapshot, queries: &[QuerySnapshot]) -> String {
    let mut out = String::with_capacity(4096);
    out.push('{');
    write_metrics_body(&mut out, snapshot);
    out.push(',');
    write_key(&mut out, "queries");
    out.push('[');
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_key(&mut out, "query_id");
        write_u64(&mut out, q.query_id);
        out.push(',');
        write_metrics_body(&mut out, &q.metrics);
        out.push('}');
    }
    out.push(']');
    out.push('}');
    out
}

/// The shared `"counters": {...}, "gauges": {...}, "histograms": [...]`
/// section used both at the top level and inside each query entry.
fn write_metrics_body(out: &mut String, s: &Snapshot) {
    write_key(out, "counters");
    out.push('{');
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, name);
        write_u64(out, *v);
    }
    out.push('}');
    out.push(',');
    write_key(out, "gauges");
    out.push('{');
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, name);
        write_f64(out, *v);
    }
    out.push('}');
    out.push(',');
    write_key(out, "histograms");
    out.push('[');
    for (i, h) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_histogram(out, h);
    }
    out.push(']');
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push('{');
    write_key(out, "name");
    write_str(out, &h.name);
    out.push(',');
    write_key(out, "count");
    write_u64(out, h.count);
    out.push(',');
    write_key(out, "sum");
    write_u64(out, h.sum);
    out.push(',');
    write_key(out, "min");
    write_u64(out, h.min);
    out.push(',');
    write_key(out, "max");
    write_u64(out, h.max);
    out.push(',');
    write_key(out, "mean");
    write_f64(out, h.mean());
    out.push(',');
    write_key(out, "p50");
    write_f64(out, h.p50());
    out.push(',');
    write_key(out, "p90");
    write_f64(out, h.p90());
    out.push(',');
    write_key(out, "p99");
    write_f64(out, h.p99());
    out.push(',');
    write_key(out, "buckets");
    out.push('[');
    let mut first = true;
    for b in &h.buckets {
        if b.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        write_key(out, "lo");
        write_u64(out, b.lo);
        out.push(',');
        write_key(out, "hi");
        write_u64(out, b.hi);
        out.push(',');
        write_key(out, "count");
        write_u64(out, b.count);
        out.push('}');
    }
    out.push(']');
    out.push('}');
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` lines, cumulative `le` buckets with a
/// final `+Inf`, and `_sum` / `_count` series per histogram.
///
/// Histogram metric names keep their unit suffix (`..._nanos_bucket`);
/// consumers that want seconds can divide at query time.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in &snapshot.counters {
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push_str(" counter\n");
        out.push_str(name);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (name, v) in &snapshot.gauges {
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push_str(" gauge\n");
        out.push_str(name);
        out.push(' ');
        if v.is_finite() {
            out.push_str(&format!("{v}"));
        } else if v.is_nan() {
            out.push_str("NaN");
        } else if *v > 0.0 {
            out.push_str("+Inf");
        } else {
            out.push_str("-Inf");
        }
        out.push('\n');
    }
    for h in &snapshot.histograms {
        out.push_str("# TYPE ");
        out.push_str(&h.name);
        out.push_str(" histogram\n");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            if b.count == 0 {
                continue;
            }
            cumulative += b.count;
            out.push_str(&h.name);
            out.push_str("_bucket{le=\"");
            out.push_str(&b.hi.to_string());
            out.push_str("\"} ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out.push_str(&h.name);
        out.push_str("_bucket{le=\"+Inf\"} ");
        out.push_str(&h.count.to_string());
        out.push('\n');
        out.push_str(&h.name);
        out.push_str("_sum ");
        out.push_str(&h.sum.to_string());
        out.push('\n');
        out.push_str(&h.name);
        out.push_str("_count ");
        out.push_str(&h.count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("qens_test_export_total").add(4);
        r.gauge("qens_test_export_ratio").set(0.25);
        let h = r.histogram("qens_test_export_nanos");
        h.record(1);
        h.record(100);
        r
    }

    #[test]
    fn json_contains_all_sections() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let doc = to_json(&r.snapshot(), &[]);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains(r#""qens_test_export_total":4"#));
        assert!(doc.contains(r#""qens_test_export_ratio":0.25"#));
        assert!(doc.contains(r#""name":"qens_test_export_nanos""#));
        assert!(doc.contains(r#""count":2"#));
        assert!(doc.contains(r#""queries":[]"#));
    }

    #[test]
    fn json_embeds_query_snapshots() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let queries = vec![crate::QuerySnapshot {
            query_id: 7,
            metrics: r.snapshot(),
        }];
        let doc = to_json(&r.snapshot(), &queries);
        assert!(doc.contains(r#""query_id":7"#));
    }

    #[test]
    fn prometheus_has_cumulative_buckets_and_totals() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE qens_test_export_total counter"));
        assert!(text.contains("qens_test_export_total 4"));
        assert!(text.contains("# TYPE qens_test_export_ratio gauge"));
        assert!(text.contains("# TYPE qens_test_export_nanos histogram"));
        assert!(text.contains("qens_test_export_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("qens_test_export_nanos_sum 101"));
        assert!(text.contains("qens_test_export_nanos_count 2"));
        // Buckets are cumulative: the le=+Inf count equals the total.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("qens_test_export_nanos_bucket"))
            .collect();
        assert!(
            lines.len() >= 2,
            "expected at least two bucket lines: {lines:?}"
        );
    }
}
