//! Snapshot exporters: JSON (for `results/telemetry.json`) and
//! Prometheus text exposition (for scraping a long-lived leader).

use crate::histogram::HistogramSnapshot;
use crate::json::{write_f64, write_key, write_str, write_u64};
use crate::registry::{QuerySnapshot, Snapshot};

/// Renders a snapshot (plus the per-query ring) as a JSON document:
///
/// ```json
/// {
///   "counters": {"qens_x_total": 3},
///   "gauges": {"qens_y": 1.5},
///   "histograms": [
///     {"name": "qens_z_nanos", "count": 9, "sum": 90, "min": 1,
///      "max": 30, "mean": 10.0, "p50": ..., "p90": ..., "p95": ...,
///      "p99": ...,
///      "buckets": [{"lo": 0, "hi": 0, "count": 1}, ...]}
///   ],
///   "queries": [{"query_id": 7, "counters": {...}, ...}]
/// }
/// ```
///
/// Only non-empty histogram buckets are emitted, so documents stay small.
pub fn to_json(snapshot: &Snapshot, queries: &[QuerySnapshot]) -> String {
    let mut out = String::with_capacity(4096);
    out.push('{');
    write_metrics_body(&mut out, snapshot);
    out.push(',');
    write_key(&mut out, "queries");
    out.push('[');
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        write_key(&mut out, "query_id");
        write_u64(&mut out, q.query_id);
        out.push(',');
        write_metrics_body(&mut out, &q.metrics);
        out.push('}');
    }
    out.push(']');
    out.push('}');
    out
}

/// The shared `"counters": {...}, "gauges": {...}, "histograms": [...]`
/// section used both at the top level and inside each query entry.
fn write_metrics_body(out: &mut String, s: &Snapshot) {
    write_key(out, "counters");
    out.push('{');
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, name);
        write_u64(out, *v);
    }
    out.push('}');
    out.push(',');
    write_key(out, "gauges");
    out.push('{');
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, name);
        write_f64(out, *v);
    }
    out.push('}');
    out.push(',');
    write_key(out, "histograms");
    out.push('[');
    for (i, h) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_histogram(out, h);
    }
    out.push(']');
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push('{');
    write_key(out, "name");
    write_str(out, &h.name);
    out.push(',');
    write_key(out, "count");
    write_u64(out, h.count);
    out.push(',');
    write_key(out, "sum");
    write_u64(out, h.sum);
    out.push(',');
    write_key(out, "min");
    write_u64(out, h.min);
    out.push(',');
    write_key(out, "max");
    write_u64(out, h.max);
    out.push(',');
    write_key(out, "mean");
    write_f64(out, h.mean());
    out.push(',');
    write_key(out, "p50");
    write_f64(out, h.p50());
    out.push(',');
    write_key(out, "p90");
    write_f64(out, h.p90());
    out.push(',');
    write_key(out, "p95");
    write_f64(out, h.p95());
    out.push(',');
    write_key(out, "p99");
    write_f64(out, h.p99());
    out.push(',');
    write_key(out, "buckets");
    out.push('[');
    let mut first = true;
    for b in &h.buckets {
        if b.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('{');
        write_key(out, "lo");
        write_u64(out, b.lo);
        out.push(',');
        write_key(out, "hi");
        write_u64(out, b.hi);
        out.push(',');
        write_key(out, "count");
        write_u64(out, b.count);
        out.push('}');
    }
    out.push(']');
    out.push('}');
}

/// A deterministic one-line `# HELP` description for a metric name.
///
/// Well-known workspace prefixes get a specific description; everything
/// else falls back to a generic line derived from the unit suffix, so
/// every exposed series always carries HELP metadata (required by the
/// exposition-format conformance test).
pub fn help_text(name: &str) -> &'static str {
    // Specific, stable descriptions for the workspace's metric families.
    match name {
        "qens_trace_events_total" => return "Trace events recorded across all queries.",
        "qens_trace_spans_total" => return "Trace spans opened across all queries.",
        "qens_trace_dropped_total" => {
            return "Trace events dropped after the buffer cap was reached."
        }
        "qens_build_info" => {
            return "Build metadata (crate version and build profile) as labels; value is always 1."
        }
        "qens_uptime_seconds" => return "Seconds since this process first exported metrics.",
        "qens_fleet_size" => return "Largest edge network size observed by the fleet registry.",
        "qens_fleet_queries_total" => return "Queries observed end-to-end by the fleet registry.",
        "qens_fleet_never_selected" => return "Nodes in the fleet never selected by any query.",
        "qens_fleet_selection_gini" => {
            return "Gini coefficient of per-node selection counts (0 = even, 1 = concentrated)."
        }
        "qens_fleet_selection_entropy" => {
            return "Normalized entropy of the selection distribution (1 = uniform)."
        }
        "qens_journal_events_total" => return "Structured events recorded into the fleet journal.",
        "qens_journal_overwritten_total" => {
            return "Journal events overwritten after the ring filled."
        }
        _ => {}
    }
    let family = [
        (
            "qens_cache_",
            "selection-cache metric (hits, misses, invalidations, entries).",
        ),
        (
            "qens_index_",
            "spatial-index candidate generation metric (cells probed, domains pruned, candidates, rebuilds).",
        ),
        ("qens_cluster_", "k-means clustering stage metric."),
        ("qens_selection_", "query-driven node selection metric."),
        ("qens_fed_", "federated round engine metric."),
        ("qens_fault_", "injected-fault handling metric."),
        ("qens_edgesim_", "edge network simulation metric."),
        (
            "qens_serve_",
            "query serving front-end metric (ingestion queue, admission control, batching).",
        ),
        ("qens_par_", "deterministic thread-pool metric."),
        (
            "qens_node_",
            "per-node fleet scorecard counter (top-K hot nodes plus an \"other\" aggregate).",
        ),
        ("qens_fleet_", "fleet-level selection-skew metric."),
        ("qens_journal_", "structured event journal metric."),
        ("qens_trace_", "structured tracing metric."),
        ("qens_mlkit_", "local training kernel metric."),
        ("qens_slo_", "latency SLO tracking metric."),
    ]
    .iter()
    .find(|(p, _)| name.starts_with(p))
    .map(|(_, h)| *h);
    if let Some(h) = family {
        return h;
    }
    // Generic fallback keyed on the unit suffix.
    if name.ends_with("_total") {
        "Monotonic event counter."
    } else if name.ends_with("_nanos") {
        "Latency distribution in nanoseconds."
    } else if name.ends_with("_micros") {
        "Latency distribution in microseconds."
    } else if name.ends_with("_bytes") {
        "Size distribution in bytes."
    } else {
        "Workspace metric."
    }
}

/// The uptime epoch: latched on the first exposition and shared by all
/// later ones, so `qens_uptime_seconds` is monotone across scrapes.
fn process_start() -> &'static std::time::Instant {
    static START: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    START.get_or_init(std::time::Instant::now)
}

fn push_help_and_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help_text(name));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` + `# TYPE` lines per series, cumulative
/// `le` buckets with a final `+Inf`, and `_sum` / `_count` series per
/// histogram.
///
/// Histogram metric names keep their unit suffix (`..._nanos_bucket`);
/// consumers that want seconds can divide at query time.
///
/// Every exposition additionally leads with two self-describing series:
/// `qens_build_info{version,profile} 1` (the Prometheus build-info
/// idiom — the constant value makes joins against any other series
/// cheap) and `qens_uptime_seconds` (seconds since this process first
/// exported), so a scrape alone answers "what is running, since when?".
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    push_help_and_type(&mut out, "qens_build_info", "gauge");
    out.push_str(&format!(
        "qens_build_info{{version=\"{}\",profile=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    ));
    push_help_and_type(&mut out, "qens_uptime_seconds", "gauge");
    out.push_str(&format!(
        "qens_uptime_seconds {:.3}\n",
        process_start().elapsed().as_secs_f64()
    ));
    for (name, v) in &snapshot.counters {
        push_help_and_type(&mut out, name, "counter");
        out.push_str(name);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (name, v) in &snapshot.gauges {
        push_help_and_type(&mut out, name, "gauge");
        out.push_str(name);
        out.push(' ');
        if v.is_finite() {
            out.push_str(&format!("{v}"));
        } else if v.is_nan() {
            out.push_str("NaN");
        } else if *v > 0.0 {
            out.push_str("+Inf");
        } else {
            out.push_str("-Inf");
        }
        out.push('\n');
    }
    for h in &snapshot.histograms {
        push_help_and_type(&mut out, &h.name, "histogram");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            if b.count == 0 {
                continue;
            }
            cumulative += b.count;
            out.push_str(&h.name);
            out.push_str("_bucket{le=\"");
            out.push_str(&b.hi.to_string());
            out.push_str("\"} ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out.push_str(&h.name);
        out.push_str("_bucket{le=\"+Inf\"} ");
        out.push_str(&h.count.to_string());
        out.push('\n');
        out.push_str(&h.name);
        out.push_str("_sum ");
        out.push_str(&h.sum.to_string());
        out.push('\n');
        out.push_str(&h.name);
        out.push_str("_count ");
        out.push_str(&h.count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("qens_test_export_total").add(4);
        r.gauge("qens_test_export_ratio").set(0.25);
        let h = r.histogram("qens_test_export_nanos");
        h.record(1);
        h.record(100);
        r
    }

    #[test]
    fn json_contains_all_sections() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let doc = to_json(&r.snapshot(), &[]);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains(r#""qens_test_export_total":4"#));
        assert!(doc.contains(r#""qens_test_export_ratio":0.25"#));
        assert!(doc.contains(r#""name":"qens_test_export_nanos""#));
        assert!(doc.contains(r#""count":2"#));
        assert!(doc.contains(r#""p95":"#));
        assert!(doc.contains(r#""queries":[]"#));
    }

    #[test]
    fn json_embeds_query_snapshots() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let queries = vec![crate::QuerySnapshot {
            query_id: 7,
            metrics: r.snapshot(),
        }];
        let doc = to_json(&r.snapshot(), &queries);
        assert!(doc.contains(r#""query_id":7"#));
    }

    #[test]
    fn prometheus_has_cumulative_buckets_and_totals() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE qens_test_export_total counter"));
        assert!(text.contains("qens_test_export_total 4"));
        assert!(text.contains("# TYPE qens_test_export_ratio gauge"));
        assert!(text.contains("# TYPE qens_test_export_nanos histogram"));
        assert!(text.contains("qens_test_export_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("qens_test_export_nanos_sum 101"));
        assert!(text.contains("qens_test_export_nanos_count 2"));
        // Buckets are cumulative: the le=+Inf count equals the total.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("qens_test_export_nanos_bucket"))
            .collect();
        assert!(
            lines.len() >= 2,
            "expected at least two bucket lines: {lines:?}"
        );
    }

    /// Exposition-format conformance: every exposed series is preceded
    /// by matching `# HELP` and `# TYPE` lines, histogram buckets are
    /// cumulative (non-decreasing) and end in `+Inf` with a count equal
    /// to `_count`.
    #[test]
    fn prometheus_exposition_is_conformant() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let text = to_prometheus(&r.snapshot());

        // Collect the base name of every sample line (strip labels and
        // histogram sub-series suffixes) and check HELP/TYPE presence.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let sample = line.split_whitespace().next().unwrap();
            let base = sample.split('{').next().unwrap();
            let base = base
                .strip_suffix("_bucket")
                .or_else(|| base.strip_suffix("_sum"))
                .or_else(|| base.strip_suffix("_count"))
                .unwrap_or(base);
            assert!(
                text.contains(&format!("# HELP {base} ")),
                "series {sample} missing # HELP {base}"
            );
            assert!(
                text.contains(&format!("# TYPE {base} ")),
                "series {sample} missing # TYPE {base}"
            );
        }

        // HELP must precede TYPE which must precede the first sample.
        let help_at = text.find("# HELP qens_test_export_nanos ").unwrap();
        let type_at = text.find("# TYPE qens_test_export_nanos ").unwrap();
        let sample_at = text.find("qens_test_export_nanos_bucket").unwrap();
        assert!(help_at < type_at && type_at < sample_at);

        // Histogram buckets are cumulative and terminate in +Inf == _count.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("qens_test_export_nanos_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(
            bucket_counts.windows(2).all(|w| w[0] <= w[1]),
            "buckets must be cumulative: {bucket_counts:?}"
        );
        let inf_line = text
            .lines()
            .find(|l| l.contains("_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket present");
        let inf_count: u64 = inf_line.split_whitespace().last().unwrap().parse().unwrap();
        let count_line = text
            .lines()
            .find(|l| l.starts_with("qens_test_export_nanos_count"))
            .unwrap();
        let total: u64 = count_line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(inf_count, total);
    }

    #[test]
    fn prometheus_leads_with_build_info_and_uptime() {
        let _g = crate::test_lock();
        let r = sample_registry();
        let text = to_prometheus(&r.snapshot());
        let build_line = text
            .lines()
            .find(|l| l.starts_with("qens_build_info{"))
            .expect("build_info series present");
        assert!(
            build_line.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))),
            "build_info must carry the crate version: {build_line}"
        );
        assert!(
            build_line.contains("profile=\"debug\"") || build_line.contains("profile=\"release\""),
            "build_info must carry the build profile: {build_line}"
        );
        assert!(build_line.ends_with(" 1"), "build_info value is always 1");
        let uptime_line = text
            .lines()
            .find(|l| l.starts_with("qens_uptime_seconds "))
            .expect("uptime series present");
        let uptime: f64 = uptime_line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(uptime >= 0.0, "uptime must be non-negative");
        // Uptime is monotone across scrapes (shared epoch).
        let again = to_prometheus(&r.snapshot());
        let uptime2: f64 = again
            .lines()
            .find(|l| l.starts_with("qens_uptime_seconds "))
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(uptime2 >= uptime);
        // Both lead series carry HELP/TYPE like everything else.
        assert!(text.contains("# HELP qens_build_info "));
        assert!(text.contains("# TYPE qens_uptime_seconds gauge"));
    }

    #[test]
    fn help_text_is_deterministic_and_specific() {
        assert_eq!(
            help_text("qens_trace_events_total"),
            "Trace events recorded across all queries."
        );
        assert_eq!(
            help_text("qens_fault_retries_total"),
            "injected-fault handling metric."
        );
        assert_eq!(
            help_text("qens_serve_shed_total"),
            "query serving front-end metric (ingestion queue, admission control, batching)."
        );
        assert_eq!(
            help_text("qens_node_selected_total"),
            "per-node fleet scorecard counter (top-K hot nodes plus an \"other\" aggregate)."
        );
        assert_eq!(
            help_text("qens_fleet_selection_gini"),
            "Gini coefficient of per-node selection counts (0 = even, 1 = concentrated)."
        );
        assert_eq!(
            help_text("qens_journal_events_total"),
            "Structured events recorded into the fleet journal."
        );
        assert_eq!(help_text("qens_unknown_nanos"), help_text("x_nanos"));
        assert_eq!(help_text("weird"), "Workspace metric.");
    }

    /// The fleet's appended exposition obeys the same conformance rules
    /// as the registry's: every sample preceded by matching `# HELP` and
    /// `# TYPE` lines, HELP before TYPE before the first sample.
    #[test]
    fn fleet_exposition_is_conformant() {
        let _g = crate::test_lock();
        crate::fleet::set_enabled(true);
        crate::fleet::reset();
        crate::journal::clear();
        crate::fleet::observe_fleet(5);
        crate::fleet::selected(1, 0, 0);
        crate::fleet::selected(1, 3, 0);
        crate::journal::node_selected(1, 0, 0);
        let mut text = String::new();
        crate::fleet::to_prometheus(&mut text, crate::fleet::PROM_TOP_K);
        assert!(!text.is_empty());
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let sample = line.split_whitespace().next().unwrap();
            let base = sample.split('{').next().unwrap();
            assert!(
                text.contains(&format!("# HELP {base} ")),
                "series {sample} missing # HELP {base}"
            );
            assert!(
                text.contains(&format!("# TYPE {base} ")),
                "series {sample} missing # TYPE {base}"
            );
            let help_at = text.find(&format!("# HELP {base} ")).unwrap();
            let type_at = text.find(&format!("# TYPE {base} ")).unwrap();
            let sample_at = text.find(line).unwrap();
            assert!(help_at < type_at && type_at < sample_at);
        }
        assert!(text.contains("qens_journal_events_total 1"));
        crate::fleet::reset();
        crate::journal::clear();
    }
}
