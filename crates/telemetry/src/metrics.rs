//! Counters and gauges: the scalar metric primitives.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing, saturating `u64` counter.
///
/// Increments are relaxed atomics — order-independent and therefore
/// deterministic in total regardless of thread interleaving, which is
/// what lets the `parallel: true` federation path aggregate per-stage
/// telemetry identically to the serial path.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`, saturating at `u64::MAX` (never wraps). No-op while
    /// telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.add_unconditional(n);
    }

    /// Adds `n` regardless of the enablement flag (used by the registry
    /// when replaying deltas; instrumentation should call [`Counter::add`]).
    #[inline]
    pub fn add_unconditional(&self, n: u64) {
        // Saturating add via CAS loop: overflow would otherwise wrap and
        // silently destroy a long-running deployment's totals.
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and benchmarks).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (CAS loop). No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, d: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_saturates() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
        // Saturation at the top of the range.
        let c = Counter::new();
        c.add(u64::MAX - 3);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "counter must saturate, not wrap");
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_ignores_when_disabled() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.get(), 0);
        crate::set_enabled(true);
        c.add(5);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_set_add_get() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.25);
        assert_eq!(g.get(), 3.75);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }
}
