//! Zero-dependency observability for the qens workspace.
//!
//! The paper's entire argument is quantitative (per-query time, data
//! fraction, loss), so the reproduction needs to see *where* a query's
//! time goes: k-means vs. overlap scoring vs. per-stage training vs.
//! aggregation. This crate is the profiling substrate every perf PR
//! reports against. It is `std`-only by design — the workspace's default
//! build path must work with the crates-io registry unreachable.
//!
//! # Model
//!
//! * [`Counter`] — monotonically increasing, saturating `u64`.
//! * [`Gauge`] — last-write-wins `f64`.
//! * [`Histogram`] — power-of-two log-scale buckets over `u64` samples
//!   with p50/p90/p99 queries (durations are recorded in nanoseconds).
//! * [`SpanGuard`] — RAII timer; records elapsed nanos into a histogram
//!   on drop.
//! * [`Registry`] — the thread-safe global name → metric table, plus
//!   per-query scopes ([`QueryScope`]) capturing the delta a single
//!   query contributed to every metric.
//!
//! Metric names follow `qens_<crate>_<name>` with a unit suffix
//! (`_total` for counters, `_nanos`/`_micros`/`_bytes` for histograms).
//!
//! # Enablement
//!
//! Telemetry is **disabled by default** and the disabled path is a
//! single relaxed atomic load per recording call. Enable it with the
//! `QENS_TELEMETRY=1` environment variable or programmatically via
//! [`set_enabled`] (e.g. the `FederationBuilder::telemetry(true)` flag).
//!
//! # Example
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _span = telemetry::span!("qens_doc_example_nanos");
//!     telemetry::counter!("qens_doc_items_total").add(3);
//! }
//! let snap = telemetry::global().snapshot();
//! assert_eq!(snap.counter("qens_doc_items_total"), Some(3));
//! let json = telemetry::export::to_json(&snap, &[]);
//! assert!(json.contains("qens_doc_example_nanos"));
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

pub mod export;
pub mod fleet;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod span;
pub mod trace;

pub use histogram::{BucketCount, Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::{global, QueryScope, QuerySnapshot, Registry, Snapshot};
pub use span::SpanGuard;

/// Tri-state enablement flag: 0 = uninitialised (consult the
/// environment), 1 = disabled, 2 = enabled. A single relaxed load on the
/// hot path.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether recording is live. The disabled fast path is one relaxed
/// atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("QENS_TELEMETRY") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off" | "no"),
        Err(_) => false,
    };
    // Racy writes all agree (the env cannot change between them unless a
    // test calls set_enabled, which wins by writing the same cell).
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns recording on or off globally, overriding `QENS_TELEMETRY`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Looks up (once per call site) the named [`Counter`] in the global
/// registry. Usage: `telemetry::counter!("qens_cluster_repairs_total").incr()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __QENS_COUNTER: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**__QENS_COUNTER.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Looks up (once per call site) the named [`Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __QENS_GAUGE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__QENS_GAUGE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Looks up (once per call site) the named [`Histogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __QENS_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__QENS_HIST.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// An RAII span timer recording elapsed nanoseconds into the named
/// histogram when dropped. Inert (no clock read) while disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __QENS_SPAN_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter(&__QENS_SPAN_HIST, $name)
    }};
}

/// Serialises unit tests that toggle the global enablement flag (cargo
/// runs tests on parallel threads; the flag is process-wide).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn enable_disable_round_trip() {
        let _g = super::test_lock();
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
        super::set_enabled(true);
        assert!(super::enabled());
    }
}
