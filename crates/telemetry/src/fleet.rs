//! Per-node fleet scorecards and selection-skew analytics.
//!
//! The paper's contribution is *which* edge nodes a query selects, so
//! the reproduction needs a per-node story to go with the per-query
//! one: how often each node is selected, participates to completion,
//! drops out, straggles, retries, gets promoted from standby or sits in
//! a cohort that loses quorum — plus how much it trained and
//! transferred over its lifetime. This module keeps one [`Scorecard`]
//! per node in a process-global registry, updated from the
//! leader-serial sites of the selection and federation round loops, and
//! derives fleet-level **skew analytics** on demand: the Gini
//! coefficient and normalized entropy of the selection-count
//! distribution, the top-K hot nodes and the never-selected count.
//!
//! # Determinism
//!
//! Every update site runs in leader-serial code, counters are integers
//! and the one floating accumulation (`train_sim_seconds`) sums
//! simulated seconds in the serial transfer-pass order — so the
//! registry contents, and the fixed-key-order [`to_json`] export, are
//! bit-identical at any `QENS_THREADS` (the `faults::FaultTrace`
//! contract). The only nondeterministic field, `train_wall_nanos`, is
//! deliberately **excluded** from [`to_json`]; live endpoints read it
//! straight off the snapshot instead.
//!
//! # Enablement and cost
//!
//! Off by default; enable with `QENS_FLEET=1`, [`set_enabled`], or
//! `FederationBuilder::fleet(true)`. The disabled fast path of every
//! update is a single relaxed atomic load, so `QENS_FLEET=0` runs are
//! bitwise identical to a build without this module. An update on the
//! enabled path is one mutex lock plus a `BTreeMap` probe — the
//! `fleet_scorecard_update` leg of `BENCH_qens.json` pins its cost.
//!
//! # Cardinality policy
//!
//! A 200-node fleet must not become 200×N Prometheus series.
//! [`to_prometheus`] exports per-node series only for the top
//! [`PROM_TOP_K`] nodes by selection count, folds every other node into
//! a single `node="other"` aggregate per family, and carries the
//! fleet-wide skew stats as plain gauges — bounded cardinality no
//! matter the fleet size.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json::{write_f64, write_key, write_u64};

/// Per-node Prometheus series are emitted for this many hot nodes; the
/// rest fold into the `node="other"` aggregate.
pub const PROM_TOP_K: usize = 8;

/// Tri-state enablement flag: 0 = uninitialised (consult `QENS_FLEET`),
/// 1 = disabled, 2 = enabled. One relaxed load on the hot path.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether scorecard/journal recording is live.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("QENS_FLEET") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off" | "no"),
        Err(_) => false,
    };
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns fleet recording on or off globally, overriding `QENS_FLEET`.
/// Does **not** clear already-recorded scorecards — call [`reset`] for
/// a fresh registry.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// One node's lifetime counters. All integer fields saturate only at
/// `u64::MAX`; `train_sim_seconds` accumulates simulated seconds in
/// leader-serial order (deterministic), `train_wall_nanos` accumulates
/// measured wall time (live-only — never exported deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scorecard {
    /// Node index within its network.
    pub node: u64,
    /// Queries whose initial participant list included this node.
    pub selected: u64,
    /// Queries this node survived to completion (final cohort).
    pub participated: u64,
    /// Times the node left a cohort (dropout, crash, transfer failure
    /// or deadline miss).
    pub dropped: u64,
    /// Straggler slowdowns applied to the node's training.
    pub straggled: u64,
    /// Lost transfer attempts that were retried.
    pub retried: u64,
    /// Promotions from the ranked standby tail into a live cohort.
    pub promoted: u64,
    /// Times the node sat in a cohort whose round lost quorum.
    pub quorum_lost: u64,
    /// Rounds the node actually trained in.
    pub rounds_trained: u64,
    /// Model bytes charged to the node's uplink.
    pub bytes_transferred: u64,
    /// Cumulative simulated training+transfer seconds (logical time;
    /// deterministic).
    pub train_sim_seconds: f64,
    /// Cumulative measured training wall nanoseconds (live-only).
    pub train_wall_nanos: u64,
    /// Id of the last query that selected this node (`u64::MAX` =
    /// never selected).
    pub last_selected_query: u64,
    /// The node's summary epoch at its last selection.
    pub last_summary_epoch: u64,
}

impl Scorecard {
    fn new(node: u64) -> Self {
        Self {
            node,
            selected: 0,
            participated: 0,
            dropped: 0,
            straggled: 0,
            retried: 0,
            promoted: 0,
            quorum_lost: 0,
            rounds_trained: 0,
            bytes_transferred: 0,
            train_sim_seconds: 0.0,
            train_wall_nanos: 0,
            last_selected_query: u64::MAX,
            last_summary_epoch: 0,
        }
    }

    /// The deterministic JSON object for this scorecard: fixed key
    /// order, `train_wall_nanos` excluded (it is the one
    /// scheduling-dependent field).
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "node");
        write_u64(out, self.node);
        out.push(',');
        write_key(out, "selected");
        write_u64(out, self.selected);
        out.push(',');
        write_key(out, "participated");
        write_u64(out, self.participated);
        out.push(',');
        write_key(out, "dropped");
        write_u64(out, self.dropped);
        out.push(',');
        write_key(out, "straggled");
        write_u64(out, self.straggled);
        out.push(',');
        write_key(out, "retried");
        write_u64(out, self.retried);
        out.push(',');
        write_key(out, "promoted");
        write_u64(out, self.promoted);
        out.push(',');
        write_key(out, "quorum_lost");
        write_u64(out, self.quorum_lost);
        out.push(',');
        write_key(out, "rounds_trained");
        write_u64(out, self.rounds_trained);
        out.push(',');
        write_key(out, "bytes_transferred");
        write_u64(out, self.bytes_transferred);
        out.push(',');
        write_key(out, "train_sim_seconds");
        write_f64(out, self.train_sim_seconds);
        out.push(',');
        write_key(out, "last_selected_query");
        if self.last_selected_query == u64::MAX {
            out.push_str("null");
        } else {
            write_u64(out, self.last_selected_query);
        }
        out.push(',');
        write_key(out, "last_summary_epoch");
        write_u64(out, self.last_summary_epoch);
        out.push('}');
    }
}

struct FleetState {
    /// Node index → scorecard; `BTreeMap` so every snapshot and export
    /// walks nodes in index order.
    cards: BTreeMap<u64, Scorecard>,
    /// Largest network size observed at a selection site (for the
    /// never-selected count; untracked ids below it are zero cards).
    fleet_size: u64,
    /// Queries observed end-to-end (the `QueryObserver` hook).
    queries: u64,
}

impl FleetState {
    const fn new() -> Self {
        Self {
            cards: BTreeMap::new(),
            fleet_size: 0,
            queries: 0,
        }
    }
}

fn state() -> MutexGuard<'static, FleetState> {
    static FLEET: OnceLock<Mutex<FleetState>> = OnceLock::new();
    FLEET
        .get_or_init(|| Mutex::new(FleetState::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Discards every scorecard and resets the fleet size and query count.
/// The enablement flag is left untouched.
pub fn reset() {
    *state() = FleetState::new();
}

/// Macro-shaped helper: fetch-or-create the card and apply `f`.
fn update(node: u64, f: impl FnOnce(&mut Scorecard)) {
    if !enabled() {
        return;
    }
    let mut s = state();
    f(s.cards.entry(node).or_insert_with(|| Scorecard::new(node)));
}

/// Records the network size a selection ran against (the denominator of
/// the never-selected count).
pub fn observe_fleet(n: usize) {
    if !enabled() {
        return;
    }
    let mut s = state();
    s.fleet_size = s.fleet_size.max(n as u64);
}

/// One query observed end-to-end (wired through
/// `telemetry::profile::QueryObserver` and the batch prologue).
pub fn query_observed(_query_id: u64) {
    if !enabled() {
        return;
    }
    state().queries += 1;
}

/// `node` made `query`'s initial participant list while its summaries
/// were at `summary_epoch`.
pub fn selected(query: u64, node: u64, summary_epoch: u64) {
    update(node, |c| {
        c.selected += 1;
        c.last_selected_query = query;
        c.last_summary_epoch = summary_epoch;
    });
}

/// `node` survived a query to completion (final cohort membership).
pub fn participated(node: u64) {
    update(node, |c| c.participated += 1);
}

/// `node` trained one round costing `sim_seconds` simulated and
/// `wall_nanos` measured time.
pub fn trained(node: u64, sim_seconds: f64, wall_nanos: u64) {
    update(node, |c| {
        c.rounds_trained += 1;
        c.train_sim_seconds += sim_seconds;
        c.train_wall_nanos = c.train_wall_nanos.saturating_add(wall_nanos);
    });
}

/// `bytes` model bytes were charged to `node`'s uplink.
pub fn transferred(node: u64, bytes: u64) {
    update(node, |c| c.bytes_transferred += bytes);
}

/// `n` of `node`'s transfer attempts were lost and retried.
pub fn retried(node: u64, n: u64) {
    update(node, |c| c.retried += n);
}

/// `node` left a cohort (dropout, crash, transfer failure or deadline
/// miss).
pub fn dropped(node: u64) {
    update(node, |c| c.dropped += 1);
}

/// A straggler slowdown was applied to `node`'s training.
pub fn straggled(node: u64) {
    update(node, |c| c.straggled += 1);
}

/// `node` was promoted from the ranked standby tail.
pub fn promoted(node: u64) {
    update(node, |c| c.promoted += 1);
}

/// `node` sat in a cohort whose round lost quorum.
pub fn quorum_lost(node: u64) {
    update(node, |c| c.quorum_lost += 1);
}

/// A copy of every tracked scorecard, in node-index order.
pub fn snapshot() -> Vec<Scorecard> {
    state().cards.values().copied().collect()
}

/// The scorecard of one node: its tracked card, a zero card when the
/// node is known to exist but was never touched, `None` when the index
/// is outside every observed network.
pub fn scorecard(node: u64) -> Option<Scorecard> {
    let s = state();
    if let Some(c) = s.cards.get(&node) {
        return Some(*c);
    }
    (node < s.fleet_size).then(|| Scorecard::new(node))
}

/// The largest network size observed so far.
pub fn fleet_size() -> u64 {
    state().fleet_size
}

/// Queries observed end-to-end.
pub fn queries() -> u64 {
    state().queries
}

/// Fleet-level selection-skew statistics, computed deterministically
/// from a scorecard snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewStats {
    /// Selections summed over the fleet.
    pub total_selections: u64,
    /// Gini coefficient of the per-node selection counts over the whole
    /// fleet (never-selected nodes count as zeros). 0 = perfectly even,
    /// → 1 = one node takes everything.
    pub gini: f64,
    /// Shannon entropy of the selection distribution normalized by
    /// `ln(fleet_size)`: 1 = uniform, → 0 = concentrated.
    pub entropy: f64,
    /// The `(node, selected)` pairs of the K hottest nodes, selection
    /// count descending, node index ascending on ties.
    pub top: Vec<(u64, u64)>,
    /// Nodes in the fleet that no query ever selected.
    pub never_selected: u64,
}

/// Computes [`SkewStats`] over a snapshot. `fleet_size` pads the
/// distribution with zeros for never-selected nodes (it is clamped up
/// to the tracked node count, so a stale size cannot lose nodes).
///
/// Both the Gini numerator and the top-K order are integer arithmetic
/// over sorted `u64`s, and the entropy sum runs in node-index order —
/// every float here is a pure function of the counts, never of thread
/// scheduling.
pub fn skew(cards: &[Scorecard], fleet_size: u64, k: usize) -> SkewStats {
    let n = fleet_size
        .max(cards.len() as u64)
        .max(cards.iter().map(|c| c.node + 1).max().unwrap_or(0));
    let total: u64 = cards.iter().map(|c| c.selected).sum();
    let selected_nodes = cards.iter().filter(|c| c.selected > 0).count() as u64;
    let never_selected = n - selected_nodes;

    // Gini over the full n-node distribution (zeros included), via the
    // sorted formula G = 2·Σ i·x_(i) / (n·S) − (n+1)/n with 1-based
    // ranks — the Σ stays in u128, so the only float op is one division.
    let gini = if total == 0 || n <= 1 {
        0.0
    } else {
        let mut counts: Vec<u64> = cards.iter().map(|c| c.selected).collect();
        counts.resize(n as usize, 0);
        counts.sort_unstable();
        let weighted: u128 = counts
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as u128 + 1) * x as u128)
            .sum();
        (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };

    // Normalized entropy over the same distribution; zero-count nodes
    // contribute nothing, and the sum runs in node-index order.
    let entropy = if total == 0 {
        0.0
    } else if n <= 1 {
        1.0
    } else {
        let mut h = 0.0;
        for c in cards {
            if c.selected > 0 {
                let p = c.selected as f64 / total as f64;
                h -= p * p.ln();
            }
        }
        h / (n as f64).ln()
    };

    let mut ranked: Vec<(u64, u64)> = cards
        .iter()
        .filter(|c| c.selected > 0)
        .map(|c| (c.node, c.selected))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);

    SkewStats {
        total_selections: total,
        gini,
        entropy,
        top: ranked,
        never_selected,
    }
}

impl SkewStats {
    /// The fixed-key-order JSON object for these stats.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        write_key(out, "total_selections");
        write_u64(out, self.total_selections);
        out.push(',');
        write_key(out, "gini");
        write_f64(out, self.gini);
        out.push(',');
        write_key(out, "entropy");
        write_f64(out, self.entropy);
        out.push(',');
        write_key(out, "never_selected");
        write_u64(out, self.never_selected);
        out.push(',');
        write_key(out, "top");
        out.push('[');
        for (i, &(node, selected)) in self.top.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            write_key(out, "node");
            write_u64(out, node);
            out.push(',');
            write_key(out, "selected");
            write_u64(out, selected);
            out.push('}');
        }
        out.push(']');
        out.push('}');
    }
}

/// Renders the whole fleet — size, query count, every scorecard, skew
/// stats — as one deterministic JSON document (fixed key order, no wall
/// time). This is the body of the `/nodes` endpoint and the per-stream
/// section of `results/fleet.json`.
pub fn to_json() -> String {
    let (cards, fleet_size, queries) = {
        let s = state();
        (
            s.cards.values().copied().collect::<Vec<_>>(),
            s.fleet_size,
            s.queries,
        )
    };
    let stats = skew(&cards, fleet_size, PROM_TOP_K);
    let mut out = String::with_capacity(256 + cards.len() * 192);
    out.push('{');
    write_key(&mut out, "fleet_size");
    write_u64(&mut out, fleet_size.max(cards.len() as u64));
    out.push(',');
    write_key(&mut out, "queries");
    write_u64(&mut out, queries);
    out.push(',');
    write_key(&mut out, "nodes");
    out.push('[');
    for (i, c) in cards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        c.write_json(&mut out);
    }
    out.push(']');
    out.push(',');
    write_key(&mut out, "skew");
    stats.write_json(&mut out);
    out.push('}');
    out
}

/// A Prometheus counter family exported per node: metric name plus the
/// scorecard field it reads.
type PromFamily = (&'static str, fn(&Scorecard) -> u64);

/// The per-node counter families exported to Prometheus.
const PROM_FAMILIES: [PromFamily; 4] = [
    ("qens_node_selected_total", |c| c.selected),
    ("qens_node_participated_total", |c| c.participated),
    ("qens_node_dropped_total", |c| c.dropped),
    ("qens_node_promoted_total", |c| c.promoted),
];

/// Appends the fleet's Prometheus series to `out`: per-node counters
/// for the top-`top_k` nodes by selection count with every other node
/// folded into `node="other"`, plus fleet-level skew gauges and journal
/// counters. Appends nothing while recording is disabled, so a
/// `QENS_FLEET=0` scrape is byte-identical to the pre-fleet exposition.
pub fn to_prometheus(out: &mut String, top_k: usize) {
    if !enabled() {
        return;
    }
    let (cards, fleet_size, queries) = {
        let s = state();
        (
            s.cards.values().copied().collect::<Vec<_>>(),
            s.fleet_size,
            s.queries,
        )
    };
    let stats = skew(&cards, fleet_size, top_k);
    let hot: Vec<u64> = stats.top.iter().map(|&(node, _)| node).collect();
    for (name, get) in PROM_FAMILIES {
        push_meta(out, name, "counter");
        for &node in &hot {
            let card = cards
                .iter()
                .find(|c| c.node == node)
                .expect("hot node tracked");
            out.push_str(&format!("{name}{{node=\"n{node}\"}} {}\n", get(card)));
        }
        let other: u64 = cards
            .iter()
            .filter(|c| !hot.contains(&c.node))
            .map(get)
            .sum();
        out.push_str(&format!("{name}{{node=\"other\"}} {other}\n"));
    }
    push_meta(out, "qens_fleet_size", "gauge");
    out.push_str(&format!(
        "qens_fleet_size {}\n",
        fleet_size.max(cards.len() as u64)
    ));
    push_meta(out, "qens_fleet_queries_total", "counter");
    out.push_str(&format!("qens_fleet_queries_total {queries}\n"));
    push_meta(out, "qens_fleet_never_selected", "gauge");
    out.push_str(&format!(
        "qens_fleet_never_selected {}\n",
        stats.never_selected
    ));
    push_meta(out, "qens_fleet_selection_gini", "gauge");
    out.push_str(&format!("qens_fleet_selection_gini {}\n", stats.gini));
    push_meta(out, "qens_fleet_selection_entropy", "gauge");
    out.push_str(&format!("qens_fleet_selection_entropy {}\n", stats.entropy));
    push_meta(out, "qens_journal_events_total", "counter");
    out.push_str(&format!(
        "qens_journal_events_total {}\n",
        crate::journal::events_total()
    ));
    push_meta(out, "qens_journal_overwritten_total", "counter");
    out.push_str(&format!(
        "qens_journal_overwritten_total {}\n",
        crate::journal::overwritten()
    ));
}

fn push_meta(out: &mut String, name: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(crate::export::help_text(name));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::test_lock();
        set_enabled(true);
        reset();
        crate::journal::clear();
        g
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = locked();
        set_enabled(false);
        selected(1, 0, 3);
        trained(0, 1.5, 10);
        observe_fleet(5);
        query_observed(1);
        assert!(snapshot().is_empty());
        assert_eq!(fleet_size(), 0);
        assert_eq!(queries(), 0);
        set_enabled(true);
    }

    #[test]
    fn scorecards_accumulate_per_node() {
        let _g = locked();
        observe_fleet(4);
        selected(7, 1, 2);
        selected(8, 1, 2);
        selected(7, 2, 5);
        trained(1, 0.5, 100);
        trained(1, 0.25, 50);
        transferred(1, 4096);
        retried(1, 3);
        dropped(2);
        straggled(2);
        promoted(3);
        quorum_lost(2);
        participated(1);
        query_observed(7);
        query_observed(8);

        let cards = snapshot();
        assert_eq!(cards.len(), 3);
        let n1 = scorecard(1).unwrap();
        assert_eq!(n1.selected, 2);
        assert_eq!(n1.last_selected_query, 8);
        assert_eq!(n1.last_summary_epoch, 2);
        assert_eq!(n1.rounds_trained, 2);
        assert!((n1.train_sim_seconds - 0.75).abs() < 1e-12);
        assert_eq!(n1.train_wall_nanos, 150);
        assert_eq!(n1.bytes_transferred, 4096);
        assert_eq!(n1.retried, 3);
        assert_eq!(n1.participated, 1);
        let n2 = scorecard(2).unwrap();
        assert_eq!((n2.dropped, n2.straggled, n2.quorum_lost), (1, 1, 1));
        assert_eq!(scorecard(3).unwrap().promoted, 1);
        // Known-but-untouched node: a zero card; unknown index: None.
        let zero = scorecard(0).unwrap();
        assert_eq!(zero.selected, 0);
        assert_eq!(zero.last_selected_query, u64::MAX);
        assert!(scorecard(99).is_none());
        assert_eq!(queries(), 2);
    }

    #[test]
    fn skew_of_a_uniform_fleet_is_flat() {
        let _g = locked();
        observe_fleet(4);
        for node in 0..4u64 {
            for q in 0..5u64 {
                selected(q, node, 0);
            }
        }
        let stats = skew(&snapshot(), fleet_size(), 3);
        assert_eq!(stats.total_selections, 20);
        assert!(stats.gini.abs() < 1e-12, "uniform gini ~0: {}", stats.gini);
        assert!(
            (stats.entropy - 1.0).abs() < 1e-12,
            "uniform entropy ~1: {}",
            stats.entropy
        );
        assert_eq!(stats.never_selected, 0);
        assert_eq!(stats.top.len(), 3);
        assert_eq!(stats.top[0], (0, 5), "ties break on node index");
    }

    #[test]
    fn skew_of_a_hotspot_fleet_is_concentrated() {
        let _g = locked();
        observe_fleet(10);
        for q in 0..30u64 {
            selected(q, 4, 0);
        }
        let stats = skew(&snapshot(), fleet_size(), 3);
        assert_eq!(stats.total_selections, 30);
        assert!(stats.gini > 0.85, "one hot node: gini {}", stats.gini);
        assert!(stats.entropy.abs() < 1e-12);
        assert_eq!(stats.never_selected, 9);
        assert_eq!(stats.top, vec![(4, 30)]);
    }

    #[test]
    fn skew_of_an_idle_fleet_is_all_zeros() {
        let stats = skew(&[], 6, 3);
        assert_eq!(stats.total_selections, 0);
        assert_eq!(stats.gini, 0.0);
        assert_eq!(stats.entropy, 0.0);
        assert_eq!(stats.never_selected, 6);
        assert!(stats.top.is_empty());
    }

    #[test]
    fn fleet_json_is_byte_stable_with_fixed_keys() {
        let _g = locked();
        observe_fleet(3);
        selected(11, 0, 1);
        selected(11, 2, 4);
        trained(0, 1.25, 999);
        query_observed(11);
        let a = to_json();
        let b = to_json();
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"fleet_size":3,"queries":1,"nodes":["#));
        assert!(a.contains(r#""node":0,"selected":1"#));
        assert!(a.contains(r#""train_sim_seconds":1.25"#));
        assert!(a.contains(r#""last_selected_query":11"#));
        assert!(a.contains(r#""skew":{"total_selections":2"#));
        assert!(a.contains(r#""never_selected":1"#));
        assert!(
            !a.contains("wall"),
            "wall time must not leak into the deterministic export"
        );
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn prometheus_cardinality_is_bounded_on_a_200_node_fleet() {
        let _g = locked();
        observe_fleet(200);
        // A skewed load: node i selected (i % 17) times.
        for node in 0..200u64 {
            for q in 0..(node % 17) {
                selected(q, node, 0);
            }
        }
        let mut out = String::new();
        to_prometheus(&mut out, PROM_TOP_K);
        let node_series = out
            .lines()
            .filter(|l| l.starts_with("qens_node_") && !l.starts_with('#'))
            .count();
        let bound = PROM_FAMILIES.len() * (PROM_TOP_K + 1);
        assert!(
            node_series <= bound,
            "{node_series} per-node series exceed the {bound} cardinality cap"
        );
        // The aggregate bucket keeps the totals honest: per-family sum
        // over exported series equals the fleet-wide total.
        let total_selected: u64 = snapshot().iter().map(|c| c.selected).sum();
        let exported: u64 = out
            .lines()
            .filter(|l| l.starts_with("qens_node_selected_total{"))
            .map(|l| l.split_whitespace().last().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(exported, total_selected);
        assert!(out.contains("qens_node_selected_total{node=\"other\"}"));
        assert!(out.contains("qens_fleet_selection_gini "));
        assert!(out.contains("# HELP qens_node_selected_total "));
        assert!(out.contains("# TYPE qens_fleet_size gauge"));
    }

    #[test]
    fn prometheus_is_silent_while_disabled() {
        let _g = locked();
        selected(1, 0, 0);
        set_enabled(false);
        let mut out = String::new();
        to_prometheus(&mut out, PROM_TOP_K);
        assert!(out.is_empty());
        set_enabled(true);
    }
}
