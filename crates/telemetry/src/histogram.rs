//! Log-scale histograms with power-of-two buckets.
//!
//! Bucket 0 holds the value 0; bucket `i` (1..=63) holds values in
//! `[2^(i-1), 2^i - 1]` (bucket 63 additionally absorbs everything up to
//! `u64::MAX`). 64 atomic cells cover the full `u64` range with ≤ 2×
//! relative error, which is plenty for latency distributions spanning
//! nanoseconds to minutes — the same trade HdrHistogram-style recorders
//! make, but in ~60 lines of std-only code.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (one per power of two, plus the zero bucket).
pub const NUM_BUCKETS: usize = 64;

/// Index of the bucket holding `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive `(lo, hi)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == NUM_BUCKETS - 1 {
        (1u64 << (i - 1), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A thread-safe log-scale histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Minimum observed value; `u64::MAX` sentinel when empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. No-op while telemetry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_unconditional(v);
    }

    /// Records regardless of the enablement flag.
    pub fn record_unconditional(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: a long-running histogram must never wrap.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Resets every cell to empty.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the histogram (cells are read
    /// individually; concurrent recording can skew totals by the handful
    /// of in-flight samples, which is the standard trade for lock-free
    /// recording).
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                let (lo, hi) = bucket_bounds(i);
                buckets.push(BucketCount {
                    index: i,
                    lo,
                    hi,
                    count: c,
                });
            }
        }
        let count = buckets.iter().map(|b| b.count).sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One occupied bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketCount {
    /// Bucket index (see [`bucket_index`]).
    pub index: usize,
    /// Inclusive lower value bound.
    pub lo: u64,
    /// Inclusive upper value bound.
    pub hi: u64,
    /// Samples that fell in this bucket.
    pub count: u64,
}

/// An immutable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The `q`-th percentile (`q` in `[0, 100]`), linearly interpolated
    /// within the containing bucket. Returns 0 for an empty histogram.
    ///
    /// The rank is `ceil(q/100 · count)` clamped to `[1, count]`; inside
    /// a bucket spanning `[lo, hi]` holding `c` samples, rank `r` (1-based
    /// within the bucket) interpolates to `lo + (r / c) · (hi - lo)`.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 100.0);
        let target = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for b in &self.buckets {
            if cum + b.count >= target {
                let rank_in_bucket = (target - cum) as f64; // 1..=count
                let frac = rank_in_bucket / b.count as f64;
                return b.lo as f64 + frac * (b.hi - b.lo) as f64;
            }
            cum += b.count;
        }
        self.max as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket difference `self - earlier` (for query-scoped
    /// deltas). `min`/`max` are re-derived from the surviving buckets'
    /// bounds, since extrema are not invertible.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for b in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|e| e.index == b.index)
                .map_or(0, |e| e.count);
            let d = b.count.saturating_sub(before);
            if d > 0 {
                buckets.push(BucketCount {
                    count: d,
                    ..b.clone()
                });
            }
        }
        let count = buckets.iter().map(|b| b.count).sum();
        HistogramSnapshot {
            name: self.name.clone(),
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: buckets.first().map_or(0, |b| b.lo),
            max: buckets.last().map_or(0, |b| b.hi),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        let _g = crate::test_lock();
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's bounds are consistent with bucket_index.
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi bound of bucket {i}");
        }
        // Buckets tile the range with no gaps.
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_bounds(i).0,
                bucket_bounds(i - 1).1 + 1,
                "gap before bucket {i}"
            );
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [5u64, 0, 17, 9000] {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 9022);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 9000);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 4);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        // 100 samples, all in bucket [64, 127].
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.snapshot("t");
        // Rank r of 100 in the bucket [64,127] -> 64 + r/100 * 63.
        assert_eq!(s.percentile(1.0), 64.0 + (1.0 / 100.0) * 63.0);
        assert_eq!(s.p50(), 64.0 + 0.5 * 63.0);
        assert_eq!(s.percentile(100.0), 127.0);
        // Percentiles always land inside the recorded value range's bucket.
        for q in [0.0, 10.0, 25.0, 75.0, 99.0] {
            let p = s.percentile(q);
            assert!((64.0..=127.0).contains(&p), "q={q} p={p}");
        }
    }

    #[test]
    fn percentiles_across_buckets_are_monotone() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot("t");
        let mut last = -1.0;
        for q in 0..=100 {
            let p = s.percentile(q as f64);
            assert!(p >= last, "percentile not monotone at q={q}: {p} < {last}");
            last = p;
        }
        // p50 of 1..=1000 must land in the bucket containing 500
        // ([512,1023] or [256,511] depending on rounding — within 2x).
        assert!((250.0..=1023.0).contains(&s.p50()), "p50 {}", s.p50());
        assert_eq!(s.percentile(0.0), s.percentile(0.1));
        // The named quantile helpers sit in order: p50 <= p90 <= p95 <= p99.
        assert!(s.p50() <= s.p90());
        assert!(s.p90() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p95() <= s.max as f64);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let _g = crate::test_lock();
        let h = Histogram::new();
        let s = h.snapshot("t");
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn delta_since_subtracts_bucket_counts() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let h = Histogram::new();
        h.record(10);
        h.record(1000);
        let before = h.snapshot("t");
        h.record(10);
        h.record(70);
        let after = h.snapshot("t");
        let d = after.delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 80);
        assert_eq!(d.buckets.iter().map(|b| b.count).sum::<u64>(), 2);
    }
}
