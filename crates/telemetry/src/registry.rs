//! The global metric registry and per-query scopes.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::HistogramSnapshot;
use crate::{Counter, Gauge, Histogram};

/// How many completed per-query snapshots the registry retains (a ring:
/// the oldest are dropped first). Bounds memory on long query streams.
pub const MAX_QUERY_SNAPSHOTS: usize = 1024;

/// Thread-safe name → metric table plus the per-query snapshot ring.
///
/// Metric names should follow the `qens_<crate>_<name>` convention with
/// a unit suffix; registration is idempotent (the same name always
/// returns the same metric).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    queries: Mutex<Vec<QuerySnapshot>>,
    /// The open query scope's `(id, baseline)`, if any. The paper's
    /// leader protocol processes queries one at a time, so a single slot
    /// suffices; a nested/concurrent scope is recorded as inert.
    open_query: Mutex<Option<(u64, Snapshot)>>,
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// A point-in-time view of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every metric and clears the per-query ring. Metric handles
    /// stay valid (tests, repeated experiment arms).
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
        self.queries.lock().unwrap().clear();
        *self.open_query.lock().unwrap() = None;
    }

    /// Completed per-query snapshots, oldest first.
    pub fn query_snapshots(&self) -> Vec<QuerySnapshot> {
        self.queries.lock().unwrap().clone()
    }

    fn begin_query(&self, id: u64) -> bool {
        let mut open = self.open_query.lock().unwrap();
        if open.is_some() {
            return false; // nested scope: inert
        }
        *open = Some((id, self.snapshot()));
        true
    }

    fn end_query(&self, id: u64) {
        let taken = {
            let mut open = self.open_query.lock().unwrap();
            match open.take() {
                Some((open_id, base)) if open_id == id => Some(base),
                other => {
                    *open = other;
                    None
                }
            }
        };
        if let Some(base) = taken {
            let delta = self.snapshot().delta_since(&base);
            let mut queries = self.queries.lock().unwrap();
            if queries.len() >= MAX_QUERY_SNAPSHOTS {
                queries.remove(0);
            }
            queries.push(QuerySnapshot {
                query_id: id,
                metrics: delta,
            });
        }
    }
}

/// A point-in-time view of the registry (names sorted ascending, so
/// exports are deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram views by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The named gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The named histogram's view, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing has been recorded (all counters zero, all
    /// histograms empty).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&(_, v)| v == 0) && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Per-metric difference `self - earlier` (metrics new in `self` are
    /// kept whole; zero-valued differences are dropped).
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(n, v)| {
                let before = earlier.counter(n).unwrap_or(0);
                let d = v.saturating_sub(before);
                (d > 0).then(|| (n.clone(), d))
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), v - earlier.gauge(n).unwrap_or(0.0)))
            .filter(|&(_, d)| d != 0.0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| match earlier.histogram(&h.name) {
                Some(e) => h.delta_since(e),
                None => h.clone(),
            })
            .filter(|h| h.count > 0)
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The delta one query contributed to every metric.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySnapshot {
    /// The query's id.
    pub query_id: u64,
    /// Metric deltas attributable to this query.
    pub metrics: Snapshot,
}

/// RAII per-query scope: captures a baseline snapshot on entry and files
/// the delta into the registry's query ring on drop.
///
/// Scopes are designed for the leader's one-query-at-a-time protocol: a
/// scope opened while another is live is inert (global metrics still
/// record; only the per-query attribution is skipped).
#[derive(Debug)]
pub struct QueryScope {
    id: u64,
    active: bool,
}

impl QueryScope {
    /// Opens a scope for `query_id` against the global registry. Inert
    /// while telemetry is disabled or when a scope is already open.
    pub fn begin(query_id: u64) -> Self {
        let active = crate::enabled() && global().begin_query(query_id);
        Self {
            id: query_id,
            active,
        }
    }

    /// Whether this scope will file a per-query snapshot.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for QueryScope {
    fn drop(&mut self) {
        if self.active {
            global().end_query(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let a = r.counter("qens_test_x_total");
        let b = r.counter("qens_test_x_total");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("qens_test_b_total").add(2);
        r.counter("qens_test_a_total").add(1);
        r.gauge("qens_test_g").set(1.5);
        r.histogram("qens_test_h_nanos").record(7);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["qens_test_a_total", "qens_test_b_total"]);
        assert_eq!(s.counter("qens_test_b_total"), Some(2));
        assert_eq!(s.gauge("qens_test_g"), Some(1.5));
        assert_eq!(s.histogram("qens_test_h_nanos").unwrap().count, 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn delta_since_isolates_new_activity() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("qens_test_d_total").add(5);
        let before = r.snapshot();
        r.counter("qens_test_d_total").add(3);
        r.counter("qens_test_new_total").add(1);
        let d = r.snapshot().delta_since(&before);
        assert_eq!(d.counter("qens_test_d_total"), Some(3));
        assert_eq!(d.counter("qens_test_new_total"), Some(1));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let r = Registry::new();
        let c = r.counter("qens_test_r_total");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(r.snapshot().counter("qens_test_r_total"), Some(2));
    }
}
