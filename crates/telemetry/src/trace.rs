//! Hierarchical query tracing: a structured tree of timed begin/end
//! events on top of the flat metric registry.
//!
//! A per-query selection→train→aggregate pipeline is fundamentally a
//! *tree* — query → selection scoring → round → participant →
//! train/transfer/retry — and the aggregate counters/histograms of the
//! registry cannot say where one slow query actually spent its time.
//! This module records that tree.
//!
//! # Event model
//!
//! * [`TraceSpan`] — an RAII begin/end pair with a process-unique span
//!   id; the parent is whatever span is open on the recording thread
//!   (a thread-local stack), so nesting falls out of scope structure.
//! * [`instant`] — a zero-duration point event (fault fired, standby
//!   promoted, bytes charged).
//! * Every event may carry up to [`MAX_ARGS`] static-key `u64`
//!   arguments (node index, round, bytes, …) and is stamped with the
//!   id of the query whose [`query_span`] is currently open.
//!
//! # Clocks
//!
//! The collector runs in one of two modes ([`Clock`]):
//!
//! * **Wall** — timestamps are nanoseconds since the trace epoch.
//!   Events may be recorded from any thread (pool workers included);
//!   ordering between threads is scheduling-dependent, exactly like a
//!   real profiler.
//! * **Logical** — the timestamp is a deterministic tick (0, 1, 2, …)
//!   assigned in recording order, and **only deterministic call sites
//!   record**: [`span`]/[`instant`] (leader-serial code) record,
//!   [`wall_span`]/[`wall_instant`] (worker/hot-path code) are inert.
//!   Because the leader's event sequence is a pure function of the
//!   simulation (never of thread scheduling), a logical trace — and its
//!   byte-stable JSON export — is bit-identical for any `QENS_THREADS`,
//!   mirroring the `faults::FaultTrace` stability contract.
//!
//! # Enablement and cost
//!
//! Tracing is **off by default**; the disabled fast path of every entry
//! point is a single relaxed atomic load — no clock read, no
//! allocation, no lock (the same inertness contract as
//! [`crate::SpanGuard`]). Enable with `QENS_TRACE=wall|logical` or
//! [`set_mode`]. The buffer is bounded ([`MAX_TRACE_EVENTS`]); once
//! full, new events are counted in [`dropped`] and discarded.
//!
//! # Export
//!
//! [`export_chrome`] renders the buffer in the Chrome trace-event JSON
//! format (`{"traceEvents":[…]}`), directly loadable in Perfetto or
//! `chrome://tracing`. Key order is fixed and timestamps are integers
//! in logical mode, so the export is byte-stable.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::{write_key, write_str, write_u64};

/// Maximum `(key, value)` arguments one event can carry.
pub const MAX_ARGS: usize = 4;

/// Buffered-event cap: recording stops (and [`dropped`] counts) once
/// the buffer holds this many events. Bounds trace memory on long
/// streams (~40 MB worst case at the default cap).
pub const MAX_TRACE_EVENTS: usize = 1 << 18;

/// Which timestamp source the collector uses. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Nanoseconds since the trace epoch; any thread may record.
    Wall,
    /// A deterministic tick per event; only deterministic (leader)
    /// call sites record, so the trace is thread-count independent.
    Logical,
}

/// Tri-state-plus mode flag: 0 = uninitialised (consult the
/// environment), 1 = off, 2 = wall, 3 = logical.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The id of the query whose [`query_span`] is currently open
/// (`u64::MAX` = none). Written by the leader; workers read it so
/// wall-mode events are attributed to the right query.
static CURRENT_QUERY: AtomicU64 = AtomicU64::new(u64::MAX);

/// The current trace mode (`None` = disabled). One relaxed load on the
/// hot path.
#[inline]
pub fn mode() -> Option<Clock> {
    match MODE.load(Ordering::Relaxed) {
        2 => Some(Clock::Wall),
        3 => Some(Clock::Logical),
        1 => None,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> Option<Clock> {
    let m = match std::env::var("QENS_TRACE") {
        Ok(v) => match v.as_str() {
            "wall" | "1" | "true" | "on" | "yes" => Some(Clock::Wall),
            "logical" | "tick" => Some(Clock::Logical),
            _ => None,
        },
        Err(_) => None,
    };
    MODE.store(encode_mode(m), Ordering::Relaxed);
    m
}

fn encode_mode(m: Option<Clock>) -> u8 {
    match m {
        None => 1,
        Some(Clock::Wall) => 2,
        Some(Clock::Logical) => 3,
    }
}

/// Turns tracing on (with the given clock) or off, overriding
/// `QENS_TRACE`. Does **not** clear already-buffered events — call
/// [`clear`] for a fresh trace.
pub fn set_mode(m: Option<Clock>) {
    MODE.store(encode_mode(m), Ordering::Relaxed);
}

/// Whether any event would be recorded right now.
#[inline]
pub fn is_enabled() -> bool {
    mode().is_some()
}

/// One event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
}

impl Phase {
    fn chrome(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// A fixed-capacity `(static key, u64 value)` argument set — no
/// allocation per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Args {
    items: [(&'static str, u64); MAX_ARGS],
    len: u8,
}

impl Args {
    fn from_slice(args: &[(&'static str, u64)]) -> Self {
        let mut out = Self::default();
        for &(k, v) in args.iter().take(MAX_ARGS) {
            out.items[out.len as usize] = (k, v);
            out.len += 1;
        }
        out
    }

    /// The populated `(key, value)` pairs.
    pub fn as_slice(&self) -> &[(&'static str, u64)] {
        &self.items[..self.len as usize]
    }
}

/// One buffered trace event (a structured snapshot row; the public view
/// for tests and tooling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (`crate.verb` convention, e.g. `fedlearn.round`).
    pub name: &'static str,
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Logical tick or nanoseconds since the epoch, per [`Clock`].
    pub ts: u64,
    /// Recording thread (0 is the first thread seen; always 0 in
    /// logical mode).
    pub tid: u32,
    /// Span id (begin/end pairs share it; 0 for instants).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Owning query id (`u64::MAX` = outside any query span).
    pub query: u64,
    /// Static-key arguments.
    pub args: Args,
}

struct Collector {
    events: Vec<TraceEvent>,
    next_span: u64,
    tick: u64,
    dropped: u64,
    epoch: Option<Instant>,
    next_tid: u32,
}

impl Collector {
    const fn new() -> Self {
        Self {
            events: Vec::new(),
            next_span: 1,
            tick: 0,
            dropped: 0,
            epoch: None,
            next_tid: 0,
        }
    }
}

fn collector() -> MutexGuard<'static, Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR
        .get_or_init(|| Mutex::new(Collector::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Open-span stack of this thread (for parent assignment).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's registration-order id (`u32::MAX` = unassigned).
    static TID: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

/// Discards every buffered event and resets ticks, span ids, the epoch
/// and the dropped counter. The mode is left untouched.
pub fn clear() {
    let mut c = collector();
    *c = Collector::new();
}

/// Number of buffered events.
pub fn events_len() -> usize {
    collector().events.len()
}

/// Events discarded because the buffer hit [`MAX_TRACE_EVENTS`].
pub fn dropped() -> u64 {
    collector().dropped
}

/// A structured copy of the buffered events (tests, tooling).
pub fn snapshot_events() -> Vec<TraceEvent> {
    collector().events.clone()
}

/// A structured copy of the buffered events attributed to `query`
/// (the root query span included — it is stamped with its own id).
pub fn snapshot_query(query: u64) -> Vec<TraceEvent> {
    collector()
        .events
        .iter()
        .filter(|e| e.query == query)
        .cloned()
        .collect()
}

/// The distinct query ids seen in the buffer, in first-seen order.
pub fn query_ids() -> Vec<u64> {
    let c = collector();
    let mut out = Vec::new();
    for e in &c.events {
        if e.query != u64::MAX && !out.contains(&e.query) {
            out.push(e.query);
        }
    }
    out
}

fn record(clock: Clock, phase: Phase, name: &'static str, span: u64, parent: u64, args: Args) {
    // The wall timestamp must be taken *outside* the collector lock so
    // contention does not skew durations; logical ticks are assigned
    // under the lock (that is what makes them a total order).
    let wall_now = match clock {
        Clock::Wall => Some(Instant::now()),
        Clock::Logical => None,
    };
    let tid = match clock {
        Clock::Logical => 0,
        Clock::Wall => TID.with(|t| t.get()),
    };
    let mut c = collector();
    if c.events.len() >= MAX_TRACE_EVENTS {
        c.dropped += 1;
        crate::counter!("qens_trace_dropped_total").incr();
        return;
    }
    let ts = match wall_now {
        Some(now) => {
            let epoch = *c.epoch.get_or_insert(now);
            u64::try_from(now.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
        }
        None => {
            let t = c.tick;
            c.tick += 1;
            t
        }
    };
    let tid = if tid == u32::MAX {
        let assigned = c.next_tid;
        c.next_tid += 1;
        TID.with(|t| t.set(assigned));
        assigned
    } else {
        tid
    };
    c.events.push(TraceEvent {
        name,
        phase,
        ts,
        tid,
        span,
        parent,
        query: CURRENT_QUERY.load(Ordering::Relaxed),
        args,
    });
    crate::counter!("qens_trace_events_total").incr();
}

fn alloc_span_id() -> u64 {
    let mut c = collector();
    let id = c.next_span;
    c.next_span += 1;
    id
}

fn current_parent() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII span guard: emits a `Begin` event on creation and the matching
/// `End` on drop. Inert (no clock read, no allocation) when its
/// constructor decided not to record.
#[derive(Debug)]
pub struct TraceSpan {
    name: &'static str,
    id: u64,
    clock: Option<Clock>,
    /// Clear [`CURRENT_QUERY`] on drop (root query spans only).
    owns_query: bool,
}

impl TraceSpan {
    const INERT: TraceSpan = TraceSpan {
        name: "",
        id: 0,
        clock: None,
        owns_query: false,
    };

    fn begin(name: &'static str, args: &[(&'static str, u64)], wall_only: bool) -> Self {
        let Some(clock) = mode() else {
            return Self::INERT;
        };
        if wall_only && clock == Clock::Logical {
            return Self::INERT;
        }
        let id = alloc_span_id();
        let parent = current_parent();
        record(
            clock,
            Phase::Begin,
            name,
            id,
            parent,
            Args::from_slice(args),
        );
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        crate::counter!("qens_trace_spans_total").incr();
        Self {
            name,
            id,
            clock: Some(clock),
            owns_query: false,
        }
    }

    /// Whether this span will emit an `End` event on drop.
    pub fn is_recording(&self) -> bool {
        self.clock.is_some()
    }

    /// The span id (0 when inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span now instead of at scope end.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(clock) = self.clock else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Scope discipline means our id is on top; be robust to
            // out-of-order drops anyway (retain everything else).
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                stack.retain(|&x| x != self.id);
            }
        });
        let parent = current_parent();
        record(
            clock,
            Phase::End,
            self.name,
            self.id,
            parent,
            Args::default(),
        );
        if self.owns_query {
            CURRENT_QUERY.store(u64::MAX, Ordering::Relaxed);
        }
    }
}

/// Opens a span from a **deterministic** call site (leader-serial code
/// whose execution order is a pure function of the simulation).
/// Recorded in both wall and logical modes.
#[inline]
pub fn span(name: &'static str) -> TraceSpan {
    span_args(name, &[])
}

/// [`span`] with arguments.
#[inline]
pub fn span_args(name: &'static str, args: &[(&'static str, u64)]) -> TraceSpan {
    TraceSpan::begin(name, args, false)
}

/// Opens a span from a scheduling-dependent call site (pool workers,
/// hot paths). Recorded only in wall mode; inert in logical mode so
/// logical traces stay thread-count independent.
#[inline]
pub fn wall_span(name: &'static str) -> TraceSpan {
    wall_span_args(name, &[])
}

/// [`wall_span`] with arguments.
#[inline]
pub fn wall_span_args(name: &'static str, args: &[(&'static str, u64)]) -> TraceSpan {
    TraceSpan::begin(name, args, true)
}

/// Opens the root span of one query's pipeline and stamps every event
/// until it drops with `query_id`. Deterministic call sites only (the
/// leader runs one query at a time).
pub fn query_span(query_id: u64) -> TraceSpan {
    // Stamp the query id *before* the Begin event records, so the root
    // "query" span is itself attributed to its query — per-query
    // snapshots ([`snapshot_query`]) would otherwise miss their root
    // Begin and hand the profiler an unbalanced tree.
    if mode().is_some() {
        CURRENT_QUERY.store(query_id, Ordering::Relaxed);
    }
    let mut s = TraceSpan::begin("query", &[("query", query_id)], false);
    if s.is_recording() {
        s.owns_query = true;
    } else {
        CURRENT_QUERY.store(u64::MAX, Ordering::Relaxed);
    }
    s
}

/// Records a point event from a **deterministic** call site (recorded
/// in both modes).
#[inline]
pub fn instant(name: &'static str, args: &[(&'static str, u64)]) {
    let Some(clock) = mode() else { return };
    record(
        clock,
        Phase::Instant,
        name,
        0,
        current_parent(),
        Args::from_slice(args),
    );
}

/// Records a point event from a scheduling-dependent call site (wall
/// mode only).
#[inline]
pub fn wall_instant(name: &'static str, args: &[(&'static str, u64)]) {
    if mode() == Some(Clock::Wall) {
        record(
            Clock::Wall,
            Phase::Instant,
            name,
            0,
            current_parent(),
            Args::from_slice(args),
        );
    }
}

fn write_event(out: &mut String, e: &TraceEvent, clock: Clock) {
    out.push('{');
    write_key(out, "name");
    write_str(out, e.name);
    out.push(',');
    write_key(out, "cat");
    write_str(out, "qens");
    out.push(',');
    write_key(out, "ph");
    write_str(out, e.phase.chrome());
    out.push(',');
    write_key(out, "ts");
    match clock {
        // Logical ticks export verbatim; wall nanos export as integer
        // microseconds with three decimals (Chrome's ts unit is µs).
        Clock::Logical => write_u64(out, e.ts),
        Clock::Wall => {
            out.push_str(&format!("{}.{:03}", e.ts / 1000, e.ts % 1000));
        }
    }
    out.push(',');
    write_key(out, "pid");
    write_u64(out, 0);
    out.push(',');
    write_key(out, "tid");
    write_u64(out, u64::from(e.tid));
    if e.phase == Phase::Instant {
        out.push(',');
        write_key(out, "s");
        write_str(out, "t");
    }
    out.push(',');
    write_key(out, "args");
    out.push('{');
    let mut first = true;
    if e.span != 0 {
        write_key(out, "span");
        write_u64(out, e.span);
        first = false;
    }
    if e.parent != 0 {
        if !first {
            out.push(',');
        }
        write_key(out, "parent");
        write_u64(out, e.parent);
        first = false;
    }
    if e.query != u64::MAX {
        if !first {
            out.push(',');
        }
        write_key(out, "q");
        write_u64(out, e.query);
        first = false;
    }
    for &(k, v) in e.args.as_slice() {
        if !first {
            out.push(',');
        }
        write_key(out, k);
        write_u64(out, v);
        first = false;
    }
    out.push('}');
    out.push('}');
}

/// Renders the buffer as a Chrome trace-event JSON document
/// (`{"traceEvents":[…],"displayTimeUnit":…,"otherData":{…}}`),
/// loadable in Perfetto / `chrome://tracing`. Pass `Some(query_id)` to
/// export one query's events only.
///
/// Key order, number formatting and event order are all fixed, so two
/// identical buffers export byte-identically — the logical-clock
/// seed-stability check in `scripts/verify.sh` diffs exactly this.
pub fn export_chrome(query: Option<u64>) -> String {
    let c = collector();
    // The clock tag in the export comes from the *current* mode; a
    // mixed buffer (mode switched mid-run without clear()) is the
    // caller's error.
    let clock = mode().unwrap_or(Clock::Logical);
    let mut out = String::with_capacity(256 + c.events.len() * 96);
    out.push('{');
    write_key(&mut out, "traceEvents");
    out.push('[');
    let mut first = true;
    for e in &c.events {
        if let Some(q) = query {
            if e.query != q {
                continue;
            }
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        write_event(&mut out, e, clock);
    }
    out.push_str("\n]");
    out.push(',');
    write_key(&mut out, "displayTimeUnit");
    write_str(&mut out, "ms");
    out.push(',');
    write_key(&mut out, "otherData");
    out.push('{');
    write_key(&mut out, "clock");
    write_str(
        &mut out,
        match clock {
            Clock::Wall => "wall",
            Clock::Logical => "logical",
        },
    );
    out.push(',');
    write_key(&mut out, "dropped");
    write_u64(&mut out, c.dropped);
    out.push('}');
    out.push('}');
    out
}

/// Writes [`export_chrome`] to `path`, creating parent directories.
pub fn write_chrome(path: &std::path::Path, query: Option<u64>) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, export_chrome(query))
}

/// Structural validation of the buffered events: every `Begin` has
/// exactly one later `End` with the same span id, parents are opened
/// before their children, and per-thread begin/end nesting is a proper
/// stack. Returns the first violation as an error string.
///
/// Used by `tests/trace_determinism.rs` to pin wall-clock traces, whose
/// cross-thread ordering is scheduling-dependent but whose *structure*
/// must still be a forest.
pub fn validate_structure(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut begun: BTreeMap<u64, usize> = BTreeMap::new(); // span -> begin index
    let mut ended: BTreeSet<u64> = BTreeSet::new();
    let mut stacks: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.phase {
            Phase::Begin => {
                if begun.insert(e.span, i).is_some() {
                    return Err(format!("span {} begun twice (event {i})", e.span));
                }
                if e.parent != 0 {
                    match begun.get(&e.parent) {
                        Some(&pi) if pi < i => {}
                        _ => {
                            return Err(format!(
                                "event {i} ({}) has parent {} not yet begun",
                                e.name, e.parent
                            ))
                        }
                    }
                }
                stacks.entry(e.tid).or_default().push(e.span);
            }
            Phase::End => {
                if !begun.contains_key(&e.span) {
                    return Err(format!("span {} ended but never begun (event {i})", e.span));
                }
                if !ended.insert(e.span) {
                    return Err(format!("span {} ended twice (event {i})", e.span));
                }
                let stack = stacks.entry(e.tid).or_default();
                match stack.pop() {
                    Some(top) if top == e.span => {}
                    other => {
                        return Err(format!(
                            "tid {} stack discipline broken at event {i}: popped {:?}, expected {}",
                            e.tid, other, e.span
                        ))
                    }
                }
            }
            Phase::Instant => {}
        }
    }
    for (&span, &i) in &begun {
        if !ended.contains(&span) {
            return Err(format!("span {span} (begun at event {i}) never ended"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace tests share the process-global collector and mode flag, so
    /// they serialise on the crate test lock like the enablement tests.
    fn locked(clock: Option<Clock>) -> std::sync::MutexGuard<'static, ()> {
        let g = crate::test_lock();
        set_mode(clock);
        clear();
        g
    }

    #[test]
    fn disabled_trace_is_inert() {
        let _g = locked(None);
        let s = span("qens.test.off");
        assert!(!s.is_recording());
        assert_eq!(s.id(), 0);
        drop(s);
        instant("qens.test.off.instant", &[("x", 1)]);
        wall_instant("qens.test.off.wall", &[]);
        assert_eq!(events_len(), 0);
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn logical_mode_skips_wall_only_sites() {
        let _g = locked(Some(Clock::Logical));
        let a = span("a");
        let w = wall_span("w");
        assert!(a.is_recording());
        assert!(!w.is_recording());
        wall_instant("wi", &[]);
        drop(w);
        drop(a);
        let events = snapshot_events();
        assert_eq!(events.len(), 2); // a begin + a end only
        assert!(events.iter().all(|e| e.name == "a"));
        // Logical ticks are 0, 1, ... and tid is forced to 0.
        assert_eq!(events[0].ts, 0);
        assert_eq!(events[1].ts, 1);
        assert!(events.iter().all(|e| e.tid == 0));
        set_mode(None);
    }

    #[test]
    fn spans_nest_and_instants_inherit_the_parent() {
        let _g = locked(Some(Clock::Logical));
        let root = span("root");
        let root_id = root.id();
        {
            let child = span_args("child", &[("k", 7)]);
            assert_ne!(child.id(), root_id);
            instant("point", &[("v", 3)]);
        }
        drop(root);
        let events = snapshot_events();
        assert_eq!(events.len(), 5);
        let child_begin = &events[1];
        assert_eq!(child_begin.parent, root_id);
        assert_eq!(child_begin.args.as_slice(), &[("k", 7)]);
        let point = &events[2];
        assert_eq!(point.phase, Phase::Instant);
        assert_eq!(point.parent, child_begin.span);
        validate_structure(&events).expect("nested spans are structurally valid");
        set_mode(None);
    }

    #[test]
    fn query_span_stamps_children_until_dropped() {
        let _g = locked(Some(Clock::Logical));
        {
            let _q = query_span(42);
            instant("inside", &[]);
        }
        instant("outside", &[]);
        let events = snapshot_events();
        let inside = events.iter().find(|e| e.name == "inside").unwrap();
        assert_eq!(inside.query, 42);
        let outside = events.iter().find(|e| e.name == "outside").unwrap();
        assert_eq!(outside.query, u64::MAX);
        assert_eq!(query_ids(), vec![42]);
        set_mode(None);
    }

    #[test]
    fn chrome_export_is_byte_stable_and_balanced() {
        let _g = locked(Some(Clock::Logical));
        {
            let _q = query_span(9);
            let _s = span_args("work", &[("bytes", 128)]);
            instant("fault.dropout", &[("node", 2), ("round", 0)]);
        }
        let a = export_chrome(None);
        let b = export_chrome(None);
        assert_eq!(a, b);
        assert!(a.contains(r#""name":"query""#));
        assert!(a.contains(r#""ph":"B""#) && a.contains(r#""ph":"E""#));
        assert!(a.contains(r#""bytes":128"#));
        assert!(a.contains(r#""clock":"logical""#));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        // Query-filtered export keeps only query 9's events.
        let filtered = export_chrome(Some(9));
        assert!(filtered.contains(r#""name":"work""#));
        let empty = export_chrome(Some(777));
        assert!(!empty.contains(r#""name":"work""#));
        set_mode(None);
    }

    #[test]
    fn wall_mode_records_worker_sites_with_nanos() {
        let _g = locked(Some(Clock::Wall));
        {
            let _s = wall_span("hot");
            std::hint::black_box(1 + 1);
        }
        let events = snapshot_events();
        assert_eq!(events.len(), 2);
        assert!(events[1].ts >= events[0].ts, "wall time is monotone");
        validate_structure(&events).unwrap();
        set_mode(None);
    }

    #[test]
    fn buffer_cap_drops_and_counts() {
        let _g = locked(Some(Clock::Logical));
        // Simulate a full buffer by filling directly (fast).
        {
            let mut c = collector();
            c.events = Vec::with_capacity(MAX_TRACE_EVENTS);
            for _ in 0..MAX_TRACE_EVENTS {
                c.events.push(TraceEvent {
                    name: "fill",
                    phase: Phase::Instant,
                    ts: 0,
                    tid: 0,
                    span: 0,
                    parent: 0,
                    query: u64::MAX,
                    args: Args::default(),
                });
            }
        }
        instant("overflow", &[]);
        assert_eq!(events_len(), MAX_TRACE_EVENTS);
        assert_eq!(dropped(), 1);
        clear();
        assert_eq!(events_len(), 0);
        assert_eq!(dropped(), 0);
        set_mode(None);
    }

    #[test]
    fn validate_structure_rejects_malformed_streams() {
        let ev = |phase, span, parent, tid| TraceEvent {
            name: "x",
            phase,
            ts: 0,
            tid,
            span,
            parent,
            query: u64::MAX,
            args: Args::default(),
        };
        // Unbalanced: begin without end.
        assert!(validate_structure(&[ev(Phase::Begin, 1, 0, 0)]).is_err());
        // End without begin.
        assert!(validate_structure(&[ev(Phase::End, 1, 0, 0)]).is_err());
        // Parent begun after child.
        assert!(validate_structure(&[
            ev(Phase::Begin, 2, 1, 0),
            ev(Phase::Begin, 1, 0, 0),
            ev(Phase::End, 1, 0, 0),
            ev(Phase::End, 2, 0, 0),
        ])
        .is_err());
        // A proper little forest passes.
        assert!(validate_structure(&[
            ev(Phase::Begin, 1, 0, 0),
            ev(Phase::Begin, 2, 1, 0),
            ev(Phase::Instant, 0, 2, 0),
            ev(Phase::End, 2, 0, 0),
            ev(Phase::End, 1, 0, 0),
        ])
        .is_ok());
    }
}
