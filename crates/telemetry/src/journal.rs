//! A bounded structured event journal: the fleet's flight log.
//!
//! Where [`crate::trace`] records *spans* (how long things took) and
//! [`crate::fleet`] records *totals* (how often things happened per
//! node), the journal records *incidents*: a fixed-capacity ring of
//! typed events — who was selected, who dropped, who got promoted, what
//! was shed — each attributed to a query and (where meaningful) a node,
//! and stamped with both clocks:
//!
//! * a **logical tick** — one per event, assigned in recording order.
//!   Every recording site sits in leader-serial code whose execution
//!   order is a pure function of the simulation, so the tick sequence
//!   (and the logical JSONL export) is bit-identical at any
//!   `QENS_THREADS` — the same stability contract as
//!   `faults::FaultTrace` and the logical trace clock.
//! * **wall nanoseconds** since the journal epoch (the first event) —
//!   live-debugging context, excluded from the logical export.
//!
//! The ring holds [`DEFAULT_CAPACITY`] events (override with
//! `QENS_JOURNAL_CAP` or [`set_capacity`]); once full, the *oldest*
//! event is overwritten — a journal answers "what just happened", so
//! the tail survives, and [`overwritten`] counts what the ring forgot.
//!
//! Recording is gated on [`crate::fleet::enabled`] (`QENS_FLEET`): the
//! disabled fast path is one relaxed atomic load, and a disabled run
//! records nothing — byte-identical to a build without this module.
//!
//! # Export
//!
//! [`to_jsonl`] renders events as JSON lines with a fixed key order
//! (`{"tick":…,"kind":"node_dropped","query":…,"node":…,…}`), one
//! event per line, oldest first. Under [`Clock::Logical`] the output is
//! byte-stable; under [`Clock::Wall`] each line additionally carries
//! `"wall_nanos"`.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::{write_key, write_str, write_u64};
use crate::trace::Clock;

/// Default ring capacity (events held before the oldest is overwritten).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Sentinel for "no query/node attribution" (omitted from the export).
pub const NONE: u64 = u64::MAX;

/// Maximum kind-specific `(key, value)` arguments one event carries.
pub const MAX_ARGS: usize = 2;

/// The typed event vocabulary. Tags ([`Kind::name`]) are stable: they
/// are part of the JSONL format and the Prometheus/docs surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A node made a query's participant list.
    NodeSelected,
    /// A participant left the cohort (dropout, crash or transfer
    /// failure — the `cause` detail says which).
    NodeDropped,
    /// A straggler blew the leader's deadline and its round was
    /// discarded.
    StragglerDeadline,
    /// A ranked standby was promoted into the cohort.
    StandbyPromoted,
    /// A round finished below quorum with no standby left to promote.
    QuorumLost,
    /// Selection-cache entries were re-scored after summary epochs
    /// moved under them.
    CacheInvalidated,
    /// The serving batcher shed a query that aged past its deadline.
    AdmissionShed,
}

impl Kind {
    /// The stable lowercase tag used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            Kind::NodeSelected => "node_selected",
            Kind::NodeDropped => "node_dropped",
            Kind::StragglerDeadline => "straggler_deadline",
            Kind::StandbyPromoted => "standby_promoted",
            Kind::QuorumLost => "quorum_lost",
            Kind::CacheInvalidated => "cache_invalidated",
            Kind::AdmissionShed => "admission_shed",
        }
    }
}

/// One journal entry (the public view for tests and endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Logical tick: one per event, assigned in recording order.
    pub tick: u64,
    /// Wall nanoseconds since the journal epoch (first event = 0).
    pub wall_nanos: u64,
    /// Event type.
    pub kind: Kind,
    /// Owning query id ([`NONE`] = unattributed).
    pub query: u64,
    /// Subject node index ([`NONE`] = fleet-level event).
    pub node: u64,
    /// Optional static `(key, value)` string detail (`("", "")` = none),
    /// e.g. `("cause", "dropout")`.
    pub detail: (&'static str, &'static str),
    /// Kind-specific static-key numeric arguments.
    pub args: [(&'static str, u64); MAX_ARGS],
    /// Populated prefix length of `args`.
    pub args_len: u8,
}

impl Event {
    /// The populated argument pairs.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.args_len as usize]
    }
}

struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    next_tick: u64,
    overwritten: u64,
    epoch: Option<Instant>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity,
            next_tick: 0,
            overwritten: 0,
            epoch: None,
        }
    }
}

fn capacity_from_env() -> usize {
    std::env::var("QENS_JOURNAL_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CAPACITY)
}

fn ring() -> MutexGuard<'static, Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::new(capacity_from_env())))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Discards every event and resets ticks, the epoch and the
/// overwritten counter. Capacity is left untouched.
pub fn clear() {
    let mut r = ring();
    let cap = r.capacity;
    *r = Ring::new(cap);
}

/// Replaces the ring capacity and clears the journal (entries recorded
/// under the old bound would make the tail semantics ambiguous).
///
/// # Panics
/// Panics if `capacity` is 0.
pub fn set_capacity(capacity: usize) {
    assert!(capacity > 0, "journal capacity must be non-zero");
    *ring() = Ring::new(capacity);
}

/// Events currently held (≤ capacity).
pub fn len() -> usize {
    ring().events.len()
}

/// Events ever recorded (monotonic; survives ring wrap-around).
pub fn events_total() -> u64 {
    ring().next_tick
}

/// Events the ring overwrote to make room for newer ones.
pub fn overwritten() -> u64 {
    ring().overwritten
}

/// The last `n` events (all of them when `None`), oldest first.
pub fn tail(n: Option<usize>) -> Vec<Event> {
    let r = ring();
    let take = n.unwrap_or(r.events.len()).min(r.events.len());
    r.events
        .iter()
        .skip(r.events.len() - take)
        .copied()
        .collect()
}

fn record(
    kind: Kind,
    query: u64,
    node: u64,
    detail: (&'static str, &'static str),
    extra: &[(&'static str, u64)],
) {
    if !crate::fleet::enabled() {
        return;
    }
    // The wall stamp is taken outside the lock (contention must not
    // skew it); the tick is assigned under the lock, which is what
    // makes it a total order.
    let now = Instant::now();
    let mut args = [("", 0u64); MAX_ARGS];
    let args_len = extra.len().min(MAX_ARGS);
    args[..args_len].copy_from_slice(&extra[..args_len]);
    let mut r = ring();
    let epoch = *r.epoch.get_or_insert(now);
    let wall_nanos = u64::try_from(now.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX);
    let tick = r.next_tick;
    r.next_tick += 1;
    if r.events.len() >= r.capacity {
        r.events.pop_front();
        r.overwritten += 1;
    }
    r.events.push_back(Event {
        tick,
        wall_nanos,
        kind,
        query,
        node,
        detail,
        args,
        args_len: args_len as u8,
    });
}

/// A node made `query`'s participant list at rank position `rank`
/// (0 = best).
pub fn node_selected(query: u64, node: u64, rank: u64) {
    record(Kind::NodeSelected, query, node, ("", ""), &[("rank", rank)]);
}

/// A participant left the cohort in `round`; `cause` is one of
/// `"dropout"`, `"crash"`, `"transfer"`.
pub fn node_dropped(query: u64, node: u64, round: u64, cause: &'static str) {
    record(
        Kind::NodeDropped,
        query,
        node,
        ("cause", cause),
        &[("round", round)],
    );
}

/// A straggler missed the leader's deadline in `round`.
pub fn straggler_deadline(query: u64, node: u64, round: u64) {
    record(
        Kind::StragglerDeadline,
        query,
        node,
        ("", ""),
        &[("round", round)],
    );
}

/// A ranked standby was promoted into the cohort in `round`.
pub fn standby_promoted(query: u64, node: u64, round: u64) {
    record(
        Kind::StandbyPromoted,
        query,
        node,
        ("", ""),
        &[("round", round)],
    );
}

/// `query`'s round finished with `survivors` reporters and no standby
/// left to promote.
pub fn quorum_lost(query: u64, round: u64, survivors: u64) {
    record(
        Kind::QuorumLost,
        query,
        NONE,
        ("", ""),
        &[("round", round), ("survivors", survivors)],
    );
}

/// `stale_nodes` cache tables were re-scored for `query` after their
/// summary epochs moved.
pub fn cache_invalidated(query: u64, stale_nodes: u64) {
    record(
        Kind::CacheInvalidated,
        query,
        NONE,
        ("", ""),
        &[("stale_nodes", stale_nodes)],
    );
}

/// The serving batcher shed `query` after it aged `age_ms` in the
/// ingestion queue.
pub fn admission_shed(query: u64, age_ms: u64) {
    record(
        Kind::AdmissionShed,
        query,
        NONE,
        ("", ""),
        &[("age_ms", age_ms)],
    );
}

fn write_event(out: &mut String, e: &Event, clock: Clock) {
    out.push('{');
    write_key(out, "tick");
    write_u64(out, e.tick);
    if clock == Clock::Wall {
        out.push(',');
        write_key(out, "wall_nanos");
        write_u64(out, e.wall_nanos);
    }
    out.push(',');
    write_key(out, "kind");
    write_str(out, e.kind.name());
    if e.query != NONE {
        out.push(',');
        write_key(out, "query");
        write_u64(out, e.query);
    }
    if e.node != NONE {
        out.push(',');
        write_key(out, "node");
        write_u64(out, e.node);
    }
    if !e.detail.0.is_empty() {
        out.push(',');
        write_key(out, e.detail.0);
        write_str(out, e.detail.1);
    }
    for &(k, v) in e.args() {
        out.push(',');
        write_key(out, k);
        write_u64(out, v);
    }
    out.push('}');
    out.push('\n');
}

/// Renders the last `tail_n` events (all when `None`) as JSON lines,
/// oldest first. Key order is fixed; under [`Clock::Logical`] every
/// field is deterministic, so the export is byte-stable for any
/// `QENS_THREADS` — `scripts/verify.sh` byte-diffs exactly this.
pub fn to_jsonl(clock: Clock, tail_n: Option<usize>) -> String {
    let events = tail(tail_n);
    let mut out = String::with_capacity(events.len() * 96);
    for e in &events {
        write_event(&mut out, e, clock);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::test_lock();
        crate::fleet::set_enabled(true);
        set_capacity(DEFAULT_CAPACITY);
        g
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _g = locked();
        crate::fleet::set_enabled(false);
        node_selected(1, 2, 0);
        quorum_lost(1, 0, 1);
        assert_eq!(len(), 0);
        assert_eq!(events_total(), 0);
        crate::fleet::set_enabled(true);
    }

    #[test]
    fn events_carry_typed_fields_and_ticks() {
        let _g = locked();
        node_selected(7, 3, 1);
        node_dropped(7, 3, 0, "dropout");
        admission_shed(9, 125);
        let events = tail(None);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].tick, 0);
        assert_eq!(events[1].tick, 1);
        assert_eq!(events[1].kind, Kind::NodeDropped);
        assert_eq!(events[1].detail, ("cause", "dropout"));
        assert_eq!(events[1].args(), &[("round", 0)]);
        assert_eq!(events[2].node, NONE);
        assert_eq!(events[2].args(), &[("age_ms", 125)]);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_the_tail() {
        let _g = locked();
        set_capacity(3);
        for q in 0..5u64 {
            node_selected(q, 0, 0);
        }
        assert_eq!(len(), 3);
        assert_eq!(overwritten(), 2);
        assert_eq!(events_total(), 5);
        let ticks: Vec<u64> = tail(None).iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
        let last_two: Vec<u64> = tail(Some(2)).iter().map(|e| e.tick).collect();
        assert_eq!(last_two, vec![3, 4]);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn logical_export_is_byte_stable_and_omits_wall() {
        let _g = locked();
        standby_promoted(4, 2, 1);
        quorum_lost(4, 1, 0);
        cache_invalidated(5, 2);
        let a = to_jsonl(Clock::Logical, None);
        let b = to_jsonl(Clock::Logical, None);
        assert_eq!(a, b);
        assert!(a.contains(r#""kind":"standby_promoted""#));
        assert!(a.contains(r#""kind":"quorum_lost""#));
        assert!(a.contains(r#""survivors":0"#));
        assert!(a.contains(r#""stale_nodes":2"#));
        assert!(!a.contains("wall_nanos"));
        assert_eq!(a.lines().count(), 3);
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        // The wall export carries the extra stamp on every line.
        let w = to_jsonl(Clock::Wall, None);
        assert_eq!(w.matches("\"wall_nanos\":").count(), 3);
    }

    #[test]
    fn tail_bound_limits_the_export() {
        let _g = locked();
        for q in 0..10u64 {
            straggler_deadline(q, 1, 0);
        }
        let doc = to_jsonl(Clock::Logical, Some(4));
        assert_eq!(doc.lines().count(), 4);
        assert!(doc.starts_with(r#"{"tick":6"#));
    }
}
