//! Property-style tests for the distributed-learning mechanism
//! (deterministic sweeps over the in-tree RNG; no proptest needed
//! offline).

use airdata::scenario::{nodes_from_specs, NodeSpec};
use edgesim::EdgeNetwork;
use fedlearn::{
    run_query, Aggregation, FederationConfig, FederationError, GlobalModel, StageOrder,
};
use geom::Query;
use linalg::rng::{rng_for, Rng};
use mlkit::TrainConfig;
use selection::QueryDriven;

const CASES: usize = 16;

fn random_specs(rng: &mut impl Rng) -> Vec<NodeSpec> {
    let count = rng.gen_range(2..5usize);
    (0..count)
        .map(|_| {
            let lo = rng.gen_range(-40.0..40.0);
            let span = rng.gen_range(10.0..40.0);
            NodeSpec {
                x_range: (lo, lo + span),
                slope: rng.gen_range(-2.0..2.0),
                intercept: 0.0,
                noise_std: 1.0,
            }
        })
        .collect()
}

fn build(specs: &[NodeSpec], seed: u64) -> EdgeNetwork {
    let nodes = nodes_from_specs(specs, 40, seed);
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    net.quantize_all(3, seed);
    net
}

fn fast_cfg(seed: u64, agg: Aggregation, order: StageOrder) -> FederationConfig {
    FederationConfig {
        train: TrainConfig::paper_lr(seed).with_epochs(3),
        stage_order: order,
        ..FederationConfig::paper_lr(seed)
    }
    .with_aggregation(agg)
}

/// A completed round's accounting and model are always well-formed,
/// under every aggregation rule and stage order.
#[test]
fn round_outputs_are_well_formed() {
    let mut rng = rng_for(0xFED, 1);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let agg = [
            Aggregation::ModelAveraging,
            Aggregation::WeightedAveraging,
            Aggregation::FedAvgWeights,
        ][rng.gen_range(0..3usize)];
        let order = [StageOrder::Sequential, StageOrder::Interleaved][rng.gen_range(0..2usize)];
        let net = build(&specs, seed);
        let q = Query::new(0, net.global_space());
        match run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(seed, agg, order),
        ) {
            Err(FederationError::NoParticipants { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
            Ok(out) => {
                assert!(out.accounting.samples_used <= out.accounting.samples_total);
                assert!(out.accounting.sample_visits > 0);
                assert!(out.accounting.sim_seconds > 0.0);
                assert!(out.accounting.sim_seconds <= out.accounting.sim_seconds_total + 1e-12);
                match (&out.global, agg) {
                    (GlobalModel::Single(_), Aggregation::FedAvgWeights) => {}
                    (GlobalModel::Ensemble { members, lambdas }, _) => {
                        assert_eq!(members.len(), lambdas.len());
                        assert!((lambdas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                    }
                    other => panic!("wrong model shape {other:?}"),
                }
                // Predictions over the unit cube stay finite.
                for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    assert!(out.global.predict_row(&[x]).is_finite());
                }
                if let Some(loss) = out.query_loss(&net, &q) {
                    assert!(loss.is_finite() && loss >= 0.0);
                }
            }
        }
    }
}

/// Parallel and serial execution agree bit-for-bit.
#[test]
fn parallel_matches_serial() {
    let mut rng = rng_for(0xFED, 2);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let net = build(&specs, seed);
        let q = Query::new(0, net.global_space());
        let par_cfg = fast_cfg(seed, Aggregation::WeightedAveraging, StageOrder::Sequential);
        let ser_cfg = FederationConfig {
            parallel: false,
            ..par_cfg.clone()
        };
        let par = run_query(&net, &q, &QueryDriven::top_l(3), &par_cfg);
        let ser = run_query(&net, &q, &QueryDriven::top_l(3), &ser_cfg);
        match (par, ser) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.query_loss(&net, &q), b.query_loss(&net, &q));
                assert_eq!(a.accounting.sample_visits, b.accounting.sample_visits);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            other => panic!("parallel/serial diverged: {other:?}"),
        }
    }
}

/// Extra FedAvg rounds scale the paid cost linearly.
#[test]
fn multi_round_cost_scales() {
    let mut rng = rng_for(0xFED, 3);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let rounds = rng.gen_range(2..4usize);
        let net = build(&specs, seed);
        let q = Query::new(0, net.global_space());
        let one = fast_cfg(seed, Aggregation::FedAvgWeights, StageOrder::Sequential);
        let many = FederationConfig {
            rounds,
            ..one.clone()
        };
        if let (Ok(a), Ok(b)) = (
            run_query(&net, &q, &QueryDriven::top_l(3), &one),
            run_query(&net, &q, &QueryDriven::top_l(3), &many),
        ) {
            let ratio = b.accounting.sample_visits as f64 / a.accounting.sample_visits as f64;
            assert!(
                (ratio - rounds as f64).abs() < 0.6,
                "visits ratio {ratio} for {rounds} rounds"
            );
        }
    }
}
