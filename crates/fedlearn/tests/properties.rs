//! Property-based tests for the distributed-learning mechanism.

use airdata::scenario::{nodes_from_specs, NodeSpec};
use edgesim::EdgeNetwork;
use fedlearn::{run_query, Aggregation, FederationConfig, FederationError, GlobalModel, StageOrder};
use geom::Query;
use mlkit::TrainConfig;
use proptest::prelude::*;
use selection::QueryDriven;

fn specs_strategy() -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec(
        (-40.0_f64..40.0, 10.0_f64..40.0, -2.0_f64..2.0).prop_map(|(lo, span, slope)| NodeSpec {
            x_range: (lo, lo + span),
            slope,
            intercept: 0.0,
            noise_std: 1.0,
        }),
        2..5,
    )
}

fn build(specs: &[NodeSpec], seed: u64) -> EdgeNetwork {
    let nodes = nodes_from_specs(specs, 40, seed);
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    net.quantize_all(3, seed);
    net
}

fn fast_cfg(seed: u64, agg: Aggregation, order: StageOrder) -> FederationConfig {
    FederationConfig {
        train: TrainConfig::paper_lr(seed).with_epochs(3),
        stage_order: order,
        ..FederationConfig::paper_lr(seed)
    }
    .with_aggregation(agg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A completed round's accounting and model are always well-formed,
    /// under every aggregation rule and stage order.
    #[test]
    fn round_outputs_are_well_formed(
        specs in specs_strategy(),
        seed in 0_u64..50,
        agg_idx in 0_usize..3,
        order_idx in 0_usize..2,
    ) {
        let agg = [Aggregation::ModelAveraging, Aggregation::WeightedAveraging, Aggregation::FedAvgWeights][agg_idx];
        let order = [StageOrder::Sequential, StageOrder::Interleaved][order_idx];
        let net = build(&specs, seed);
        let q = Query::new(0, net.global_space());
        match run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(seed, agg, order)) {
            Err(FederationError::NoParticipants { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            Ok(out) => {
                prop_assert!(out.accounting.samples_used <= out.accounting.samples_total);
                prop_assert!(out.accounting.sample_visits > 0);
                prop_assert!(out.accounting.sim_seconds > 0.0);
                prop_assert!(out.accounting.sim_seconds <= out.accounting.sim_seconds_total + 1e-12);
                match (&out.global, agg) {
                    (GlobalModel::Single(_), Aggregation::FedAvgWeights) => {}
                    (GlobalModel::Ensemble { members, lambdas }, _) => {
                        prop_assert_eq!(members.len(), lambdas.len());
                        prop_assert!((lambdas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                    }
                    other => return Err(TestCaseError::fail(format!("wrong model shape {other:?}"))),
                }
                // Predictions over the unit cube stay finite.
                for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    prop_assert!(out.global.predict_row(&[x]).is_finite());
                }
                if let Some(loss) = out.query_loss(&net, &q) {
                    prop_assert!(loss.is_finite() && loss >= 0.0);
                }
            }
        }
    }

    /// Parallel and serial execution agree bit-for-bit.
    #[test]
    fn parallel_matches_serial(specs in specs_strategy(), seed in 0_u64..50) {
        let net = build(&specs, seed);
        let q = Query::new(0, net.global_space());
        let par_cfg = fast_cfg(seed, Aggregation::WeightedAveraging, StageOrder::Sequential);
        let ser_cfg = FederationConfig { parallel: false, ..par_cfg.clone() };
        let par = run_query(&net, &q, &QueryDriven::top_l(3), &par_cfg);
        let ser = run_query(&net, &q, &QueryDriven::top_l(3), &ser_cfg);
        match (par, ser) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.query_loss(&net, &q), b.query_loss(&net, &q));
                prop_assert_eq!(a.accounting.sample_visits, b.accounting.sample_visits);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            other => return Err(TestCaseError::fail(format!("parallel/serial diverged: {other:?}"))),
        }
    }

    /// Extra FedAvg rounds scale the paid cost linearly.
    #[test]
    fn multi_round_cost_scales(specs in specs_strategy(), seed in 0_u64..50, rounds in 2_usize..4) {
        let net = build(&specs, seed);
        let q = Query::new(0, net.global_space());
        let one = fast_cfg(seed, Aggregation::FedAvgWeights, StageOrder::Sequential);
        let many = FederationConfig { rounds, ..one.clone() };
        if let (Ok(a), Ok(b)) = (
            run_query(&net, &q, &QueryDriven::top_l(3), &one),
            run_query(&net, &q, &QueryDriven::top_l(3), &many),
        ) {
            let ratio = b.accounting.sample_visits as f64 / a.accounting.sample_visits as f64;
            prop_assert!(
                (ratio - rounds as f64).abs() < 0.6,
                "visits ratio {ratio} for {rounds} rounds"
            );
        }
    }
}
