//! Batched federation rounds: several queries, one shared training wave.
//!
//! The serving batcher coalesces compatible in-flight queries into a
//! single call here. The leader still selects, accounts and aggregates
//! **per query**, but every participant-training job across the whole
//! batch runs in *one* `par` pool wave instead of one wave per query.
//!
//! Bit-identity to unbatched serving is by construction, not by luck:
//! a participant's local model is a pure function of
//! `(config, query.id, node.id, round, broadcast model, stages)`. In the
//! single-round protocol the broadcast model is the query-independent
//! initial model, so a training job neither reads nor writes anything
//! another query's job touches — scheduling all jobs on one wave cannot
//! change any of them. [`run_batch`] asserts nothing weaker: its tests
//! compare every outcome field (models, selections, accounting,
//! sim-seconds) bitwise against a [`run_query`] loop.
//!
//! The shared wave exists only for configurations where that argument
//! holds ([`batchable`]): single round, no live fault plan, no straggler
//! deadline. Everything else — multi-round FedAvg, fault injection,
//! deadline cut-offs — falls back to a sequential [`run_query`] loop,
//! which is trivially identical to unbatched serving.

use std::time::Instant;

use edgesim::{EdgeNetwork, QueryAccounting, SpaceScaler};
use geom::Query;
use linalg::rng as lrng;
use mlkit::{DenseDataset, Model, Regressor, TrainConfig};
use selection::{Participant, SelectionContext, SelectionPolicy};

use crate::aggregate::GlobalModel;
use crate::error::FederationError;
use crate::round::{run_query, FederationConfig, RoundOutcome, StageOrder};

/// Whether `config` is eligible for the shared-wave fast path.
///
/// Multi-round refinement re-broadcasts aggregated weights (training
/// becomes query-dependent mid-flight), a live fault plan interleaves
/// fate/retry/promotion passes per query, and the straggler deadline is
/// a tolerance feature that fires even without a plan — all three force
/// the per-query engine.
pub fn batchable(config: &FederationConfig) -> bool {
    config.rounds == 1
        && config.tolerance.straggler_deadline_seconds.is_none()
        && config.faults.as_ref().is_none_or(|spec| spec.is_inert())
}

/// One query's prepared (pre-training) state.
struct Prepared {
    /// Index into the caller's `queries` slice.
    qidx: usize,
    selection: selection::Selection,
    members: Vec<BatchMember>,
    accounting: QueryAccounting,
}

/// One participant of one query in the shared wave. Mirrors the
/// per-query engine's cohort member: the participant entry plus its
/// scaled supporting-cluster stages.
struct BatchMember {
    participant: Participant,
    stages: Vec<DenseDataset>,
}

impl BatchMember {
    fn has_data(&self) -> bool {
        self.stages.iter().any(|s| !s.is_empty())
    }
}

/// What one shared-wave training job produced.
struct BatchLocal {
    model: Model,
    samples_used: usize,
    sample_visits: usize,
    wall_seconds: f64,
}

/// Runs a batch of queries under one policy and configuration,
/// returning one `Result` per query in input order.
///
/// For [`batchable`] configurations with more than one query, all
/// participant-training jobs run in a single pool wave; otherwise each
/// query goes through [`run_query`] sequentially. Either way every
/// per-query outcome — global model, selection, accounting ledger — is
/// bit-identical to calling [`run_query`] on that query alone.
///
/// Telemetry differences vs. the unbatched path are attribution-only:
/// batch mode records no per-query [`telemetry::QueryScope`] (the wave
/// is shared, so per-query metric attribution would lie) and fills
/// `qens_fedlearn_run_batch_nanos` instead of
/// `qens_fedlearn_run_query_nanos`. Counters and the accounting ledger
/// are untouched.
pub fn run_batch(
    network: &EdgeNetwork,
    queries: &[Query],
    policy: &dyn SelectionPolicy,
    config: &FederationConfig,
) -> Vec<Result<RoundOutcome, FederationError>> {
    if queries.is_empty() {
        return Vec::new();
    }
    if !batchable(config) || queries.len() == 1 {
        return queries
            .iter()
            .map(|q| run_query(network, q, policy, config))
            .collect();
    }
    run_batch_wave(network, queries, policy, config)
}

/// The shared-wave engine. Only called with `batchable(config)` and at
/// least two queries; the arithmetic below is the single-round,
/// fault-free slice of [`run_query`], kept in lock-step with it.
fn run_batch_wave(
    network: &EdgeNetwork,
    queries: &[Query],
    policy: &dyn SelectionPolicy,
    config: &FederationConfig,
) -> Vec<Result<RoundOutcome, FederationError>> {
    let _run_span = telemetry::span!("qens_fedlearn_run_batch_nanos");
    let _trace_batch =
        telemetry::trace::span_args("fedlearn.batch", &[("queries", queries.len() as u64)]);
    let scaler = SpaceScaler::from_space(&network.global_space());
    let dim = network.nodes()[0].data().dim();
    let initial = config.model.build(dim, config.model_seed);
    let model_bytes = initial.num_weights() * 8;
    let cost = network.cost_model();

    // Leader-side prep, serial in arrival order: selection + cohort +
    // the selection-overhead ledger. Identical to run_query's prologue.
    let mut slots: Vec<Option<Result<RoundOutcome, FederationError>>> =
        (0..queries.len()).map(|_| None).collect();
    let mut prepared: Vec<Prepared> = Vec::new();
    for (qidx, query) in queries.iter().enumerate() {
        let ctx = SelectionContext::new(network, query);
        let select_span = telemetry::trace::span("fedlearn.select");
        let selection = policy.select(&ctx);
        select_span.finish();
        telemetry::trace::instant(
            "fedlearn.selected",
            &[
                ("participants", selection.participants.len() as u64),
                ("standby", selection.standby.len() as u64),
            ],
        );
        if selection.is_empty() {
            slots[qidx] = Some(Err(FederationError::NoParticipants {
                query_id: query.id(),
            }));
            continue;
        }
        // Fleet scorecards: the batch path opens no QueryObserver, so it
        // counts the query and its selections itself (leader-serial in
        // arrival order — deterministic like the rest of the prologue).
        if telemetry::fleet::enabled() {
            telemetry::fleet::query_observed(query.id());
            telemetry::fleet::observe_fleet(network.len());
            for (rank, p) in selection.participants.iter().enumerate() {
                let epoch = network.node(p.node).summary_epoch();
                telemetry::fleet::selected(query.id(), p.node.0 as u64, epoch);
                telemetry::journal::node_selected(query.id(), p.node.0 as u64, rank as u64);
            }
        }
        let overhead = policy.overhead(&ctx);
        let members: Vec<BatchMember> = selection
            .participants
            .iter()
            .map(|p| {
                let node = network.node(p.node);
                let stages: Vec<DenseDataset> = if p.supporting_clusters.is_empty() {
                    vec![scaler.transform_dataset(&node.full_dataset())]
                } else {
                    p.supporting_clusters
                        .iter()
                        .map(|c| scaler.transform_dataset(&node.cluster_dataset(c.cluster_id)))
                        .collect()
                };
                BatchMember {
                    participant: p.clone(),
                    stages,
                }
            })
            .filter(BatchMember::has_data)
            .collect();
        if members.is_empty() {
            slots[qidx] = Some(Err(FederationError::NoTrainingData {
                query_id: query.id(),
            }));
            continue;
        }
        let overhead_seconds: f64 = overhead
            .per_node_visits
            .iter()
            .map(|&(id, visits)| cost.training_seconds(visits, network.node(id).capacity()))
            .fold(0.0, f64::max)
            + if overhead.bytes > 0 {
                cost.transfer_seconds(overhead.bytes)
            } else {
                0.0
            };
        let accounting = QueryAccounting {
            query_id: query.id(),
            nodes_selected: members.len(),
            samples_total: network.total_samples(),
            sample_visits: overhead
                .per_node_visits
                .iter()
                .map(|&(_, v)| v)
                .sum::<usize>(),
            sim_seconds: overhead_seconds,
            sim_seconds_total: overhead_seconds,
            bytes_transferred: overhead.bytes,
            ..QueryAccounting::default()
        };
        prepared.push(Prepared {
            qidx,
            selection,
            members,
            accounting,
        });
    }

    // The shared wave: one flat job list over every query's cohort, in
    // (query, cohort) order, chunk 1 — results land in job order for any
    // worker count, exactly like the per-query engine's wave.
    let jobs: Vec<(usize, &BatchMember)> = prepared
        .iter()
        .flat_map(|p| p.members.iter().map(move |m| (p.qidx, m)))
        .collect();
    let sized_pool;
    let pool: &par::ThreadPool = match config.threads {
        Some(n) => {
            sized_pool = par::sized(n);
            &sized_pool
        }
        None => par::global(),
    };
    let train_one = |qidx: usize, member: &BatchMember| -> BatchLocal {
        let node = network.node(member.participant.node);
        let mut model = initial.clone();
        // Round is always 0 here (batchable ⇒ single round): the derived
        // seed matches run_query's `round = 0` term bit-for-bit.
        let train_cfg = TrainConfig {
            seed: lrng::derive_seed(
                config.train.seed,
                queries[qidx].id() ^ ((node.id().0 as u64) << 32),
            ),
            ..config.train.clone()
        };
        let samples_used: usize = member.stages.iter().map(DenseDataset::len).sum();
        telemetry::counter!("qens_fedlearn_participants_total").incr();
        telemetry::counter!("qens_fedlearn_stages_total").add(member.stages.len() as u64);
        telemetry::counter!("qens_fedlearn_samples_used_total").add(samples_used as u64);
        let train_span = telemetry::span!("qens_fedlearn_train_nanos");
        let _trace_train = telemetry::trace::wall_span_args(
            "fedlearn.train",
            &[
                ("node", node.id().0 as u64),
                ("round", 0),
                ("samples", samples_used as u64),
            ],
        );
        let start = Instant::now();
        let report = match config.stage_order {
            StageOrder::Sequential => {
                mlkit::train_incremental(&mut model, &member.stages, &train_cfg)
            }
            StageOrder::Interleaved => {
                mlkit::train_interleaved(&mut model, &member.stages, &train_cfg)
            }
        };
        let wall = start.elapsed().as_secs_f64();
        train_span.finish();
        telemetry::counter!("qens_fedlearn_sample_visits_total").add(report.samples_seen as u64);
        BatchLocal {
            model,
            samples_used,
            sample_visits: report.samples_seen,
            wall_seconds: wall,
        }
    };
    let train_wave_span = telemetry::trace::span_args(
        "fedlearn.train_wave",
        &[("round", 0), ("attempters", jobs.len() as u64)],
    );
    let pooled = config.parallel && jobs.len() > 1 && pool.threads() > 1;
    let results: Vec<BatchLocal> = if pooled {
        pool.map_indexed(&jobs, 1, |_, &(qidx, member)| train_one(qidx, member))
    } else {
        jobs.iter()
            .map(|&(qidx, member)| train_one(qidx, member))
            .collect()
    };
    train_wave_span.finish();

    // Per-query epilogue, serial in arrival order: transfer charges,
    // aggregation and the ledger — run_query's fault-free round body.
    let mut cursor = 0usize;
    for p in prepared {
        let n = p.members.len();
        let locals = &results[cursor..cursor + n];
        cursor += n;
        let mut accounting = p.accounting;
        let mut per_node_seconds: Vec<f64> = Vec::with_capacity(n);
        let mut round_bytes = 0usize;
        let mut round_samples_used = 0usize;
        let mut round_sample_visits = 0usize;
        let mut lambdas: Vec<f64> = Vec::with_capacity(n);
        let mut samples: Vec<usize> = Vec::with_capacity(n);
        let mut models: Vec<Model> = Vec::with_capacity(n);
        for (member, local) in p.members.iter().zip(locals) {
            let node = network.node(member.participant.node);
            let node_idx = member.participant.node.0;
            round_samples_used += local.samples_used;
            round_sample_visits += local.sample_visits;
            let train_sim = cost.training_seconds(local.sample_visits, node.capacity());
            let retry_penalty =
                node.link()
                    .retry_penalty_seconds(model_bytes, 0, &config.tolerance.retry);
            let finish = train_sim + node.link().transfer_seconds(2 * model_bytes) + retry_penalty;
            per_node_seconds.push(finish);
            telemetry::fleet::trained(node_idx as u64, finish, (local.wall_seconds * 1e9) as u64);
            let bytes = 2 * model_bytes;
            round_bytes += bytes;
            telemetry::fleet::transferred(node_idx as u64, bytes as u64);
            telemetry::trace::instant(
                "edgesim.transfer",
                &[("node", node_idx as u64), ("bytes", bytes as u64)],
            );
            lambdas.push(member.participant.ranking);
            samples.push(local.samples_used);
            models.push(local.model.clone());
        }
        // Fault-free single round: every member survives and the quorum
        // (a fraction/count of the selected cohort, floored at 1) is met.
        debug_assert!(models.len() >= config.tolerance.quorum.required(n));
        let walls: Vec<f64> = locals.iter().map(|l| l.wall_seconds).collect();
        accounting.wall_seconds += if pooled {
            walls.iter().copied().fold(0.0, f64::max)
        } else {
            walls.iter().sum()
        };
        let agg_span = telemetry::span!("qens_fedlearn_aggregate_nanos");
        let trace_agg = telemetry::trace::span_args(
            "fedlearn.aggregate",
            &[("survivors", models.len() as u64), ("round", 0)],
        );
        let global = GlobalModel::aggregate(config.aggregation, models, &lambdas, &samples);
        trace_agg.finish();
        agg_span.finish();
        telemetry::counter!("qens_fedlearn_rounds_total").incr();
        telemetry::counter!("qens_fedlearn_model_bytes_total").add(round_bytes as u64);
        accounting.samples_used = round_samples_used;
        accounting.sample_visits += round_sample_visits;
        accounting.sim_seconds += per_node_seconds.iter().copied().fold(0.0, f64::max);
        accounting.sim_seconds_total += per_node_seconds.iter().sum::<f64>();
        accounting.bytes_transferred += round_bytes;
        accounting.commit_telemetry();
        let final_cohort: Vec<Participant> =
            p.members.iter().map(|m| m.participant.clone()).collect();
        for m in &final_cohort {
            telemetry::fleet::participated(m.node.0 as u64);
        }
        slots[p.qidx] = Some(Ok(RoundOutcome {
            global,
            scaler: scaler.clone(),
            selection: p.selection,
            accounting,
            fault_trace: Default::default(),
            final_cohort,
        }));
    }
    debug_assert_eq!(cursor, results.len());
    slots
        .into_iter()
        .map(|s| s.expect("every query slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdata::scenario;
    use faults::{FaultSpec, FaultTolerance};
    use selection::QueryDriven;

    fn network() -> EdgeNetwork {
        let nodes = scenario::heterogeneous_nodes(5, 120, 3);
        let mut net =
            EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
        net.quantize_all(5, 1);
        net
    }

    fn fast_cfg(seed: u64) -> FederationConfig {
        FederationConfig {
            train: mlkit::TrainConfig::paper_lr(seed).with_epochs(15),
            ..FederationConfig::paper_lr(seed)
        }
    }

    /// A small mixed workload: repeated rectangles (batcher-compatible),
    /// drifted ones, and a partly-overlapping one.
    fn workload() -> Vec<Query> {
        vec![
            Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0]),
            Query::from_boundary_vec(1, &[0.0, 20.0, 0.0, 45.0]),
            Query::from_boundary_vec(2, &[0.5, 20.5, 0.5, 45.5]),
            Query::from_boundary_vec(3, &[0.0, 10.0, 0.0, 25.0]),
            Query::from_boundary_vec(4, &[0.0, 20.0, 0.0, 45.0]),
        ]
    }

    fn assert_outcomes_identical(a: &RoundOutcome, b: &RoundOutcome) {
        match (&a.global, &b.global) {
            (
                GlobalModel::Ensemble {
                    members: ma,
                    lambdas: la,
                },
                GlobalModel::Ensemble {
                    members: mb,
                    lambdas: lb,
                },
            ) => {
                assert_eq!(ma, mb);
                assert_eq!(la, lb);
            }
            (GlobalModel::Single(ma), GlobalModel::Single(mb)) => assert_eq!(ma, mb),
            other => panic!("global model shapes diverged: {other:?}"),
        }
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.final_cohort, b.final_cohort);
        assert_eq!(a.fault_trace, b.fault_trace);
        assert_eq!(a.accounting.samples_used, b.accounting.samples_used);
        assert_eq!(a.accounting.sample_visits, b.accounting.sample_visits);
        assert_eq!(
            a.accounting.bytes_transferred,
            b.accounting.bytes_transferred
        );
        assert_eq!(
            a.accounting.sim_seconds.to_bits(),
            b.accounting.sim_seconds.to_bits()
        );
        assert_eq!(
            a.accounting.sim_seconds_total.to_bits(),
            b.accounting.sim_seconds_total.to_bits()
        );
    }

    #[test]
    fn batchable_gates_on_rounds_faults_and_deadline() {
        assert!(batchable(&fast_cfg(1)));
        assert!(batchable(&fast_cfg(1).with_faults(FaultSpec::none())));
        assert!(!batchable(&fast_cfg(1).with_rounds(2)));
        assert!(!batchable(
            &fast_cfg(1).with_faults(FaultSpec::dropout(1, 0.5))
        ));
        assert!(!batchable(
            &fast_cfg(1).with_tolerance(FaultTolerance::default().with_deadline(1.0))
        ));
    }

    /// The headline contract: one shared wave, same bits as one wave per
    /// query — for models, selections and the whole resource ledger.
    #[test]
    fn batched_matches_unbatched_bitwise() {
        let net = network();
        let policy = QueryDriven::top_l(3);
        let cfg = fast_cfg(7);
        let queries = workload();
        let batched = run_batch(&net, &queries, &policy, &cfg);
        assert_eq!(batched.len(), queries.len());
        for (q, b) in queries.iter().zip(&batched) {
            let single = run_query(&net, q, &policy, &cfg).unwrap();
            assert_outcomes_identical(b.as_ref().unwrap(), &single);
        }
    }

    /// Same bits at any worker count, serial included.
    #[test]
    fn batched_is_bit_identical_across_thread_counts() {
        let net = network();
        let policy = QueryDriven::top_l(3);
        let queries = workload();
        let reference = run_batch(&net, &queries, &policy, &fast_cfg(7));
        for threads in [1usize, 2, 4] {
            let out = run_batch(
                &net,
                &queries,
                &policy,
                &fast_cfg(7).with_thread_count(threads),
            );
            for (r, o) in reference.iter().zip(&out) {
                assert_outcomes_identical(r.as_ref().unwrap(), o.as_ref().unwrap());
            }
        }
        let serial = run_batch(
            &net,
            &queries,
            &policy,
            &FederationConfig {
                parallel: false,
                ..fast_cfg(7)
            },
        );
        for (r, o) in reference.iter().zip(&serial) {
            assert_outcomes_identical(r.as_ref().unwrap(), o.as_ref().unwrap());
        }
    }

    /// Error slots mirror run_query: a disjoint query fails with
    /// `NoParticipants` in its own slot while its neighbours complete.
    #[test]
    fn error_slots_are_per_query() {
        let net = network();
        let policy = QueryDriven::top_l(3);
        let cfg = fast_cfg(3);
        let queries = vec![
            Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0]),
            Query::from_boundary_vec(9, &[1e6, 2e6, 1e6, 2e6]),
            Query::from_boundary_vec(2, &[0.0, 20.0, 0.0, 45.0]),
        ];
        let out = run_batch(&net, &queries, &policy, &cfg);
        assert!(out[0].is_ok());
        assert_eq!(
            out[1].as_ref().unwrap_err(),
            &FederationError::NoParticipants { query_id: 9 }
        );
        assert!(out[2].is_ok());
    }

    /// Non-batchable configurations fall back to the per-query engine —
    /// verified against run_query under a live fault plan.
    #[test]
    fn non_batchable_configs_fall_back_to_run_query() {
        let net = network();
        let policy = QueryDriven::top_l(3);
        let cfg = fast_cfg(11)
            .with_faults(FaultSpec::unreliable_edge(42))
            .with_tolerance(FaultTolerance::full_strength());
        let queries = workload();
        let batched = run_batch(&net, &queries, &policy, &cfg);
        let mut successes = 0usize;
        for (q, b) in queries.iter().zip(&batched) {
            match (b, run_query(&net, q, &policy, &cfg)) {
                (Ok(batch), Ok(single)) => {
                    successes += 1;
                    assert_outcomes_identical(batch, &single);
                }
                (Err(eb), Err(es)) => assert_eq!(eb, &es),
                (b, s) => panic!("batched {b:?} diverged from unbatched {s:?}"),
            }
        }
        assert!(successes > 0, "the fault plan drowned every query");
    }

    #[test]
    fn empty_batch_is_empty() {
        let net = network();
        assert!(run_batch(&net, &[], &QueryDriven::top_l(3), &fast_cfg(1)).is_empty());
    }
}
