//! Federation error types.

/// Why a query round could not complete.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FederationError {
    /// The selection policy returned no participants (nothing overlaps
    /// the query region under the configured thresholds).
    NoParticipants {
        /// The query that found no support.
        query_id: u64,
    },
    /// Every selected participant's training set was empty (possible when
    /// supporting clusters exist but hold no samples after filtering).
    NoTrainingData {
        /// The affected query.
        query_id: u64,
    },
    /// The federation configuration cannot be executed as given (e.g.
    /// multi-round refinement with an aggregation rule that produces no
    /// single weight vector to re-broadcast). Recoverable: callers such
    /// as the repro binary and bench sweeps can skip the combination
    /// instead of crashing.
    UnsupportedConfig {
        /// The query whose round was refused.
        query_id: u64,
        /// Human-readable explanation of the rejected combination.
        reason: String,
    },
    /// A communication round ended with fewer reporting participants than
    /// the configured quorum even after promoting every available ranked
    /// standby. Recoverable: stream runners record the failed query and
    /// move on.
    QuorumLost {
        /// The query whose federation collapsed.
        query_id: u64,
        /// The communication round that fell below quorum.
        round: usize,
        /// Participants that still reported that round.
        survivors: usize,
        /// The survivor count the quorum rule demanded.
        required: usize,
    },
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::NoParticipants { query_id } => {
                write!(
                    f,
                    "query {query_id}: no node overlaps the requested data region"
                )
            }
            FederationError::NoTrainingData { query_id } => {
                write!(
                    f,
                    "query {query_id}: selected participants hold no training data"
                )
            }
            FederationError::UnsupportedConfig { query_id, reason } => {
                write!(f, "query {query_id}: unsupported configuration: {reason}")
            }
            FederationError::QuorumLost {
                query_id,
                round,
                survivors,
                required,
            } => {
                write!(
                    f,
                    "query {query_id}: quorum lost in round {round}: \
                     {survivors} of the required {required} participants reported \
                     (standby list exhausted)"
                )
            }
        }
    }
}

impl std::error::Error for FederationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_query() {
        let e = FederationError::NoParticipants { query_id: 42 };
        assert!(e.to_string().contains("42"));
        let e = FederationError::NoTrainingData { query_id: 7 };
        assert!(e.to_string().contains("7"));
        let e = FederationError::UnsupportedConfig {
            query_id: 9,
            reason: "multi-round refinement requires FedAvg".into(),
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("FedAvg"));
        let e = FederationError::QuorumLost {
            query_id: 13,
            round: 2,
            survivors: 1,
            required: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("13") && msg.contains("round 2"));
        assert!(msg.contains("1 of the required 3"));
    }
}
