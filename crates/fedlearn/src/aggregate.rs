//! Model aggregation at the leader (§IV-B).

use mlkit::{Model, Regressor};

/// Which aggregation rule the leader applies to the returned local models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Aggregation {
    /// **Model Averaging** (Eq. 6): the prediction is the unweighted mean
    /// of the local models' predictions.
    ModelAveraging,
    /// **Weighted Averaging** (Eq. 7): predictions are weighted by the
    /// ranking-proportional λ_i.
    WeightedAveraging,
    /// FedAvg-style extension: average the *weight vectors* (sample-count
    /// weighted) into a single model. Not in the paper's evaluation;
    /// used by the aggregation ablation bench.
    FedAvgWeights,
}

impl Aggregation {
    /// Display name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregation::ModelAveraging => "averaging",
            Aggregation::WeightedAveraging => "weighted",
            Aggregation::FedAvgWeights => "fedavg-weights",
        }
    }
}

/// The leader's aggregated predictor.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GlobalModel {
    /// A prediction-averaging ensemble: `ŷ(q) = Σ λ_i ŷ_i(q)` with
    /// `Σ λ_i = 1` (uniform λ for Eq. 6, ranking-proportional for Eq. 7).
    Ensemble {
        /// The participants' local models.
        members: Vec<Model>,
        /// Normalised aggregation weights λ_i.
        lambdas: Vec<f64>,
    },
    /// A single weight-averaged model (the FedAvg extension).
    Single(Model),
}

impl GlobalModel {
    /// Builds the aggregate from local models.
    ///
    /// `lambdas` are the ranking-proportional weights from the selection
    /// ([`selection::Selection::lambda_weights`]); `samples` the per-model
    /// training sample counts (used only by FedAvg weighting).
    ///
    /// # Panics
    /// Panics if `members` is empty or the argument lengths disagree.
    pub fn aggregate(
        rule: Aggregation,
        members: Vec<Model>,
        lambdas: &[f64],
        samples: &[usize],
    ) -> GlobalModel {
        assert!(!members.is_empty(), "cannot aggregate zero models");
        assert_eq!(members.len(), lambdas.len(), "lambda count mismatch");
        assert_eq!(members.len(), samples.len(), "sample count mismatch");
        match rule {
            Aggregation::ModelAveraging => {
                let n = members.len();
                GlobalModel::Ensemble {
                    lambdas: vec![1.0 / n as f64; n],
                    members,
                }
            }
            Aggregation::WeightedAveraging => {
                let total: f64 = lambdas.iter().sum();
                let lambdas = if total > 0.0 {
                    lambdas.iter().map(|l| l / total).collect()
                } else {
                    vec![1.0 / members.len() as f64; members.len()]
                };
                GlobalModel::Ensemble { members, lambdas }
            }
            Aggregation::FedAvgWeights => {
                let total: f64 = samples.iter().map(|&s| s as f64).sum();
                assert!(total > 0.0, "FedAvg aggregation requires training samples");
                let mut avg = vec![0.0; members[0].num_weights()];
                for (m, &s) in members.iter().zip(samples) {
                    let w = m.weights();
                    assert_eq!(w.len(), avg.len(), "heterogeneous model shapes");
                    let coef = s as f64 / total;
                    for (a, v) in avg.iter_mut().zip(w) {
                        *a += coef * v;
                    }
                }
                let mut model = members.into_iter().next().expect("non-empty");
                model.set_weights(&avg);
                GlobalModel::Single(model)
            }
        }
    }

    /// Predicts one sample.
    pub fn predict_row(&self, x: &[f64]) -> f64 {
        match self {
            GlobalModel::Ensemble { members, lambdas } => members
                .iter()
                .zip(lambdas)
                .map(|(m, &l)| l * m.predict_row(x))
                .sum(),
            GlobalModel::Single(m) => m.predict_row(x),
        }
    }

    /// Predicts every row of a feature matrix.
    pub fn predict(&self, x: &linalg::Matrix) -> Vec<f64> {
        x.row_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &mlkit::DenseDataset) -> f64 {
        mlkit::metrics::mse(&self.predict(data.x()), data.y())
    }

    /// Number of participant models folded into this aggregate.
    pub fn member_count(&self) -> usize {
        match self {
            GlobalModel::Ensemble { members, .. } => members.len(),
            GlobalModel::Single(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::{LinearRegression, ModelKind};

    /// A linear model `y = a*x + b`.
    fn lin(a: f64, b: f64) -> Model {
        let mut m = LinearRegression::new(1);
        m.set_weights(&[a, b]);
        Model::Linear(m)
    }

    #[test]
    fn model_averaging_is_uniform() {
        let g = GlobalModel::aggregate(
            Aggregation::ModelAveraging,
            vec![lin(1.0, 0.0), lin(3.0, 0.0)],
            &[0.9, 0.1], // ignored by Eq. 6
            &[10, 10],
        );
        assert_eq!(g.predict_row(&[1.0]), 2.0);
        assert_eq!(g.member_count(), 2);
    }

    #[test]
    fn weighted_averaging_uses_lambdas() {
        let g = GlobalModel::aggregate(
            Aggregation::WeightedAveraging,
            vec![lin(1.0, 0.0), lin(3.0, 0.0)],
            &[3.0, 1.0],
            &[10, 10],
        );
        // λ = (0.75, 0.25) -> prediction 0.75*1 + 0.25*3 = 1.5 at x=1.
        assert_eq!(g.predict_row(&[1.0]), 1.5);
    }

    #[test]
    fn weighted_averaging_normalises_unnormalised_lambdas() {
        let g = GlobalModel::aggregate(
            Aggregation::WeightedAveraging,
            vec![lin(2.0, 0.0), lin(4.0, 0.0)],
            &[2.0, 2.0],
            &[1, 1],
        );
        assert_eq!(g.predict_row(&[1.0]), 3.0);
    }

    #[test]
    fn fedavg_averages_weight_vectors_by_sample_count() {
        let g = GlobalModel::aggregate(
            Aggregation::FedAvgWeights,
            vec![lin(1.0, 1.0), lin(3.0, 3.0)],
            &[0.5, 0.5],
            &[30, 10],
        );
        // weights = 0.75*(1,1) + 0.25*(3,3) = (1.5, 1.5).
        match &g {
            GlobalModel::Single(m) => assert_eq!(m.weights(), vec![1.5, 1.5]),
            other => panic!("expected Single, got {other:?}"),
        }
        assert_eq!(g.predict_row(&[1.0]), 3.0);
        assert_eq!(g.member_count(), 1);
    }

    #[test]
    fn ensemble_mse_matches_hand_computation() {
        let g = GlobalModel::aggregate(
            Aggregation::ModelAveraging,
            vec![lin(1.0, 0.0)],
            &[1.0],
            &[1],
        );
        let data = mlkit::DenseDataset::new(
            linalg::Matrix::from_rows(&[vec![1.0], vec![2.0]]),
            vec![2.0, 2.0],
        );
        // Predictions 1, 2 -> errors 1, 0 -> MSE 0.5.
        assert_eq!(g.mse(&data), 0.5);
    }

    #[test]
    fn nn_models_aggregate_too() {
        let a = ModelKind::Neural { hidden: 4 }.build(1, 1);
        let b = ModelKind::Neural { hidden: 4 }.build(1, 2);
        let g =
            GlobalModel::aggregate(Aggregation::FedAvgWeights, vec![a, b], &[0.5, 0.5], &[5, 5]);
        assert!(g.predict_row(&[0.3]).is_finite());
    }

    #[test]
    #[should_panic(expected = "zero models")]
    fn empty_aggregate_panics() {
        GlobalModel::aggregate(Aggregation::ModelAveraging, vec![], &[], &[]);
    }
}
