//! Running a whole query workload through the federation.

use edgesim::{EdgeNetwork, StreamAccounting};
use geom::Query;
use selection::SelectionPolicy;
use workload::QueryWorkload;

use crate::error::FederationError;
use crate::round::{run_query, FederationConfig};

/// One query's result row.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueryResult {
    /// The query id.
    pub query_id: u64,
    /// Per-query loss on the query's data region (scaled units), `None`
    /// when the round failed or no test point fell inside the region.
    pub loss: Option<f64>,
    /// Number of participants.
    pub nodes_selected: usize,
    /// Fraction of the network's data trained on.
    pub data_fraction: f64,
    /// Simulated round seconds (parallel view).
    pub sim_seconds: f64,
    /// Simulated total training seconds (sequential view, Fig. 8).
    pub sim_seconds_total: f64,
    /// Why the round failed, if it did.
    pub error: Option<FederationError>,
}

/// The aggregate outcome of a workload run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamResult {
    /// Policy display name.
    pub policy: String,
    /// Per-query rows in issue order.
    pub per_query: Vec<QueryResult>,
    /// The full resource ledger of the successful rounds.
    pub accounting: StreamAccounting,
    /// Selection-cache counters accumulated over the stream, `None`
    /// unless the policy is cache-backed
    /// ([`selection::CachedQueryDriven`]). Snapshot taken after the last
    /// query, so it covers the whole stream (plus whatever the policy
    /// object served before — policies are usually built per stream).
    pub cache: Option<selection::CacheStats>,
}

impl StreamResult {
    /// Mean loss over the queries that completed and had test data — the
    /// paper's Fig. 7 y-value.
    pub fn mean_loss(&self) -> Option<f64> {
        let losses: Vec<f64> = self.per_query.iter().filter_map(|r| r.loss).collect();
        if losses.is_empty() {
            None
        } else {
            Some(losses.iter().sum::<f64>() / losses.len() as f64)
        }
    }

    /// Number of queries that produced no model (no participants / data).
    pub fn failed_queries(&self) -> usize {
        self.per_query.iter().filter(|r| r.error.is_some()).count()
    }

    /// Mean fraction of the network's data used per completed query
    /// (Fig. 9 summary).
    pub fn mean_data_fraction(&self) -> f64 {
        self.accounting.mean_data_fraction()
    }

    /// Mean simulated seconds per completed query (Fig. 8 summary).
    pub fn mean_sim_seconds(&self) -> f64 {
        self.accounting.mean_sim_seconds()
    }
}

/// Runs every query of a workload under one policy.
///
/// Failed rounds (no participants, no data) are recorded, not fatal —
/// a realistic stream can contain queries nothing overlaps.
pub fn run_stream(
    network: &EdgeNetwork,
    workload: &QueryWorkload,
    policy: &dyn SelectionPolicy,
    config: &FederationConfig,
) -> StreamResult {
    let mut per_query = Vec::with_capacity(workload.len());
    let mut accounting = StreamAccounting::default();
    for query in &workload.queries {
        per_query.push(run_one(network, query, policy, config, &mut accounting));
    }
    StreamResult {
        policy: policy.name().to_string(),
        per_query,
        accounting,
        cache: policy.cache_stats(),
    }
}

fn run_one(
    network: &EdgeNetwork,
    query: &Query,
    policy: &dyn SelectionPolicy,
    config: &FederationConfig,
    accounting: &mut StreamAccounting,
) -> QueryResult {
    match run_query(network, query, policy, config) {
        Ok(outcome) => {
            let loss = outcome.query_loss(network, query);
            let row = outcome.accounting.clone();
            let result = QueryResult {
                query_id: query.id(),
                loss,
                nodes_selected: row.nodes_selected,
                data_fraction: row.data_fraction(),
                sim_seconds: row.sim_seconds,
                sim_seconds_total: row.sim_seconds_total,
                error: None,
            };
            accounting.push(row);
            result
        }
        Err(e) => QueryResult {
            query_id: query.id(),
            loss: None,
            nodes_selected: 0,
            data_fraction: 0.0,
            sim_seconds: 0.0,
            sim_seconds_total: 0.0,
            error: Some(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdata::scenario;
    use mlkit::TrainConfig;
    use selection::{QueryDriven, RandomSelection};
    use workload::{generate, WorkloadConfig};

    fn network() -> EdgeNetwork {
        let nodes = scenario::heterogeneous_nodes(6, 80, 4);
        let mut net =
            EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
        net.quantize_all(5, 2);
        net
    }

    fn fast_cfg() -> FederationConfig {
        let mut cfg = crate::round::FederationConfig::paper_lr(11);
        cfg.train = TrainConfig::paper_lr(11).with_epochs(8);
        cfg
    }

    #[test]
    fn stream_runs_every_query() {
        let net = network();
        let wl = generate(
            &net.global_space(),
            &WorkloadConfig {
                n_queries: 12,
                ..WorkloadConfig::paper_default(5)
            },
        );
        let res = run_stream(&net, &wl, &QueryDriven::top_l(3), &fast_cfg());
        assert_eq!(res.per_query.len(), 12);
        assert_eq!(res.policy, "query-driven");
        // At least some queries must succeed over the global space.
        assert!(res.per_query.len() - res.failed_queries() > 4);
        assert!(res.mean_loss().is_some());
        assert!(res.mean_data_fraction() > 0.0 && res.mean_data_fraction() < 1.0);
    }

    #[test]
    fn stream_mean_loss_orders_ours_below_random() {
        let net = network();
        let wl = generate(
            &net.global_space(),
            &WorkloadConfig {
                n_queries: 16,
                ..WorkloadConfig::paper_default(21)
            },
        );
        let ours = run_stream(&net, &wl, &QueryDriven::top_l(3), &fast_cfg());
        let rand = run_stream(&net, &wl, &RandomSelection { l: 3, seed: 77 }, &fast_cfg());
        let a = ours.mean_loss().unwrap();
        let b = rand.mean_loss().unwrap();
        assert!(a < b, "query-driven mean loss {a} should beat random {b}");
    }

    #[test]
    fn cached_policy_matches_uncached_and_reports_stats() {
        let net = network();
        // A drifting stream with a coarse cache quantum so consecutive
        // queries share a cache key and exercise the delta path.
        let wl = generate(
            &net.global_space(),
            &WorkloadConfig {
                n_queries: 10,
                halfwidth_frac: (0.20, 0.20),
                kind: workload::WorkloadKind::Drifting {
                    step_frac: 0.01,
                    spread_frac: 0.01,
                },
                ..WorkloadConfig::paper_default(5)
            },
        );
        let plain = run_stream(&net, &wl, &QueryDriven::top_l(3), &fast_cfg());
        let cached_policy = selection::CachedQueryDriven::new(
            QueryDriven::top_l(3),
            selection::CacheConfig {
                bucket_width: 1e6,
                ..selection::CacheConfig::default()
            },
        );
        let cached = run_stream(&net, &wl, &cached_policy, &fast_cfg());
        // Bit-identical rows: the cache must not change any outcome.
        // (Full accounting is not compared — it carries measured
        // wall_seconds, which no two runs share.)
        assert_eq!(plain.per_query, cached.per_query);
        assert!(plain.cache.is_none(), "plain policies report no cache");
        let stats = cached.cache.expect("cached policy reports stats");
        assert_eq!(stats.hits + stats.misses, 10);
        assert!(stats.hits > 0, "drifting stream should hit: {stats:?}");
    }

    #[test]
    fn failed_rounds_are_recorded_not_fatal() {
        let net = network();
        // A workload over a region far outside every node.
        let far_space = geom::HyperRect::from_boundary_vec(&[1e7, 2e7, 1e7, 2e7]);
        let wl = generate(
            &far_space,
            &WorkloadConfig {
                n_queries: 3,
                ..WorkloadConfig::paper_default(1)
            },
        );
        let res = run_stream(&net, &wl, &QueryDriven::top_l(3), &fast_cfg());
        assert_eq!(res.failed_queries(), 3);
        assert_eq!(res.mean_loss(), None);
        assert_eq!(res.accounting.rows.len(), 0);
    }
}
