//! One query's federation round (§IV-B).

use std::time::Instant;

use edgesim::{EdgeNetwork, QueryAccounting, SpaceScaler};
use geom::Query;
use linalg::rng as lrng;
use mlkit::{DenseDataset, Model, ModelKind, Regressor, TrainConfig};
use selection::{Participant, Selection, SelectionContext, SelectionPolicy};

use crate::aggregate::{Aggregation, GlobalModel};
use crate::error::FederationError;

/// Order in which a participant visits its supporting clusters.
///
/// The paper describes both: §IV-B says the model trains `E` rounds on
/// each cluster *then* moves to the next ([`StageOrder::Sequential`]),
/// while the §IV-A remark calls each cluster "a mini-batch"
/// ([`StageOrder::Interleaved`]: every epoch cycles through all
/// clusters). Sequential is the default; interleaved protects non-linear
/// models from intra-node forgetting at high epoch counts (see the
/// `ablation_stage_order` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StageOrder {
    /// E epochs on cluster 1, then E on cluster 2, ... (§IV-B).
    Sequential,
    /// Each epoch visits every cluster once (§IV-A's mini-batch reading).
    Interleaved,
}

/// Configuration of the distributed-learning mechanism.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FederationConfig {
    /// Architecture broadcast to participants.
    pub model: ModelKind,
    /// Per-stage local training schedule (`E` epochs per supporting
    /// cluster, §IV-B).
    pub train: TrainConfig,
    /// How the leader folds the local models together.
    pub aggregation: Aggregation,
    /// Seed for the initial global model.
    pub model_seed: u64,
    /// Train participants on the bounded [`par`] thread pool
    /// (deterministic either way; serial mode exists for timing
    /// experiments that want one core).
    pub parallel: bool,
    /// Worker count for participant training: `Some(n)` pins a cached
    /// process-wide pool of exactly `n` workers ([`par::sized`]), `None`
    /// uses the global pool ([`par::global`]: `QENS_THREADS` or the
    /// machine's available parallelism). Either way threads are created
    /// once per process — never once per participant-round.
    pub threads: Option<usize>,
    /// Supporting-cluster visit order (see [`StageOrder`]).
    pub stage_order: StageOrder,
    /// Communication rounds. The paper's protocol is single-round
    /// (participants train once, the leader aggregates once); values
    /// above 1 enable FedAvg-style iterative refinement — after each
    /// aggregation the averaged weights are broadcast back and local
    /// training repeats — and therefore require
    /// [`Aggregation::FedAvgWeights`] (prediction ensembles have no
    /// single weight vector to re-broadcast).
    pub rounds: usize,
}

impl FederationConfig {
    /// The paper's "LR" column with weighted averaging.
    pub fn paper_lr(seed: u64) -> Self {
        Self {
            model: ModelKind::Linear,
            train: TrainConfig::paper_lr(seed),
            aggregation: Aggregation::WeightedAveraging,
            model_seed: seed,
            parallel: true,
            threads: None,
            stage_order: StageOrder::Sequential,
            rounds: 1,
        }
    }

    /// The paper's "NN" column with weighted averaging.
    pub fn paper_nn(seed: u64) -> Self {
        Self {
            model: ModelKind::PAPER_NN,
            train: TrainConfig::paper_nn(seed),
            aggregation: Aggregation::WeightedAveraging,
            model_seed: seed,
            parallel: true,
            threads: None,
            stage_order: StageOrder::Sequential,
            rounds: 1,
        }
    }

    /// Pins the training pool's worker count (see
    /// [`FederationConfig::threads`]).
    pub fn with_thread_count(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Swaps the aggregation rule.
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Enables FedAvg-style multi-round refinement (implies
    /// [`Aggregation::FedAvgWeights`]).
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "at least one round is required");
        self.rounds = rounds;
        if rounds > 1 {
            self.aggregation = Aggregation::FedAvgWeights;
        }
        self
    }
}

/// Everything a completed round produced.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The aggregated global model.
    pub global: GlobalModel,
    /// The scaler broadcast alongside the model (needed to score the
    /// global model on raw data).
    pub scaler: SpaceScaler,
    /// Which nodes participated with which clusters.
    pub selection: Selection,
    /// The resource ledger.
    pub accounting: QueryAccounting,
}

impl RoundOutcome {
    /// Evaluates the global model on the query's own data region: the
    /// union, over *all* nodes, of the samples whose joint point falls
    /// inside the query rectangle. This is the paper's per-query
    /// "expected loss" — how well the model serves the data actually
    /// requested. Losses are in scaled (unit-cube) label units; multiply
    /// by [`SpaceScaler::unscale_mse`] for raw units.
    ///
    /// Returns `None` when no sample falls inside the query region.
    pub fn query_loss(&self, network: &EdgeNetwork, query: &Query) -> Option<f64> {
        let test = query_region_dataset(network, query, &self.scaler)?;
        Some(self.global.mse(&test))
    }
}

/// Collects the (scaled) samples inside the query region across the
/// whole network.
pub fn query_region_dataset(
    network: &EdgeNetwork,
    query: &Query,
    scaler: &SpaceScaler,
) -> Option<DenseDataset> {
    let mut parts: Vec<DenseDataset> = Vec::new();
    for node in network.nodes() {
        let idx = query.filter_indices(node.joint().row_iter());
        if !idx.is_empty() {
            parts.push(scaler.transform_dataset(&node.data().select(&idx)));
        }
    }
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| acc.concat(&p)))
}

/// What one participant's local training produced.
struct LocalResult {
    index: usize,
    model: Model,
    samples_used: usize,
    sample_visits: usize,
    wall_seconds: f64,
}

/// Wall-clock credited to one communication round.
///
/// When the participants trained concurrently on the pool the round is
/// over once the *slowest* one finishes (max); when they trained one
/// after another on the caller's thread the round took the *sum* of the
/// individual walls. Using max unconditionally (the old behaviour)
/// under-reports serial runs by up to a factor of the participant count.
fn round_wall_seconds(pooled: bool, walls: &[f64]) -> f64 {
    if pooled {
        walls.iter().copied().fold(0.0, f64::max)
    } else {
        walls.iter().sum()
    }
}

/// Runs one complete round: selection → local training → aggregation.
///
/// Training is deterministic in the configuration regardless of
/// `config.parallel`: every participant derives its RNG streams from the
/// query id and its node id only.
pub fn run_query(
    network: &EdgeNetwork,
    query: &Query,
    policy: &dyn SelectionPolicy,
    config: &FederationConfig,
) -> Result<RoundOutcome, FederationError> {
    if config.rounds == 0 {
        return Err(FederationError::UnsupportedConfig {
            query_id: query.id(),
            reason: "at least one communication round is required".into(),
        });
    }
    if config.rounds > 1 && config.aggregation != Aggregation::FedAvgWeights {
        return Err(FederationError::UnsupportedConfig {
            query_id: query.id(),
            reason: "multi-round refinement requires FedAvg weight aggregation \
                     (prediction ensembles have no single weight vector to re-broadcast)"
                .into(),
        });
    }
    // Per-query attribution: every metric recorded until the scope drops
    // is credited to this query id in the registry's query ring.
    let _query_scope = telemetry::QueryScope::begin(query.id());
    let _run_span = telemetry::span!("qens_fedlearn_run_query_nanos");
    let ctx = SelectionContext::new(network, query);
    let selection = policy.select(&ctx);
    if selection.is_empty() {
        return Err(FederationError::NoParticipants {
            query_id: query.id(),
        });
    }
    let overhead = policy.overhead(&ctx);
    let scaler = SpaceScaler::from_space(&network.global_space());

    // The leader's initial global model, broadcast to every participant.
    let dim = network.nodes()[0].data().dim();
    let mut initial = config.model.build(dim, config.model_seed);

    // Per-participant training stages (scaled).
    let jobs: Vec<(usize, &Participant, Vec<DenseDataset>)> = selection
        .participants
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let node = network.node(p.node);
            let stages: Vec<DenseDataset> = if p.supporting_clusters.is_empty() {
                vec![scaler.transform_dataset(&node.full_dataset())]
            } else {
                p.supporting_clusters
                    .iter()
                    .map(|c| scaler.transform_dataset(&node.cluster_dataset(c.cluster_id)))
                    .collect()
            };
            (i, p, stages)
        })
        .collect();

    let nonempty: Vec<&(usize, &Participant, Vec<DenseDataset>)> = jobs
        .iter()
        .filter(|(_, _, stages)| stages.iter().any(|s| !s.is_empty()))
        .collect();
    if nonempty.is_empty() {
        return Err(FederationError::NoTrainingData {
            query_id: query.id(),
        });
    }

    let cost = network.cost_model();
    let model_bytes = initial.num_weights() * 8;
    let overhead_seconds: f64 = overhead
        .per_node_visits
        .iter()
        .map(|&(id, visits)| cost.training_seconds(visits, network.node(id).capacity()))
        .fold(0.0, f64::max)
        + if overhead.bytes > 0 {
            cost.transfer_seconds(overhead.bytes)
        } else {
            0.0
        };
    let mut accounting = QueryAccounting {
        query_id: query.id(),
        nodes_selected: nonempty.len(),
        samples_total: network.total_samples(),
        sample_visits: overhead
            .per_node_visits
            .iter()
            .map(|&(_, v)| v)
            .sum::<usize>(),
        sim_seconds: overhead_seconds,
        sim_seconds_total: overhead_seconds,
        bytes_transferred: overhead.bytes,
        ..QueryAccounting::default()
    };

    // The training pool: resolved once per call, but the workers behind
    // it live for the whole process ([`par::global`] / [`par::sized`]) —
    // no per-round or per-participant thread creation.
    let sized_pool;
    let pool: &par::ThreadPool = match config.threads {
        Some(n) => {
            sized_pool = par::sized(n);
            &sized_pool
        }
        None => par::global(),
    };

    let mut global = None;
    for round in 0..config.rounds {
        let broadcast = &initial;
        let train_one = |(index, participant, stages): &(
            usize,
            &Participant,
            Vec<DenseDataset>,
        )|
         -> LocalResult {
            let node = network.node(participant.node);
            let mut model = broadcast.clone();
            let train_cfg = TrainConfig {
                seed: lrng::derive_seed(
                    config.train.seed,
                    query.id() ^ ((node.id().0 as u64) << 32) ^ ((round as u64) << 48),
                ),
                ..config.train.clone()
            };
            let samples_used: usize = stages.iter().map(DenseDataset::len).sum();
            // Counter adds are relaxed atomics, so these totals are
            // identical whether participants train on threads or inline.
            telemetry::counter!("qens_fedlearn_participants_total").incr();
            telemetry::counter!("qens_fedlearn_stages_total").add(stages.len() as u64);
            telemetry::counter!("qens_fedlearn_samples_used_total").add(samples_used as u64);
            let train_span = telemetry::span!("qens_fedlearn_train_nanos");
            let start = Instant::now();
            let report = match config.stage_order {
                StageOrder::Sequential => mlkit::train_incremental(&mut model, stages, &train_cfg),
                StageOrder::Interleaved => mlkit::train_interleaved(&mut model, stages, &train_cfg),
            };
            let wall = start.elapsed().as_secs_f64();
            train_span.finish();
            telemetry::counter!("qens_fedlearn_sample_visits_total")
                .add(report.samples_seen as u64);
            LocalResult {
                index: *index,
                model,
                samples_used,
                sample_visits: report.samples_seen,
                wall_seconds: wall,
            }
        };

        // One pool job per participant (chunk size 1): results land in
        // job order, so no post-hoc sort is needed — the pool writes each
        // result into its own index slot.
        let pooled = config.parallel && nonempty.len() > 1 && pool.threads() > 1;
        let results: Vec<LocalResult> = if pooled {
            pool.map_indexed(&nonempty, 1, |_, job| train_one(job))
        } else {
            nonempty.iter().map(|job| train_one(job)).collect()
        };
        debug_assert!(results.windows(2).all(|w| w[0].index < w[1].index));

        // Aggregate this round's local models.
        let lambdas: Vec<f64> = results
            .iter()
            .map(|r| selection.participants[r.index].ranking)
            .collect();
        let samples: Vec<usize> = results.iter().map(|r| r.samples_used).collect();
        let models: Vec<Model> = results.iter().map(|r| r.model.clone()).collect();
        let agg_span = telemetry::span!("qens_fedlearn_aggregate_nanos");
        let aggregated = GlobalModel::aggregate(config.aggregation, models, &lambdas, &samples);
        agg_span.finish();
        telemetry::counter!("qens_fedlearn_rounds_total").incr();
        telemetry::counter!("qens_fedlearn_model_bytes_total")
            .add((results.len() * 2 * model_bytes) as u64);

        // Accounting: every round pays training on the slowest node plus
        // two model transfers per participant, each at the node's own
        // uplink speed.
        let per_node_seconds: Vec<f64> = results
            .iter()
            .map(|r| {
                let node = network.node(selection.participants[r.index].node);
                cost.training_seconds(r.sample_visits, node.capacity())
                    + node.link().transfer_seconds(2 * model_bytes)
            })
            .collect();
        accounting.samples_used = results.iter().map(|r| r.samples_used).sum();
        accounting.sample_visits += results.iter().map(|r| r.sample_visits).sum::<usize>();
        accounting.sim_seconds += per_node_seconds.iter().copied().fold(0.0, f64::max);
        accounting.sim_seconds_total += per_node_seconds.iter().sum::<f64>();
        let walls: Vec<f64> = results.iter().map(|r| r.wall_seconds).collect();
        accounting.wall_seconds += round_wall_seconds(pooled, &walls);
        accounting.bytes_transferred += results.len() * 2 * model_bytes;

        // Broadcast the averaged weights back for the next round.
        if let GlobalModel::Single(model) = &aggregated {
            initial = model.clone();
        }
        global = Some(aggregated);
    }

    let global = global.expect("at least one round ran");
    // Satellite coupling: the simulator ledger and the telemetry counters
    // must tell the same story (asserted in tests/telemetry_pipeline.rs).
    accounting.commit_telemetry();
    Ok(RoundOutcome {
        global,
        scaler,
        selection,
        accounting,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdata::scenario;
    use selection::{AllNodes, QueryDriven, RandomSelection};

    fn network(hetero: bool) -> EdgeNetwork {
        let nodes = if hetero {
            scenario::heterogeneous_nodes(5, 120, 3)
        } else {
            scenario::homogeneous_nodes(5, 120, 3)
        };
        let mut net =
            EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
        net.quantize_all(5, 1);
        net
    }

    fn fast_cfg(seed: u64) -> FederationConfig {
        FederationConfig {
            train: TrainConfig::paper_lr(seed).with_epochs(15),
            ..FederationConfig::paper_lr(seed)
        }
    }

    /// A query over the leader-like region of the heterogeneous scenario
    /// (x in [0,20], y = 2x+3 -> joint region [0,20] x [0,45]).
    fn leader_query() -> Query {
        Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0])
    }

    #[test]
    fn round_produces_a_finite_model_and_sane_accounting() {
        let net = network(true);
        let out = run_query(&net, &leader_query(), &QueryDriven::top_l(3), &fast_cfg(1)).unwrap();
        assert!(out.accounting.nodes_selected >= 1);
        assert!(out.accounting.samples_used <= net.total_samples());
        assert!(out.accounting.sim_seconds > 0.0);
        assert!(out.accounting.bytes_transferred > 0);
        let loss = out.query_loss(&net, &leader_query()).unwrap();
        assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn query_driven_beats_random_on_heterogeneous_nodes() {
        // Averaged over several queries: a single random draw can get
        // lucky and pick the compatible nodes, but on average it trains
        // on the wrong data (only 2 of 5 nodes match the leader region).
        let net = network(true);
        let mut ours_total = 0.0;
        let mut random_total = 0.0;
        for qid in 0..8u64 {
            let q = Query::from_boundary_vec(qid, &[0.0, 20.0, 0.0, 45.0]);
            let ours = run_query(&net, &q, &QueryDriven::top_l(2), &fast_cfg(5)).unwrap();
            let random =
                run_query(&net, &q, &RandomSelection { l: 2, seed: 999 }, &fast_cfg(5)).unwrap();
            ours_total += ours.query_loss(&net, &q).unwrap();
            random_total += random.query_loss(&net, &q).unwrap();
        }
        assert!(
            ours_total < random_total,
            "query-driven mean loss {ours_total} should beat random {random_total}"
        );
    }

    #[test]
    fn query_driven_uses_less_data_than_all_nodes() {
        let net = network(true);
        // A query over *part* of the leader region: only some clusters of
        // the matching nodes support it, so data selectivity bites.
        let q = Query::from_boundary_vec(0, &[0.0, 10.0, 0.0, 25.0]);
        let ours = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(2)).unwrap();
        let all = run_query(&net, &q, &AllNodes, &fast_cfg(2)).unwrap();
        assert!(ours.accounting.samples_used < all.accounting.samples_used);
        assert!(
            ours.accounting.sim_seconds < all.accounting.sim_seconds,
            "ours {} vs all {}",
            ours.accounting.sim_seconds,
            all.accounting.sim_seconds
        );
        assert_eq!(all.accounting.samples_used, net.total_samples());
    }

    #[test]
    fn parallel_and_serial_rounds_agree() {
        let net = network(true);
        let q = leader_query();
        let par = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(7)).unwrap();
        let ser = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &FederationConfig {
                parallel: false,
                ..fast_cfg(7)
            },
        )
        .unwrap();
        match (&par.global, &ser.global) {
            (
                GlobalModel::Ensemble {
                    members: a,
                    lambdas: la,
                },
                GlobalModel::Ensemble {
                    members: b,
                    lambdas: lb,
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(la, lb);
            }
            other => panic!("unexpected global models: {other:?}"),
        }
        assert_eq!(par.accounting.samples_used, ser.accounting.samples_used);
        assert_eq!(par.accounting.sample_visits, ser.accounting.sample_visits);
    }

    #[test]
    fn disjoint_query_yields_no_participants() {
        let net = network(true);
        let q = Query::from_boundary_vec(9, &[1e6, 2e6, 1e6, 2e6]);
        let err = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(0)).unwrap_err();
        assert_eq!(err, FederationError::NoParticipants { query_id: 9 });
    }

    #[test]
    fn weighted_averaging_weights_follow_rankings() {
        let net = network(true);
        let q = leader_query();
        let out = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(3)).unwrap();
        if let GlobalModel::Ensemble { lambdas, .. } = &out.global {
            let rankings: Vec<f64> = out
                .selection
                .participants
                .iter()
                .map(|p| p.ranking)
                .collect();
            let total: f64 = rankings.iter().sum();
            for (l, r) in lambdas.iter().zip(&rankings) {
                assert!((l - r / total).abs() < 1e-12);
            }
        } else {
            panic!("expected ensemble");
        }
    }

    #[test]
    fn multi_round_fedavg_refines_the_single_model() {
        let net = network(false);
        let q = Query::from_boundary_vec(0, &[0.0, 50.0, 0.0, 100.0]);
        let one = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(3).with_aggregation(Aggregation::FedAvgWeights),
        )
        .unwrap();
        let three = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(3).with_rounds(3),
        )
        .unwrap();
        // Multi-round pays proportionally more and never does worse on a
        // homogeneous population.
        assert!(three.accounting.sample_visits > 2 * one.accounting.sample_visits);
        assert!(three.accounting.bytes_transferred > 2 * one.accounting.bytes_transferred);
        let l1 = one.query_loss(&net, &q).unwrap();
        let l3 = three.query_loss(&net, &q).unwrap();
        assert!(
            l3 <= l1 * 1.2,
            "3 rounds ({l3}) regressed badly vs 1 round ({l1})"
        );
        assert!(matches!(three.global, GlobalModel::Single(_)));
    }

    /// Regression: this combination used to `assert!` (a process abort in
    /// release sweeps); it must instead surface as a recoverable error.
    #[test]
    fn multi_round_with_ensemble_returns_unsupported_config() {
        let net = network(false);
        let q = Query::from_boundary_vec(11, &[0.0, 50.0, 0.0, 100.0]);
        let mut cfg = fast_cfg(1);
        cfg.rounds = 2; // without switching the aggregation rule
        let err = run_query(&net, &q, &QueryDriven::top_l(2), &cfg).unwrap_err();
        match err {
            FederationError::UnsupportedConfig { query_id, reason } => {
                assert_eq!(query_id, 11);
                assert!(reason.contains("FedAvg"), "reason was {reason:?}");
            }
            other => panic!("expected UnsupportedConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_rounds_returns_unsupported_config() {
        let net = network(false);
        let q = Query::from_boundary_vec(4, &[0.0, 50.0, 0.0, 100.0]);
        let mut cfg = fast_cfg(1);
        cfg.rounds = 0;
        let err = run_query(&net, &q, &QueryDriven::top_l(2), &cfg).unwrap_err();
        assert!(matches!(
            err,
            FederationError::UnsupportedConfig { query_id: 4, .. }
        ));
    }

    /// Regression: serial rounds used to credit only the *slowest*
    /// participant's wall time (max) even though the participants ran one
    /// after another; the serial ledger must use the sum.
    #[test]
    fn wall_clock_sums_when_serial_and_maxes_when_pooled() {
        let walls = [0.5, 0.125, 0.25, 0.0625];
        assert_eq!(
            round_wall_seconds(false, &walls),
            0.5 + 0.125 + 0.25 + 0.0625
        );
        assert_eq!(round_wall_seconds(true, &walls), 0.5);
        // The invariant the ledger relies on: a serial round can never be
        // credited less wall time than a pooled one (sum >= max, for any
        // non-negative walls).
        let mut rng_walls = Vec::new();
        for i in 0..100u64 {
            rng_walls.push(((i * 2654435761) % 1000) as f64 / 1000.0);
            assert!(
                round_wall_seconds(false, &rng_walls) >= round_wall_seconds(true, &rng_walls),
                "serial wall must dominate pooled wall for {rng_walls:?}"
            );
        }
        assert_eq!(round_wall_seconds(false, &[]), 0.0);
        assert_eq!(round_wall_seconds(true, &[]), 0.0);
    }

    /// End-to-end version of the invariant above. Real timing on a busy
    /// (possibly single-core) CI box is noisy, so the comparison keeps a
    /// generous margin: serial wall must be at least half the pooled
    /// wall. The exact sum-vs-max semantics are pinned by the unit test
    /// on [`round_wall_seconds`].
    #[test]
    fn serial_wall_clock_dominates_pooled_wall_clock() {
        let net = network(true);
        let q = leader_query();
        let cfg = fast_cfg(13).with_thread_count(4);
        let pooled = run_query(&net, &q, &QueryDriven::top_l(3), &cfg).unwrap();
        let ser = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &FederationConfig {
                parallel: false,
                ..cfg
            },
        )
        .unwrap();
        assert!(pooled.accounting.wall_seconds > 0.0);
        assert!(ser.accounting.wall_seconds > 0.0);
        assert!(
            ser.accounting.wall_seconds >= pooled.accounting.wall_seconds * 0.5,
            "serial wall {} vs pooled wall {}",
            ser.accounting.wall_seconds,
            pooled.accounting.wall_seconds
        );
    }

    #[test]
    fn query_region_dataset_collects_only_inside_points() {
        let net = network(false);
        let q = Query::from_boundary_vec(0, &[0.0, 10.0, -100.0, 200.0]);
        let scaler = SpaceScaler::from_space(&net.global_space());
        let ds = query_region_dataset(&net, &q, &scaler).unwrap();
        assert!(!ds.is_empty());
        // Every collected x (scaled) maps back inside [0, 10].
        let space = net.global_space();
        for row in ds.x().row_iter() {
            let raw =
                space.interval(0).lo() + row[0] * (space.interval(0).hi() - space.interval(0).lo());
            assert!((-1e-9..=10.0 + 1e-9).contains(&raw));
        }
    }
}
