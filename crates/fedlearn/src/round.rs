//! One query's federation round (§IV-B).

use std::time::Instant;

use edgesim::{EdgeNetwork, QueryAccounting, SpaceScaler};
use faults::{FaultEvent, FaultPlan, FaultSpec, FaultTolerance, FaultTrace, ParticipantFate};
use geom::Query;
use linalg::rng as lrng;
use mlkit::{DenseDataset, Model, ModelKind, Regressor, TrainConfig};
use selection::{Participant, Selection, SelectionContext, SelectionPolicy};

use crate::aggregate::{Aggregation, GlobalModel};
use crate::error::FederationError;

/// Order in which a participant visits its supporting clusters.
///
/// The paper describes both: §IV-B says the model trains `E` rounds on
/// each cluster *then* moves to the next ([`StageOrder::Sequential`]),
/// while the §IV-A remark calls each cluster "a mini-batch"
/// ([`StageOrder::Interleaved`]: every epoch cycles through all
/// clusters). Sequential is the default; interleaved protects non-linear
/// models from intra-node forgetting at high epoch counts (see the
/// `ablation_stage_order` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StageOrder {
    /// E epochs on cluster 1, then E on cluster 2, ... (§IV-B).
    Sequential,
    /// Each epoch visits every cluster once (§IV-A's mini-batch reading).
    Interleaved,
}

/// Configuration of the distributed-learning mechanism.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FederationConfig {
    /// Architecture broadcast to participants.
    pub model: ModelKind,
    /// Per-stage local training schedule (`E` epochs per supporting
    /// cluster, §IV-B).
    pub train: TrainConfig,
    /// How the leader folds the local models together.
    pub aggregation: Aggregation,
    /// Seed for the initial global model.
    pub model_seed: u64,
    /// Train participants on the bounded [`par`] thread pool
    /// (deterministic either way; serial mode exists for timing
    /// experiments that want one core).
    pub parallel: bool,
    /// Worker count for participant training: `Some(n)` pins a cached
    /// process-wide pool of exactly `n` workers ([`par::sized`]), `None`
    /// uses the global pool ([`par::global`]: `QENS_THREADS` or the
    /// machine's available parallelism). Either way threads are created
    /// once per process — never once per participant-round.
    pub threads: Option<usize>,
    /// Supporting-cluster visit order (see [`StageOrder`]).
    pub stage_order: StageOrder,
    /// Communication rounds. The paper's protocol is single-round
    /// (participants train once, the leader aggregates once); values
    /// above 1 enable FedAvg-style iterative refinement — after each
    /// aggregation the averaged weights are broadcast back and local
    /// training repeats — and therefore require
    /// [`Aggregation::FedAvgWeights`] (prediction ensembles have no
    /// single weight vector to re-broadcast).
    pub rounds: usize,
    /// Fault injection: `None` (the default) runs the fault-free engine —
    /// bit-identical to releases that predate the fault subsystem —
    /// while `Some(spec)` drives the deterministic [`faults::FaultPlan`]
    /// oracle (same seed ⇒ same events, for any thread count).
    pub faults: Option<FaultSpec>,
    /// How the federation reacts to injected faults: transfer retries
    /// with capped exponential backoff, an optional straggler deadline,
    /// and the quorum rule that triggers ranked standby promotion.
    /// Consulted only where a fault actually fires, so the default
    /// tolerance adds nothing to a fault-free run.
    pub tolerance: FaultTolerance,
}

impl FederationConfig {
    /// The paper's "LR" column with weighted averaging.
    pub fn paper_lr(seed: u64) -> Self {
        Self {
            model: ModelKind::Linear,
            train: TrainConfig::paper_lr(seed),
            aggregation: Aggregation::WeightedAveraging,
            model_seed: seed,
            parallel: true,
            threads: None,
            stage_order: StageOrder::Sequential,
            rounds: 1,
            faults: None,
            tolerance: FaultTolerance::default(),
        }
    }

    /// The paper's "NN" column with weighted averaging.
    pub fn paper_nn(seed: u64) -> Self {
        Self {
            model: ModelKind::PAPER_NN,
            train: TrainConfig::paper_nn(seed),
            aggregation: Aggregation::WeightedAveraging,
            model_seed: seed,
            parallel: true,
            threads: None,
            stage_order: StageOrder::Sequential,
            rounds: 1,
            faults: None,
            tolerance: FaultTolerance::default(),
        }
    }

    /// Pins the training pool's worker count (see
    /// [`FederationConfig::threads`]).
    pub fn with_thread_count(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Swaps the aggregation rule.
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Enables FedAvg-style multi-round refinement (implies
    /// [`Aggregation::FedAvgWeights`]).
    ///
    /// `rounds == 0` is not rejected here: [`run_query`] surfaces it as
    /// the recoverable [`FederationError::UnsupportedConfig`] instead of
    /// aborting the process mid-sweep.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        if rounds > 1 {
            self.aggregation = Aggregation::FedAvgWeights;
        }
        self
    }

    /// Enables deterministic fault injection (see
    /// [`FederationConfig::faults`]).
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Sets the fault reaction policy (see
    /// [`FederationConfig::tolerance`]).
    pub fn with_tolerance(mut self, tolerance: FaultTolerance) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// Everything a completed round produced.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The aggregated global model.
    pub global: GlobalModel,
    /// The scaler broadcast alongside the model (needed to score the
    /// global model on raw data).
    pub scaler: SpaceScaler,
    /// Which nodes participated with which clusters.
    pub selection: Selection,
    /// The resource ledger.
    pub accounting: QueryAccounting,
    /// Every fault (and fault reaction) that fired, in leader
    /// observation order. Empty for fault-free runs.
    pub fault_trace: FaultTrace,
    /// The cohort still active when the last round closed: the initially
    /// selected participants with training data, minus permanent
    /// crashes, plus promoted standbys.
    pub final_cohort: Vec<Participant>,
}

impl RoundOutcome {
    /// Evaluates the global model on the query's own data region: the
    /// union, over *all* nodes, of the samples whose joint point falls
    /// inside the query rectangle. This is the paper's per-query
    /// "expected loss" — how well the model serves the data actually
    /// requested. Losses are in scaled (unit-cube) label units; multiply
    /// by [`SpaceScaler::unscale_mse`] for raw units.
    ///
    /// Returns `None` when no sample falls inside the query region.
    pub fn query_loss(&self, network: &EdgeNetwork, query: &Query) -> Option<f64> {
        let test = query_region_dataset(network, query, &self.scaler)?;
        Some(self.global.mse(&test))
    }
}

/// Collects the (scaled) samples inside the query region across the
/// whole network.
pub fn query_region_dataset(
    network: &EdgeNetwork,
    query: &Query,
    scaler: &SpaceScaler,
) -> Option<DenseDataset> {
    let mut parts: Vec<DenseDataset> = Vec::new();
    for node in network.nodes() {
        let idx = query.filter_indices(node.joint().row_iter());
        if !idx.is_empty() {
            parts.push(scaler.transform_dataset(&node.data().select(&idx)));
        }
    }
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| acc.concat(&p)))
}

/// What one participant's local training produced.
struct LocalResult {
    index: usize,
    model: Model,
    samples_used: usize,
    sample_visits: usize,
    wall_seconds: f64,
}

/// One member of the active training cohort. Owned (not borrowed from
/// the [`Selection`]) because fault tolerance may extend the cohort with
/// promoted standbys mid-round.
struct CohortMember {
    participant: Participant,
    stages: Vec<DenseDataset>,
}

impl CohortMember {
    fn has_data(&self) -> bool {
        self.stages.iter().any(|s| !s.is_empty())
    }
}

/// A participant whose report reached the leader in time this round.
struct Survivor {
    ranking: f64,
    samples_used: usize,
    model: Model,
}

/// Wall-clock credited to one communication round.
///
/// When the participants trained concurrently on the pool the round is
/// over once the *slowest* one finishes (max); when they trained one
/// after another on the caller's thread the round took the *sum* of the
/// individual walls. Using max unconditionally (the old behaviour)
/// under-reports serial runs by up to a factor of the participant count.
fn round_wall_seconds(pooled: bool, walls: &[f64]) -> f64 {
    if pooled {
        walls.iter().copied().fold(0.0, f64::max)
    } else {
        walls.iter().sum()
    }
}

/// Runs one complete round: selection → local training → aggregation.
///
/// Training is deterministic in the configuration regardless of
/// `config.parallel`: every participant derives its RNG streams from the
/// query id and its node id only.
pub fn run_query(
    network: &EdgeNetwork,
    query: &Query,
    policy: &dyn SelectionPolicy,
    config: &FederationConfig,
) -> Result<RoundOutcome, FederationError> {
    if config.rounds == 0 {
        return Err(FederationError::UnsupportedConfig {
            query_id: query.id(),
            reason: "at least one communication round is required".into(),
        });
    }
    if config.rounds > 1 && config.aggregation != Aggregation::FedAvgWeights {
        return Err(FederationError::UnsupportedConfig {
            query_id: query.id(),
            reason: "multi-round refinement requires FedAvg weight aggregation \
                     (prediction ensembles have no single weight vector to re-broadcast)"
                .into(),
        });
    }
    if let Some(spec) = &config.faults {
        if let Err(reason) = spec.validate() {
            return Err(FederationError::UnsupportedConfig {
                query_id: query.id(),
                reason: format!("invalid fault spec: {reason}"),
            });
        }
    }
    // Per-query attribution: every metric recorded until the scope drops
    // is credited to this query id in the registry's query ring, and every
    // trace event is stamped with the query id (the root of the tree).
    // The profile observer is declared first so it drops *last* — after
    // the query span's End event is buffered — and can hand the complete
    // span tree to the flight recorder and the latency to the SLO tracker.
    let _profile_obs = telemetry::profile::QueryObserver::begin(query.id());
    let _query_scope = telemetry::QueryScope::begin(query.id());
    let _run_span = telemetry::span!("qens_fedlearn_run_query_nanos");
    let _trace_query = telemetry::trace::query_span(query.id());
    let ctx = SelectionContext::new(network, query);
    let select_span = telemetry::trace::span("fedlearn.select");
    let selection = policy.select(&ctx);
    select_span.finish();
    telemetry::trace::instant(
        "fedlearn.selected",
        &[
            ("participants", selection.participants.len() as u64),
            ("standby", selection.standby.len() as u64),
        ],
    );
    if selection.is_empty() {
        return Err(FederationError::NoParticipants {
            query_id: query.id(),
        });
    }
    // Fleet scorecards: credit each selected node (leader-serial, so the
    // registry and journal are deterministic at any thread count). The
    // enabled() guard keeps the summary_epoch lookups off the fast path.
    if telemetry::fleet::enabled() {
        telemetry::fleet::observe_fleet(network.len());
        for (rank, p) in selection.participants.iter().enumerate() {
            let epoch = network.node(p.node).summary_epoch();
            telemetry::fleet::selected(query.id(), p.node.0 as u64, epoch);
            telemetry::journal::node_selected(query.id(), p.node.0 as u64, rank as u64);
        }
    }
    let overhead = policy.overhead(&ctx);
    let scaler = SpaceScaler::from_space(&network.global_space());

    // The leader's initial global model, broadcast to every participant.
    let dim = network.nodes()[0].data().dim();
    let mut initial = config.model.build(dim, config.model_seed);

    // Per-participant training stages (scaled).
    let build_member = |p: &Participant| -> CohortMember {
        let node = network.node(p.node);
        let stages: Vec<DenseDataset> = if p.supporting_clusters.is_empty() {
            vec![scaler.transform_dataset(&node.full_dataset())]
        } else {
            p.supporting_clusters
                .iter()
                .map(|c| scaler.transform_dataset(&node.cluster_dataset(c.cluster_id)))
                .collect()
        };
        CohortMember {
            participant: p.clone(),
            stages,
        }
    };
    let mut cohort: Vec<CohortMember> = selection
        .participants
        .iter()
        .map(&build_member)
        .filter(CohortMember::has_data)
        .collect();
    if cohort.is_empty() {
        return Err(FederationError::NoTrainingData {
            query_id: query.id(),
        });
    }

    let cost = network.cost_model();
    let model_bytes = initial.num_weights() * 8;
    let overhead_seconds: f64 = overhead
        .per_node_visits
        .iter()
        .map(|&(id, visits)| cost.training_seconds(visits, network.node(id).capacity()))
        .fold(0.0, f64::max)
        + if overhead.bytes > 0 {
            cost.transfer_seconds(overhead.bytes)
        } else {
            0.0
        };
    let mut accounting = QueryAccounting {
        query_id: query.id(),
        nodes_selected: cohort.len(),
        samples_total: network.total_samples(),
        sample_visits: overhead
            .per_node_visits
            .iter()
            .map(|&(_, v)| v)
            .sum::<usize>(),
        sim_seconds: overhead_seconds,
        sim_seconds_total: overhead_seconds,
        bytes_transferred: overhead.bytes,
        ..QueryAccounting::default()
    };

    // The training pool: resolved once per call, but the workers behind
    // it live for the whole process ([`par::global`] / [`par::sized`]) —
    // no per-round or per-participant thread creation.
    let sized_pool;
    let pool: &par::ThreadPool = match config.threads {
        Some(n) => {
            sized_pool = par::sized(n);
            &sized_pool
        }
        None => par::global(),
    };

    // The deterministic fault oracle for this query. `None` — no spec,
    // or an inert one — is the fault-free fast path: every fate below
    // then defaults to healthy and no event can fire, which keeps the
    // arithmetic (and therefore the outcome) bit-identical to the
    // pre-fault engine.
    let plan: Option<FaultPlan> = config
        .faults
        .as_ref()
        .filter(|spec| !spec.is_inert())
        .map(|spec| FaultPlan::for_query(spec.clone(), network.len(), query.id()));
    // Quorum is a fraction/count of the *originally selected* cohort.
    let required = config.tolerance.quorum.required(cohort.len());
    let mut trace = FaultTrace::default();
    let mut standby_queue = selection.standby.iter();

    let mut global = None;
    for round in 0..config.rounds {
        let _round_span = telemetry::trace::span_args("fedlearn.round", &[("round", round as u64)]);
        let broadcast = &initial;
        let train_one = |index: usize, member: &CohortMember| -> LocalResult {
            let node = network.node(member.participant.node);
            let mut model = broadcast.clone();
            let train_cfg = TrainConfig {
                seed: lrng::derive_seed(
                    config.train.seed,
                    query.id() ^ ((node.id().0 as u64) << 32) ^ ((round as u64) << 48),
                ),
                ..config.train.clone()
            };
            let samples_used: usize = member.stages.iter().map(DenseDataset::len).sum();
            // Counter adds are relaxed atomics, so these totals are
            // identical whether participants train on threads or inline.
            telemetry::counter!("qens_fedlearn_participants_total").incr();
            telemetry::counter!("qens_fedlearn_stages_total").add(member.stages.len() as u64);
            telemetry::counter!("qens_fedlearn_samples_used_total").add(samples_used as u64);
            let train_span = telemetry::span!("qens_fedlearn_train_nanos");
            // Worker-side span: wall mode only (participants may train on
            // pool threads, so the event order is scheduling-dependent).
            let _trace_train = telemetry::trace::wall_span_args(
                "fedlearn.train",
                &[
                    ("node", node.id().0 as u64),
                    ("round", round as u64),
                    ("samples", samples_used as u64),
                ],
            );
            let start = Instant::now();
            let report = match config.stage_order {
                StageOrder::Sequential => {
                    mlkit::train_incremental(&mut model, &member.stages, &train_cfg)
                }
                StageOrder::Interleaved => {
                    mlkit::train_interleaved(&mut model, &member.stages, &train_cfg)
                }
            };
            let wall = start.elapsed().as_secs_f64();
            train_span.finish();
            telemetry::counter!("qens_fedlearn_sample_visits_total")
                .add(report.samples_seen as u64);
            LocalResult {
                index,
                model,
                samples_used,
                sample_visits: report.samples_seen,
                wall_seconds: wall,
            }
        };

        // Per-round ledgers, accumulated across cohort batches (the
        // initial cohort plus any promoted-standby batches).
        let mut survivors: Vec<Survivor> = Vec::new();
        let mut per_node_seconds: Vec<f64> = Vec::new();
        let mut round_bytes = 0usize;
        let mut round_samples_used = 0usize;
        let mut round_sample_visits = 0usize;
        let mut crashed_indices: Vec<usize> = Vec::new();
        let mut pending: Vec<usize> = (0..cohort.len()).collect();

        loop {
            // Fate pass (serial, roster order): the plan is a pure
            // oracle, so this order affects only the trace layout —
            // which is exactly what makes the trace bit-identical
            // across runs and thread counts.
            let fates_span = telemetry::trace::span_args(
                "fedlearn.fates",
                &[("round", round as u64), ("pending", pending.len() as u64)],
            );
            let mut attempters: Vec<usize> = Vec::new();
            let mut slowdowns: Vec<f64> = Vec::new();
            for &ci in &pending {
                let node_idx = cohort[ci].participant.node.0;
                let fate = plan
                    .as_ref()
                    .map_or(ParticipantFate::Participates { slowdown: 1.0 }, |p| {
                        p.fate(node_idx, round)
                    });
                match fate {
                    ParticipantFate::Crashed => {
                        trace.push(FaultEvent::Crash {
                            node: node_idx,
                            round,
                        });
                        telemetry::trace::instant(
                            "fault.crash",
                            &[("node", node_idx as u64), ("round", round as u64)],
                        );
                        accounting.dropped_participants += 1;
                        telemetry::fleet::dropped(node_idx as u64);
                        telemetry::journal::node_dropped(
                            query.id(),
                            node_idx as u64,
                            round as u64,
                            "crash",
                        );
                        crashed_indices.push(ci);
                    }
                    ParticipantFate::Dropped => {
                        trace.push(FaultEvent::Dropout {
                            node: node_idx,
                            round,
                        });
                        telemetry::trace::instant(
                            "fault.dropout",
                            &[("node", node_idx as u64), ("round", round as u64)],
                        );
                        accounting.dropped_participants += 1;
                        telemetry::fleet::dropped(node_idx as u64);
                        telemetry::journal::node_dropped(
                            query.id(),
                            node_idx as u64,
                            round as u64,
                            "dropout",
                        );
                    }
                    ParticipantFate::Participates { slowdown } => {
                        if slowdown > 1.0 {
                            trace.push(FaultEvent::Straggler {
                                node: node_idx,
                                round,
                                slowdown,
                            });
                            telemetry::trace::instant(
                                "fault.straggler",
                                &[
                                    ("node", node_idx as u64),
                                    ("round", round as u64),
                                    ("slowdown_milli", (slowdown * 1000.0) as u64),
                                ],
                            );
                            telemetry::fleet::straggled(node_idx as u64);
                        }
                        attempters.push(ci);
                        slowdowns.push(slowdown);
                    }
                }
            }
            fates_span.finish();

            // Training pass: one pool job per attempter (chunk size 1),
            // so results land in attempter order — the pool writes each
            // result into its own index slot, for any worker count.
            // The wave span is leader-side (deterministic) and covers the
            // pooled and inline branches identically, so logical-clock
            // profiles attribute training time regardless of QENS_THREADS.
            let train_wave_span = telemetry::trace::span_args(
                "fedlearn.train_wave",
                &[
                    ("round", round as u64),
                    ("attempters", attempters.len() as u64),
                ],
            );
            let (results, pooled) = {
                let batch_jobs: Vec<&CohortMember> =
                    attempters.iter().map(|&ci| &cohort[ci]).collect();
                let pooled = config.parallel && batch_jobs.len() > 1 && pool.threads() > 1;
                let results: Vec<LocalResult> = if pooled {
                    pool.map_indexed(&batch_jobs, 1, |i, member| train_one(i, member))
                } else {
                    batch_jobs
                        .iter()
                        .enumerate()
                        .map(|(i, member)| train_one(i, member))
                        .collect()
                };
                (results, pooled)
            };
            train_wave_span.finish();
            debug_assert!(results.windows(2).all(|w| w[0].index < w[1].index));
            let walls: Vec<f64> = results.iter().map(|r| r.wall_seconds).collect();
            accounting.wall_seconds += round_wall_seconds(pooled, &walls);

            // Transfer/deadline pass (serial, attempter order).
            let transfer_wave_span = telemetry::trace::span_args(
                "fedlearn.transfer_wave",
                &[("round", round as u64), ("reports", walls.len() as u64)],
            );
            for r in results {
                let ci = attempters[r.index];
                let member = &cohort[ci];
                let node = network.node(member.participant.node);
                let node_idx = member.participant.node.0;
                let slowdown = slowdowns[r.index];
                round_samples_used += r.samples_used;
                round_sample_visits += r.sample_visits;
                let train_sim = cost.training_seconds(r.sample_visits, node.capacity()) * slowdown;

                // Upload attempts under the retry budget: each lost
                // attempt is an independent deterministic draw.
                let max_attempts = config.tolerance.retry.max_attempts.max(1);
                let mut failed = 0usize;
                let mut delivered = plan.is_none();
                if let Some(p) = plan.as_ref() {
                    for attempt in 0..max_attempts {
                        if p.transfer_attempt_fails(node_idx, round, attempt) {
                            trace.push(FaultEvent::LinkLoss {
                                node: node_idx,
                                round,
                                attempt,
                            });
                            telemetry::trace::instant(
                                "fault.link_loss",
                                &[
                                    ("node", node_idx as u64),
                                    ("round", round as u64),
                                    ("attempt", attempt as u64),
                                ],
                            );
                            failed += 1;
                        } else {
                            delivered = true;
                            break;
                        }
                    }
                }
                accounting.retries += failed;
                if failed > 0 {
                    telemetry::fleet::retried(node_idx as u64, failed as u64);
                }
                let retry_penalty =
                    node.link()
                        .retry_penalty_seconds(model_bytes, failed, &config.tolerance.retry);
                if !delivered {
                    // Retry budget exhausted: the report never reached
                    // the leader. Charge the broadcast plus every lost
                    // upload; there is no model to aggregate.
                    trace.push(FaultEvent::TransferFailed {
                        node: node_idx,
                        round,
                        attempts: failed,
                    });
                    telemetry::trace::instant(
                        "fault.transfer_failed",
                        &[
                            ("node", node_idx as u64),
                            ("round", round as u64),
                            ("attempts", failed as u64),
                        ],
                    );
                    accounting.dropped_participants += 1;
                    telemetry::fleet::dropped(node_idx as u64);
                    telemetry::journal::node_dropped(
                        query.id(),
                        node_idx as u64,
                        round as u64,
                        "transfer",
                    );
                    let charged =
                        train_sim + node.link().transfer_seconds(model_bytes) + retry_penalty;
                    per_node_seconds.push(charged);
                    telemetry::fleet::trained(
                        node_idx as u64,
                        charged,
                        (r.wall_seconds * 1e9) as u64,
                    );
                    let bytes = (1 + failed) * model_bytes;
                    round_bytes += bytes;
                    telemetry::fleet::transferred(node_idx as u64, bytes as u64);
                    telemetry::trace::instant(
                        "edgesim.transfer",
                        &[("node", node_idx as u64), ("bytes", bytes as u64)],
                    );
                    continue;
                }
                if failed > 0 {
                    trace.push(FaultEvent::RetrySuccess {
                        node: node_idx,
                        round,
                        retries: failed,
                    });
                    telemetry::trace::instant(
                        "fault.retry_success",
                        &[
                            ("node", node_idx as u64),
                            ("round", round as u64),
                            ("retries", failed as u64),
                        ],
                    );
                }
                // Fault-free identity: slowdown is 1.0 and the penalty
                // 0.0 here, so `finish` reduces bit-exactly to the
                // pre-fault `training + transfer(2·bytes)` charge.
                let finish =
                    train_sim + node.link().transfer_seconds(2 * model_bytes) + retry_penalty;
                if let Some(deadline) = config.tolerance.straggler_deadline_seconds {
                    if finish > deadline {
                        // The leader stopped waiting at the deadline; the
                        // (completed) work is discarded for this round.
                        trace.push(FaultEvent::DeadlineMiss {
                            node: node_idx,
                            round,
                            deadline_seconds: deadline,
                            finish_seconds: finish,
                        });
                        telemetry::trace::instant(
                            "fault.deadline_miss",
                            &[("node", node_idx as u64), ("round", round as u64)],
                        );
                        accounting.deadline_misses += 1;
                        accounting.dropped_participants += 1;
                        telemetry::fleet::dropped(node_idx as u64);
                        telemetry::journal::straggler_deadline(
                            query.id(),
                            node_idx as u64,
                            round as u64,
                        );
                        per_node_seconds.push(deadline);
                        telemetry::fleet::trained(
                            node_idx as u64,
                            deadline,
                            (r.wall_seconds * 1e9) as u64,
                        );
                        let bytes = (2 + failed) * model_bytes;
                        round_bytes += bytes;
                        telemetry::fleet::transferred(node_idx as u64, bytes as u64);
                        telemetry::trace::instant(
                            "edgesim.transfer",
                            &[("node", node_idx as u64), ("bytes", bytes as u64)],
                        );
                        continue;
                    }
                }
                per_node_seconds.push(finish);
                telemetry::fleet::trained(node_idx as u64, finish, (r.wall_seconds * 1e9) as u64);
                let bytes = (2 + failed) * model_bytes;
                round_bytes += bytes;
                telemetry::fleet::transferred(node_idx as u64, bytes as u64);
                telemetry::trace::instant(
                    "edgesim.transfer",
                    &[("node", node_idx as u64), ("bytes", bytes as u64)],
                );
                survivors.push(Survivor {
                    ranking: member.participant.ranking,
                    samples_used: r.samples_used,
                    model: r.model,
                });
            }
            transfer_wave_span.finish();

            if survivors.len() >= required {
                break;
            }
            // Below quorum: promote ranked standbys to cover the
            // deficit, then run them through the same round's fate /
            // training / transfer passes.
            let promote_span =
                telemetry::trace::span_args("fedlearn.promote", &[("round", round as u64)]);
            let deficit = required - survivors.len();
            let mut promoted: Vec<usize> = Vec::new();
            while promoted.len() < deficit {
                let Some(p) = standby_queue.next() else { break };
                let member = build_member(p);
                // Standbys without training data are skipped — they
                // could never report a model.
                if member.has_data() {
                    trace.push(FaultEvent::Replacement {
                        standby: p.node.0,
                        round,
                    });
                    telemetry::trace::instant(
                        "fault.replacement",
                        &[("standby", p.node.0 as u64), ("round", round as u64)],
                    );
                    accounting.replacements += 1;
                    telemetry::fleet::promoted(p.node.0 as u64);
                    telemetry::journal::standby_promoted(query.id(), p.node.0 as u64, round as u64);
                    cohort.push(member);
                    promoted.push(cohort.len() - 1);
                }
            }
            promote_span.finish();
            if promoted.is_empty() {
                trace.push(FaultEvent::QuorumLost {
                    round,
                    survivors: survivors.len(),
                    required,
                });
                telemetry::trace::instant(
                    "fault.quorum_lost",
                    &[
                        ("round", round as u64),
                        ("survivors", survivors.len() as u64),
                        ("required", required as u64),
                    ],
                );
                telemetry::journal::quorum_lost(query.id(), round as u64, survivors.len() as u64);
                for m in &cohort {
                    telemetry::fleet::quorum_lost(m.participant.node.0 as u64);
                }
                return Err(FederationError::QuorumLost {
                    query_id: query.id(),
                    round,
                    survivors: survivors.len(),
                    required,
                });
            }
            pending = promoted;
        }

        // Aggregate the survivors' local models.
        let lambdas: Vec<f64> = survivors.iter().map(|s| s.ranking).collect();
        let samples: Vec<usize> = survivors.iter().map(|s| s.samples_used).collect();
        let models: Vec<Model> = survivors.into_iter().map(|s| s.model).collect();
        let agg_span = telemetry::span!("qens_fedlearn_aggregate_nanos");
        let trace_agg = telemetry::trace::span_args(
            "fedlearn.aggregate",
            &[("survivors", models.len() as u64), ("round", round as u64)],
        );
        let aggregated = GlobalModel::aggregate(config.aggregation, models, &lambdas, &samples);
        trace_agg.finish();
        agg_span.finish();
        telemetry::counter!("qens_fedlearn_rounds_total").incr();
        telemetry::counter!("qens_fedlearn_model_bytes_total").add(round_bytes as u64);

        // Accounting: every round pays training on the slowest charged
        // node plus the model transfers that actually happened, each at
        // the node's own uplink speed.
        accounting.samples_used = round_samples_used;
        accounting.sample_visits += round_sample_visits;
        accounting.sim_seconds += per_node_seconds.iter().copied().fold(0.0, f64::max);
        accounting.sim_seconds_total += per_node_seconds.iter().sum::<f64>();
        accounting.bytes_transferred += round_bytes;

        // Permanent crashes leave the cohort before the next round.
        if !crashed_indices.is_empty() {
            let mut keep = vec![true; cohort.len()];
            for &ci in &crashed_indices {
                keep[ci] = false;
            }
            let mut it = keep.into_iter();
            cohort.retain(|_| it.next().expect("keep mask covers the cohort"));
        }

        // Broadcast the averaged weights back for the next round.
        if let GlobalModel::Single(model) = &aggregated {
            initial = model.clone();
        }
        global = Some(aggregated);
    }

    let global = global.expect("at least one round ran");
    let final_cohort: Vec<Participant> = cohort.iter().map(|m| m.participant.clone()).collect();
    for p in &final_cohort {
        telemetry::fleet::participated(p.node.0 as u64);
    }
    // Satellite coupling: the simulator ledger and the telemetry counters
    // must tell the same story (asserted in tests/telemetry_pipeline.rs).
    accounting.commit_telemetry();
    Ok(RoundOutcome {
        global,
        scaler,
        selection,
        accounting,
        fault_trace: trace,
        final_cohort,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdata::scenario;
    use selection::{AllNodes, QueryDriven, RandomSelection};

    fn network(hetero: bool) -> EdgeNetwork {
        let nodes = if hetero {
            scenario::heterogeneous_nodes(5, 120, 3)
        } else {
            scenario::homogeneous_nodes(5, 120, 3)
        };
        let mut net =
            EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
        net.quantize_all(5, 1);
        net
    }

    fn fast_cfg(seed: u64) -> FederationConfig {
        FederationConfig {
            train: TrainConfig::paper_lr(seed).with_epochs(15),
            ..FederationConfig::paper_lr(seed)
        }
    }

    /// A query over the leader-like region of the heterogeneous scenario
    /// (x in [0,20], y = 2x+3 -> joint region [0,20] x [0,45]).
    fn leader_query() -> Query {
        Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0])
    }

    #[test]
    fn round_produces_a_finite_model_and_sane_accounting() {
        let net = network(true);
        let out = run_query(&net, &leader_query(), &QueryDriven::top_l(3), &fast_cfg(1)).unwrap();
        assert!(out.accounting.nodes_selected >= 1);
        assert!(out.accounting.samples_used <= net.total_samples());
        assert!(out.accounting.sim_seconds > 0.0);
        assert!(out.accounting.bytes_transferred > 0);
        let loss = out.query_loss(&net, &leader_query()).unwrap();
        assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn query_driven_beats_random_on_heterogeneous_nodes() {
        // Averaged over several queries: a single random draw can get
        // lucky and pick the compatible nodes, but on average it trains
        // on the wrong data (only 2 of 5 nodes match the leader region).
        let net = network(true);
        let mut ours_total = 0.0;
        let mut random_total = 0.0;
        for qid in 0..8u64 {
            let q = Query::from_boundary_vec(qid, &[0.0, 20.0, 0.0, 45.0]);
            let ours = run_query(&net, &q, &QueryDriven::top_l(2), &fast_cfg(5)).unwrap();
            let random =
                run_query(&net, &q, &RandomSelection { l: 2, seed: 999 }, &fast_cfg(5)).unwrap();
            ours_total += ours.query_loss(&net, &q).unwrap();
            random_total += random.query_loss(&net, &q).unwrap();
        }
        assert!(
            ours_total < random_total,
            "query-driven mean loss {ours_total} should beat random {random_total}"
        );
    }

    #[test]
    fn query_driven_uses_less_data_than_all_nodes() {
        let net = network(true);
        // A query over *part* of the leader region: only some clusters of
        // the matching nodes support it, so data selectivity bites.
        let q = Query::from_boundary_vec(0, &[0.0, 10.0, 0.0, 25.0]);
        let ours = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(2)).unwrap();
        let all = run_query(&net, &q, &AllNodes, &fast_cfg(2)).unwrap();
        assert!(ours.accounting.samples_used < all.accounting.samples_used);
        assert!(
            ours.accounting.sim_seconds < all.accounting.sim_seconds,
            "ours {} vs all {}",
            ours.accounting.sim_seconds,
            all.accounting.sim_seconds
        );
        assert_eq!(all.accounting.samples_used, net.total_samples());
    }

    #[test]
    fn parallel_and_serial_rounds_agree() {
        let net = network(true);
        let q = leader_query();
        let par = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(7)).unwrap();
        let ser = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &FederationConfig {
                parallel: false,
                ..fast_cfg(7)
            },
        )
        .unwrap();
        match (&par.global, &ser.global) {
            (
                GlobalModel::Ensemble {
                    members: a,
                    lambdas: la,
                },
                GlobalModel::Ensemble {
                    members: b,
                    lambdas: lb,
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(la, lb);
            }
            other => panic!("unexpected global models: {other:?}"),
        }
        assert_eq!(par.accounting.samples_used, ser.accounting.samples_used);
        assert_eq!(par.accounting.sample_visits, ser.accounting.sample_visits);
    }

    #[test]
    fn disjoint_query_yields_no_participants() {
        let net = network(true);
        let q = Query::from_boundary_vec(9, &[1e6, 2e6, 1e6, 2e6]);
        let err = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(0)).unwrap_err();
        assert_eq!(err, FederationError::NoParticipants { query_id: 9 });
    }

    #[test]
    fn weighted_averaging_weights_follow_rankings() {
        let net = network(true);
        let q = leader_query();
        let out = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(3)).unwrap();
        if let GlobalModel::Ensemble { lambdas, .. } = &out.global {
            let rankings: Vec<f64> = out
                .selection
                .participants
                .iter()
                .map(|p| p.ranking)
                .collect();
            let total: f64 = rankings.iter().sum();
            for (l, r) in lambdas.iter().zip(&rankings) {
                assert!((l - r / total).abs() < 1e-12);
            }
        } else {
            panic!("expected ensemble");
        }
    }

    #[test]
    fn multi_round_fedavg_refines_the_single_model() {
        let net = network(false);
        let q = Query::from_boundary_vec(0, &[0.0, 50.0, 0.0, 100.0]);
        let one = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(3).with_aggregation(Aggregation::FedAvgWeights),
        )
        .unwrap();
        let three = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(3).with_rounds(3),
        )
        .unwrap();
        // Multi-round pays proportionally more and never does worse on a
        // homogeneous population.
        assert!(three.accounting.sample_visits > 2 * one.accounting.sample_visits);
        assert!(three.accounting.bytes_transferred > 2 * one.accounting.bytes_transferred);
        let l1 = one.query_loss(&net, &q).unwrap();
        let l3 = three.query_loss(&net, &q).unwrap();
        assert!(
            l3 <= l1 * 1.2,
            "3 rounds ({l3}) regressed badly vs 1 round ({l1})"
        );
        assert!(matches!(three.global, GlobalModel::Single(_)));
    }

    /// Regression: this combination used to `assert!` (a process abort in
    /// release sweeps); it must instead surface as a recoverable error.
    #[test]
    fn multi_round_with_ensemble_returns_unsupported_config() {
        let net = network(false);
        let q = Query::from_boundary_vec(11, &[0.0, 50.0, 0.0, 100.0]);
        let mut cfg = fast_cfg(1);
        cfg.rounds = 2; // without switching the aggregation rule
        let err = run_query(&net, &q, &QueryDriven::top_l(2), &cfg).unwrap_err();
        match err {
            FederationError::UnsupportedConfig { query_id, reason } => {
                assert_eq!(query_id, 11);
                assert!(reason.contains("FedAvg"), "reason was {reason:?}");
            }
            other => panic!("expected UnsupportedConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_rounds_returns_unsupported_config() {
        let net = network(false);
        let q = Query::from_boundary_vec(4, &[0.0, 50.0, 0.0, 100.0]);
        let mut cfg = fast_cfg(1);
        cfg.rounds = 0;
        let err = run_query(&net, &q, &QueryDriven::top_l(2), &cfg).unwrap_err();
        assert!(matches!(
            err,
            FederationError::UnsupportedConfig { query_id: 4, .. }
        ));
    }

    /// Regression: `with_rounds(0)` used to `assert!` (a process abort);
    /// the builder must hand the value through so [`run_query`] can
    /// reject it recoverably.
    #[test]
    fn with_rounds_zero_is_rejected_at_run_time_not_build_time() {
        let cfg = fast_cfg(1).with_rounds(0); // must not panic
        assert_eq!(cfg.rounds, 0);
        let net = network(false);
        let q = Query::from_boundary_vec(8, &[0.0, 50.0, 0.0, 100.0]);
        let err = run_query(&net, &q, &QueryDriven::top_l(2), &cfg).unwrap_err();
        assert!(matches!(
            err,
            FederationError::UnsupportedConfig { query_id: 8, .. }
        ));
    }

    /// Regression: serial rounds used to credit only the *slowest*
    /// participant's wall time (max) even though the participants ran one
    /// after another; the serial ledger must use the sum.
    #[test]
    fn wall_clock_sums_when_serial_and_maxes_when_pooled() {
        let walls = [0.5, 0.125, 0.25, 0.0625];
        assert_eq!(
            round_wall_seconds(false, &walls),
            0.5 + 0.125 + 0.25 + 0.0625
        );
        assert_eq!(round_wall_seconds(true, &walls), 0.5);
        // The invariant the ledger relies on: a serial round can never be
        // credited less wall time than a pooled one (sum >= max, for any
        // non-negative walls).
        let mut rng_walls = Vec::new();
        for i in 0..100u64 {
            rng_walls.push(((i * 2654435761) % 1000) as f64 / 1000.0);
            assert!(
                round_wall_seconds(false, &rng_walls) >= round_wall_seconds(true, &rng_walls),
                "serial wall must dominate pooled wall for {rng_walls:?}"
            );
        }
        assert_eq!(round_wall_seconds(false, &[]), 0.0);
        assert_eq!(round_wall_seconds(true, &[]), 0.0);
    }

    /// End-to-end version of the invariant above. Real timing on a busy
    /// (possibly single-core) CI box is noisy, so the comparison keeps a
    /// generous margin: serial wall must be at least half the pooled
    /// wall. The exact sum-vs-max semantics are pinned by the unit test
    /// on [`round_wall_seconds`].
    #[test]
    fn serial_wall_clock_dominates_pooled_wall_clock() {
        let net = network(true);
        let q = leader_query();
        let cfg = fast_cfg(13).with_thread_count(4);
        let pooled = run_query(&net, &q, &QueryDriven::top_l(3), &cfg).unwrap();
        let ser = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &FederationConfig {
                parallel: false,
                ..cfg
            },
        )
        .unwrap();
        assert!(pooled.accounting.wall_seconds > 0.0);
        assert!(ser.accounting.wall_seconds > 0.0);
        assert!(
            ser.accounting.wall_seconds >= pooled.accounting.wall_seconds * 0.5,
            "serial wall {} vs pooled wall {}",
            ser.accounting.wall_seconds,
            pooled.accounting.wall_seconds
        );
    }

    #[test]
    fn query_region_dataset_collects_only_inside_points() {
        let net = network(false);
        let q = Query::from_boundary_vec(0, &[0.0, 10.0, -100.0, 200.0]);
        let scaler = SpaceScaler::from_space(&net.global_space());
        let ds = query_region_dataset(&net, &q, &scaler).unwrap();
        assert!(!ds.is_empty());
        // Every collected x (scaled) maps back inside [0, 10].
        let space = net.global_space();
        for row in ds.x().row_iter() {
            let raw =
                space.interval(0).lo() + row[0] * (space.interval(0).hi() - space.interval(0).lo());
            assert!((-1e-9..=10.0 + 1e-9).contains(&raw));
        }
    }

    // ---------------- fault-injection engine ----------------

    use faults::{FaultSpec, FaultTolerance, Quorum};

    fn assert_outcomes_identical(a: &RoundOutcome, b: &RoundOutcome) {
        match (&a.global, &b.global) {
            (
                GlobalModel::Ensemble {
                    members: ma,
                    lambdas: la,
                },
                GlobalModel::Ensemble {
                    members: mb,
                    lambdas: lb,
                },
            ) => {
                assert_eq!(ma, mb);
                assert_eq!(la, lb);
            }
            (GlobalModel::Single(ma), GlobalModel::Single(mb)) => assert_eq!(ma, mb),
            other => panic!("global model shapes diverged: {other:?}"),
        }
        assert_eq!(a.selection, b.selection);
        assert_eq!(a.final_cohort, b.final_cohort);
        assert_eq!(a.fault_trace, b.fault_trace);
        assert_eq!(a.fault_trace.to_json(), b.fault_trace.to_json());
        // Everything except measured wall time must agree exactly.
        assert_eq!(a.accounting.samples_used, b.accounting.samples_used);
        assert_eq!(a.accounting.sample_visits, b.accounting.sample_visits);
        assert_eq!(
            a.accounting.bytes_transferred,
            b.accounting.bytes_transferred
        );
        assert_eq!(a.accounting.sim_seconds, b.accounting.sim_seconds);
        assert_eq!(
            a.accounting.sim_seconds_total,
            b.accounting.sim_seconds_total
        );
        assert_eq!(a.accounting.retries, b.accounting.retries);
        assert_eq!(
            a.accounting.dropped_participants,
            b.accounting.dropped_participants
        );
        assert_eq!(a.accounting.replacements, b.accounting.replacements);
        assert_eq!(a.accounting.deadline_misses, b.accounting.deadline_misses);
    }

    /// The headline invariant: disabling faults (or enabling an inert
    /// spec) leaves `run_query` bit-identical to the pre-fault engine.
    #[test]
    fn inert_fault_spec_is_bit_identical_to_no_faults() {
        let net = network(true);
        let q = leader_query();
        let plain = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(7)).unwrap();
        let inert = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(7).with_faults(FaultSpec::none()),
        )
        .unwrap();
        assert!(plain.fault_trace.is_empty());
        assert!(inert.fault_trace.is_empty());
        assert_eq!(plain.accounting.retries, 0);
        assert_eq!(plain.accounting.dropped_participants, 0);
        assert_outcomes_identical(&plain, &inert);
    }

    /// Same seed ⇒ same trace, cohort, accounting and model, for any
    /// worker count (pinned pools of 1/2/4 workers plus the fully
    /// serial path).
    #[test]
    fn faulty_runs_are_bit_identical_across_thread_counts() {
        let net = network(true);
        let q = leader_query();
        let cfg = fast_cfg(11)
            .with_faults(FaultSpec::unreliable_edge(42))
            .with_tolerance(FaultTolerance::full_strength());
        let reference = run_query(&net, &q, &QueryDriven::top_l(3), &cfg).unwrap();
        assert!(
            !reference.fault_trace.is_empty(),
            "unreliable_edge(42) should fire at least one event"
        );
        for threads in [1usize, 2, 4] {
            let out = run_query(
                &net,
                &q,
                &QueryDriven::top_l(3),
                &cfg.clone().with_thread_count(threads),
            )
            .unwrap();
            assert_outcomes_identical(&reference, &out);
        }
        let serial = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &FederationConfig {
                parallel: false,
                ..cfg
            },
        )
        .unwrap();
        assert_outcomes_identical(&reference, &serial);
    }

    /// Degenerate survivor set: certain dropout for everyone and no
    /// standby list (random selection has no ranking to promote from)
    /// must surface as `QuorumLost`, never a panic.
    #[test]
    fn all_participants_dropping_is_quorum_lost() {
        let net = network(true);
        let q = leader_query();
        let cfg = fast_cfg(3).with_faults(FaultSpec::dropout(1, 1.0));
        let err = run_query(&net, &q, &RandomSelection { l: 3, seed: 9 }, &cfg).unwrap_err();
        match err {
            FederationError::QuorumLost {
                survivors,
                required,
                round,
                ..
            } => {
                assert_eq!(survivors, 0);
                assert_eq!(required, 1);
                assert_eq!(round, 0);
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }

    /// Degenerate survivor set: when exactly one participant survives,
    /// the aggregate *is* that participant's model (weight 1.0).
    #[test]
    fn single_survivor_aggregates_to_its_own_model() {
        let net = network(true);
        let q = leader_query();
        // Discover the cohort, then crash everyone except the best-ranked
        // participant from round 0 on.
        let baseline = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(5)).unwrap();
        assert!(baseline.selection.len() >= 2, "need at least two selected");
        let mut spec = FaultSpec::none();
        for p in &baseline.selection.participants[1..] {
            spec = spec.with_crash(p.node.0, 0);
        }
        let out = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(5).with_faults(spec),
        )
        .unwrap();
        match &out.global {
            GlobalModel::Ensemble { members, lambdas } => {
                assert_eq!(members.len(), 1);
                assert_eq!(lambdas, &vec![1.0]);
                // The survivor in the baseline ensemble trained with the
                // same derived seed, so the models agree exactly.
                if let GlobalModel::Ensemble {
                    members: base_members,
                    ..
                } = &baseline.global
                {
                    assert_eq!(members[0], base_members[0]);
                } else {
                    panic!("baseline should be an ensemble");
                }
            }
            other => panic!("expected a single-member ensemble, got {other:?}"),
        }
        assert_eq!(out.fault_trace.count("crash"), baseline.selection.len() - 1);
        assert_eq!(out.final_cohort.len(), 1);
        assert_eq!(
            out.final_cohort[0].node,
            baseline.selection.participants[0].node
        );
    }

    /// Ranked replacements: crashing a selected participant under a
    /// full-strength quorum promotes the best-ranked standby into the
    /// same round.
    #[test]
    fn crash_promotes_ranked_standby_at_full_strength() {
        let net = network(true);
        let q = leader_query();
        // l = 1 guarantees a non-empty standby tail whenever more than
        // one node supports the query.
        let baseline = run_query(&net, &q, &QueryDriven::top_l(1), &fast_cfg(5)).unwrap();
        assert!(
            !baseline.selection.standby.is_empty(),
            "need a standby tail for this scenario"
        );
        let selected = baseline.selection.participants[0].node.0;
        let best_standby = baseline.selection.standby[0].node;
        let out = run_query(
            &net,
            &q,
            &QueryDriven::top_l(1),
            &fast_cfg(5)
                .with_faults(FaultSpec::none().with_crash(selected, 0))
                .with_tolerance(FaultTolerance::full_strength()),
        )
        .unwrap();
        assert_eq!(out.accounting.replacements, 1);
        assert_eq!(out.fault_trace.count("replacement"), 1);
        assert_eq!(out.fault_trace.count("crash"), 1);
        assert_eq!(out.final_cohort.len(), 1);
        assert_eq!(out.final_cohort[0].node, best_standby);
        let loss = out.query_loss(&net, &q).unwrap();
        assert!(loss.is_finite());
    }

    /// Replacement exhaustion: a quorum larger than selection + standby
    /// can ever supply must fail with `QuorumLost` after the standby
    /// list runs dry — not loop, not panic.
    #[test]
    fn standby_exhaustion_is_quorum_lost() {
        let net = network(true);
        let q = leader_query();
        let baseline = run_query(&net, &q, &QueryDriven::top_l(1), &fast_cfg(5)).unwrap();
        let supply = 1 + baseline.selection.standby.len();
        let err = run_query(
            &net,
            &q,
            &QueryDriven::top_l(1),
            &fast_cfg(5)
                .with_faults(
                    FaultSpec::none().with_crash(baseline.selection.participants[0].node.0, 0),
                )
                .with_tolerance(FaultTolerance::default().with_quorum(Quorum::AtLeast(supply + 5))),
        )
        .unwrap_err();
        match err {
            FederationError::QuorumLost {
                survivors,
                required,
                ..
            } => {
                assert_eq!(required, supply + 5);
                assert!(survivors < required);
                assert!(survivors <= supply);
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }

    /// Lossy links: retries are charged to the ledger and the trace, and
    /// the federation still completes under the default retry budget.
    #[test]
    fn link_loss_charges_retries_and_extra_seconds() {
        let net = network(true);
        let q = leader_query();
        let cfg = fast_cfg(7).with_rounds(3);
        let clean = run_query(&net, &q, &QueryDriven::top_l(3), &cfg).unwrap();
        let lossy = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &cfg.clone()
                .with_faults(FaultSpec::none().with_link_loss(0.75))
                .with_tolerance(
                    FaultTolerance::full_strength().with_retry(faults::RetryPolicy {
                        max_attempts: 8,
                        ..faults::RetryPolicy::default()
                    }),
                ),
        )
        .unwrap();
        assert!(lossy.accounting.retries > 0, "0.75 loss never fired");
        assert_eq!(
            lossy.fault_trace.count("link_loss"),
            lossy.accounting.retries
        );
        // Every lost attempt is paid for: strictly more simulated time
        // and wire bytes than the clean run.
        assert!(lossy.accounting.sim_seconds_total > clean.accounting.sim_seconds_total);
        assert!(lossy.accounting.bytes_transferred > clean.accounting.bytes_transferred);
        // Retry bookkeeping is consistent: successes plus exhaustions
        // bound the per-node outcomes.
        let successes = lossy.fault_trace.count("retry_success");
        let exhausted = lossy.fault_trace.count("transfer_failed");
        assert!(successes + exhausted > 0);
        assert_eq!(lossy.accounting.dropped_participants, exhausted);
    }

    /// Straggler deadline: a node slowed far past the deadline is cut
    /// off (work discarded, time capped), while fast peers survive.
    #[test]
    fn deadline_cuts_off_the_slow_node() {
        let mut net = network(true);
        let q = leader_query();
        let clean = run_query(&net, &q, &QueryDriven::top_l(3), &fast_cfg(7)).unwrap();
        assert!(clean.selection.len() >= 2, "need at least two selected");
        // Make the worst-ranked selected node catastrophically slow.
        let slow = clean.selection.participants.last().unwrap().node;
        net.node_mut(slow).set_capacity(1e-4);
        let deadline = clean.accounting.sim_seconds * 10.0;
        let out = run_query(
            &net,
            &q,
            &QueryDriven::top_l(3),
            &fast_cfg(7)
                .with_faults(FaultSpec::none().with_dropout(0.0).with_link_loss(0.0))
                .with_tolerance(FaultTolerance::default().with_deadline(deadline)),
        );
        // An all-inert spec never builds a plan, but the deadline is a
        // *tolerance* feature and must apply regardless of any plan.
        let out = match out {
            Ok(o) => o,
            Err(e) => panic!("deadline run failed: {e}"),
        };
        assert_eq!(out.accounting.deadline_misses, 1);
        assert_eq!(out.fault_trace.count("deadline_miss"), 1);
        // The leader stopped waiting at the deadline: the round's sim
        // time is capped by it (plus selection overhead, zero here).
        assert!(out.accounting.sim_seconds <= deadline + 1e-9);
        // The slow node's model was discarded.
        if let GlobalModel::Ensemble { members, .. } = &out.global {
            assert_eq!(members.len(), clean.selection.len() - 1);
        } else {
            panic!("expected ensemble");
        }
    }
}
