//! Distributed learning over selected edge nodes (§IV).
//!
//! Given a query and a participant [`selection::Selection`], the leader
//! broadcasts an initial model (plus the global-space scaler), every
//! participant trains it locally - *incrementally over its supporting
//! clusters only* when the query-driven policy selected it, over its
//! whole dataset for the baselines - and the leader aggregates the
//! returned local models by plain prediction averaging (Eq. 6), by
//! ranking-weighted averaging (Eq. 7), or by FedAvg-style weight
//! averaging (an extension variant used in the ablations). Resource use
//! (samples, sample-visits, simulated and wall time, bytes) is recorded
//! per query - Figs. 8 and 9 read straight from that ledger.
//!
//! * [`aggregate`] - the global-model representations and Eq. 6/7.
//! * [`batch`] - several queries' rounds sharing one training wave
//!   (the serving batcher's entry point), bit-identical to [`round`].
//! * [`round`] - one query's selection -> local training -> aggregation
//!   round, with multi-threaded participant training.
//! * [`stream`] - running a whole query workload and summarising it.
//! * [`error`] - federation error types.

pub mod aggregate;
pub mod batch;
pub mod error;
pub mod round;
pub mod stream;

pub use aggregate::{Aggregation, GlobalModel};
pub use batch::{batchable, run_batch};
pub use error::FederationError;
pub use round::{run_query, FederationConfig, RoundOutcome, StageOrder};
pub use stream::{run_stream, QueryResult, StreamResult};
