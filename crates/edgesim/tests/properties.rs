//! Property-style tests for the edge-environment substrate
//! (deterministic sweeps over the in-tree RNG; no proptest needed
//! offline).

use edgesim::{CostModel, EdgeNetwork, SpaceScaler};
use linalg::rng::{rng_for, Rng};
use linalg::Matrix;
use mlkit::DenseDataset;

const CASES: usize = 32;

/// 1–5 nodes with random offsets and sizes.
fn random_network(rng: &mut impl Rng) -> EdgeNetwork {
    let count = rng.gen_range(1..5usize);
    let datasets = (0..count)
        .map(|i| {
            let offset = rng.gen_range(-100.0..100.0);
            let n = rng.gen_range(5..40usize);
            let x = Matrix::from_rows(&(0..n).map(|j| vec![offset + j as f64]).collect::<Vec<_>>());
            let y: Vec<f64> = (0..n).map(|j| offset * 0.5 + j as f64 * 2.0).collect();
            (format!("node-{i}"), DenseDataset::new(x, y))
        })
        .collect();
    EdgeNetwork::from_datasets(datasets)
}

/// The global space contains every joint point of every node.
#[test]
fn global_space_is_a_hull() {
    let mut rng = rng_for(0xED6E, 1);
    for _ in 0..CASES {
        let net = random_network(&mut rng);
        let space = net.global_space();
        for node in net.nodes() {
            for row in node.joint().row_iter() {
                assert!(space.contains_point(row));
            }
        }
    }
}

/// Quantisation with any K partitions every node's data.
#[test]
fn quantisation_partitions() {
    let mut rng = rng_for(0xED6E, 2);
    for _ in 0..CASES {
        let mut net = random_network(&mut rng);
        let k = rng.gen_range(1..7usize);
        let seed = rng.gen_range(0..100u64);
        net.quantize_all(k, seed);
        for node in net.nodes() {
            let covered: usize = node.summaries().iter().map(|s| s.size).sum();
            assert_eq!(covered, node.len());
            assert!(node.k() <= k.min(node.len()));
        }
    }
}

/// Scaling the joint space maps every node's data into [0, 1] and
/// inverts exactly on labels.
#[test]
fn space_scaler_bounds_and_inverts() {
    let mut rng = rng_for(0xED6E, 3);
    for _ in 0..CASES {
        let net = random_network(&mut rng);
        let probe = rng.gen_range(-1e4..1e4);
        let scaler = SpaceScaler::from_space(&net.global_space());
        for node in net.nodes() {
            let t = scaler.transform_dataset(node.data());
            for &v in t.x().as_slice() {
                assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
            for &v in t.y() {
                assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
        let round = scaler.inverse_label(scaler.scale_label(probe));
        assert!((round - probe).abs() < 1e-6 * probe.abs().max(1.0));
    }
}

/// Cost model monotonicity: more work or more bytes never costs less.
#[test]
fn cost_model_is_monotone() {
    let mut rng = rng_for(0xED6E, 4);
    for _ in 0..CASES {
        let v1 = rng.gen_range(0..100_000usize);
        let v2 = rng.gen_range(0..100_000usize);
        let b1 = rng.gen_range(0..1_000_000usize);
        let b2 = rng.gen_range(0..1_000_000usize);
        let cap = rng.gen_range(0.1..10.0);
        let m = CostModel::default();
        let (vlo, vhi) = (v1.min(v2), v1.max(v2));
        let (blo, bhi) = (b1.min(b2), b1.max(b2));
        assert!(m.training_seconds(vlo, cap) <= m.training_seconds(vhi, cap));
        assert!(m.transfer_seconds(blo) <= m.transfer_seconds(bhi));
        // Parallel time never exceeds sequential time.
        let nodes = [(vlo, cap, blo), (vhi, cap, bhi)];
        assert!(m.parallel_round_seconds(&nodes) <= m.sequential_round_seconds(&nodes) + 1e-12);
    }
}

/// Cardinality estimates never exceed the node's sample count and the
/// exact count is bounded the same way.
#[test]
fn cardinality_bounds() {
    let mut rng = rng_for(0xED6E, 5);
    for _ in 0..CASES {
        let mut net = random_network(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let qx = rng.gen_range(-150.0..150.0);
        let qw = rng.gen_range(1.0..100.0);
        net.quantize_all(4, seed);
        let space = net.global_space();
        let y = space.interval(1);
        let q = geom::Query::from_boundary_vec(0, &[qx, qx + qw, y.lo() - 1.0, y.hi() + 1.0]);
        for node in net.nodes() {
            let est = node.estimated_query_cardinality(&q);
            let exact = node.exact_query_cardinality(&q);
            assert!(est >= -1e-9 && est <= node.len() as f64 + 1e-9);
            assert!(exact <= node.len());
        }
    }
}
