//! Property-based tests for the edge-environment substrate.

use edgesim::{CostModel, EdgeNetwork, SpaceScaler};
use linalg::Matrix;
use mlkit::DenseDataset;
use proptest::prelude::*;

/// Strategy: 1–5 nodes with random offsets and sizes.
fn network_strategy() -> impl Strategy<Value = EdgeNetwork> {
    prop::collection::vec((-100.0_f64..100.0, 5_usize..40), 1..5).prop_map(|specs| {
        let datasets = specs
            .into_iter()
            .enumerate()
            .map(|(i, (offset, n))| {
                let x = Matrix::from_rows(
                    &(0..n).map(|j| vec![offset + j as f64]).collect::<Vec<_>>(),
                );
                let y: Vec<f64> = (0..n).map(|j| offset * 0.5 + j as f64 * 2.0).collect();
                (format!("node-{i}"), DenseDataset::new(x, y))
            })
            .collect();
        EdgeNetwork::from_datasets(datasets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The global space contains every joint point of every node.
    #[test]
    fn global_space_is_a_hull(net in network_strategy()) {
        let space = net.global_space();
        for node in net.nodes() {
            for row in node.joint().row_iter() {
                prop_assert!(space.contains_point(row));
            }
        }
    }

    /// Quantisation with any K partitions every node's data.
    #[test]
    fn quantisation_partitions(mut net in network_strategy(), k in 1_usize..7, seed in 0_u64..100) {
        net.quantize_all(k, seed);
        for node in net.nodes() {
            let covered: usize = node.summaries().iter().map(|s| s.size).sum();
            prop_assert_eq!(covered, node.len());
            prop_assert!(node.k() <= k.min(node.len()));
        }
    }

    /// Scaling the joint space maps every node's data into [0, 1] and
    /// inverts exactly on labels.
    #[test]
    fn space_scaler_bounds_and_inverts(net in network_strategy(), probe in -1e4_f64..1e4) {
        let scaler = SpaceScaler::from_space(&net.global_space());
        for node in net.nodes() {
            let t = scaler.transform_dataset(node.data());
            for &v in t.x().as_slice() {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
            for &v in t.y() {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
        let round = scaler.inverse_label(scaler.scale_label(probe));
        prop_assert!((round - probe).abs() < 1e-6 * probe.abs().max(1.0));
    }

    /// Cost model monotonicity: more work or more bytes never costs less.
    #[test]
    fn cost_model_is_monotone(v1 in 0_usize..100_000, v2 in 0_usize..100_000,
                              b1 in 0_usize..1_000_000, b2 in 0_usize..1_000_000,
                              cap in 0.1_f64..10.0) {
        let m = CostModel::default();
        let (vlo, vhi) = (v1.min(v2), v1.max(v2));
        let (blo, bhi) = (b1.min(b2), b1.max(b2));
        prop_assert!(m.training_seconds(vlo, cap) <= m.training_seconds(vhi, cap));
        prop_assert!(m.transfer_seconds(blo) <= m.transfer_seconds(bhi));
        // Parallel time never exceeds sequential time.
        let nodes = [(vlo, cap, blo), (vhi, cap, bhi)];
        prop_assert!(m.parallel_round_seconds(&nodes) <= m.sequential_round_seconds(&nodes) + 1e-12);
    }

    /// Cardinality estimates never exceed the node's sample count and the
    /// exact count is bounded the same way.
    #[test]
    fn cardinality_bounds(mut net in network_strategy(), seed in 0_u64..50,
                          qx in -150.0_f64..150.0, qw in 1.0_f64..100.0) {
        net.quantize_all(4, seed);
        let space = net.global_space();
        let y = space.interval(1);
        let q = geom::Query::from_boundary_vec(0, &[qx, qx + qw, y.lo() - 1.0, y.hi() + 1.0]);
        for node in net.nodes() {
            let est = node.estimated_query_cardinality(&q);
            let exact = node.exact_query_cardinality(&q);
            prop_assert!(est >= -1e-9 && est <= node.len() as f64 + 1e-9);
            prop_assert!(exact <= node.len());
        }
    }
}
