//! Participant edge nodes.

use cluster::{summary, ClusterSummary, KMeans, KMeansConfig};
use geom::HyperRect;
use linalg::Matrix;
use mlkit::DenseDataset;

use crate::cost::LinkProfile;

/// Identifier of a node within its network (`n_i` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A participant edge node: local dataset, compute capacity and (after
/// [`EdgeNode::quantize`]) its cluster summaries.
///
/// The node's *joint space* is the concatenation of its feature columns
/// and the label column — the d-dimensional space the paper clusters and
/// expresses query boundaries over.
#[derive(Debug, Clone)]
pub struct EdgeNode {
    id: NodeId,
    name: String,
    /// Compute capacity `c_k` (relative training throughput; 1.0 = the
    /// reference node).
    capacity: f64,
    link: LinkProfile,
    data: DenseDataset,
    joint: Matrix,
    kmeans: Option<KMeans>,
    summaries: Vec<ClusterSummary>,
    /// Version counter of the leader-visible summaries. Bumped whenever
    /// they change ([`EdgeNode::quantize`], [`EdgeNode::quantize_private`])
    /// or become stale ([`EdgeNode::absorb`]); selection caches compare it
    /// against the epoch they scored at to invalidate per node.
    summary_epoch: u64,
}

impl EdgeNode {
    /// Creates a node over a local dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `capacity <= 0`.
    pub fn new(id: NodeId, name: impl Into<String>, data: DenseDataset, capacity: f64) -> Self {
        assert!(!data.is_empty(), "edge node with no local data");
        assert!(capacity > 0.0, "capacity must be positive, got {capacity}");
        let joint = build_joint(&data);
        Self {
            id,
            name: name.into(),
            capacity,
            link: LinkProfile::default(),
            data,
            joint,
            kmeans: None,
            summaries: Vec::new(),
            summary_epoch: 0,
        }
    }

    /// Creates a node directly from leader-visible cluster summaries,
    /// skipping raw data and k-means entirely. This is the shared-space
    /// synthetic-fleet path: a million-node fleet for selection-scaling
    /// experiments needs only the `O(K·d)` summaries per node, not a
    /// cloned dataset each — the node carries a single-sample dataset at
    /// the first summary's representative so data-derived accessors
    /// ([`EdgeNode::data_space`], [`EdgeNode::joint_dim`]) stay total.
    ///
    /// Summary-only nodes fully support selection and ranking (which
    /// read nothing but summaries); local training
    /// ([`EdgeNode::cluster_dataset`]) still requires a quantised
    /// dataset and panics as before.
    ///
    /// # Panics
    /// Panics if `summaries` is empty, dimensionalities disagree, the
    /// joint space has fewer than 2 dimensions or `capacity <= 0`.
    pub fn from_summaries(
        id: NodeId,
        name: impl Into<String>,
        capacity: f64,
        summaries: Vec<ClusterSummary>,
    ) -> Self {
        assert!(
            !summaries.is_empty(),
            "summary-only node needs at least one cluster summary"
        );
        assert!(capacity > 0.0, "capacity must be positive, got {capacity}");
        let d = summaries[0].rect.dim();
        assert!(d >= 2, "joint space needs at least one feature plus label");
        for s in &summaries {
            assert_eq!(s.rect.dim(), d, "summary rect dim mismatch");
            assert_eq!(s.representative.len(), d, "representative dim mismatch");
        }
        let rep = &summaries[0].representative;
        let data = DenseDataset::new(
            Matrix::from_rows(&[rep[..d - 1].to_vec()]),
            vec![rep[d - 1]],
        );
        let joint = build_joint(&data);
        Self {
            id,
            name: name.into(),
            capacity,
            link: LinkProfile::default(),
            data,
            joint,
            kmeans: None,
            summaries,
            summary_epoch: 1,
        }
    }

    /// Replaces the node's uplink profile.
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.set_link(link);
        self
    }

    /// In-place variant of [`EdgeNode::with_link`]. Touches *only* the
    /// link: capacity, data and any cached quantisation survive, which
    /// is what keeps [`crate::EdgeNetwork`]'s builder methods
    /// order-independent.
    ///
    /// # Panics
    /// Panics on non-positive bandwidth or negative latency.
    pub fn set_link(&mut self, link: LinkProfile) {
        assert!(
            link.bytes_per_second > 0.0,
            "link bandwidth must be positive"
        );
        assert!(
            link.latency_seconds >= 0.0,
            "link latency cannot be negative"
        );
        self.link = link;
    }

    /// Replaces the node's compute capacity in place, preserving the
    /// link profile, data and any cached quantisation.
    ///
    /// # Panics
    /// Panics if `capacity <= 0`.
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(capacity > 0.0, "capacity must be positive, got {capacity}");
        self.capacity = capacity;
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable name (station name or synthetic label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compute capacity `c_k`.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The node's uplink to the leader.
    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    /// The node's local supervised dataset.
    pub fn data(&self) -> &DenseDataset {
        &self.data
    }

    /// Number of local samples `m`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the node has no samples (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The joint (features + label) matrix the node clusters over.
    pub fn joint(&self) -> &Matrix {
        &self.joint
    }

    /// Dimensionality of the joint space (features + 1).
    pub fn joint_dim(&self) -> usize {
        self.joint.cols()
    }

    /// Bounding box of the node's whole joint data space.
    pub fn data_space(&self) -> HyperRect {
        HyperRect::bounding_points(self.joint.row_iter())
            .expect("non-empty node always has a bounding box")
    }

    /// Quantises the local data space with k-means (§III-C, Eq. 1) and
    /// caches the cluster summaries the node would ship to its leader.
    pub fn quantize(&mut self, k: usize, seed: u64) {
        let model = KMeans::fit(&self.joint, &KMeansConfig::with_k(k, seed));
        self.summaries = summary::summarize(&self.joint, &model);
        self.kmeans = Some(model);
        self.summary_epoch += 1;
    }

    /// Like [`EdgeNode::quantize`] but releases differentially-private
    /// summaries: the leader-visible rectangles and counts carry Laplace
    /// noise at budget ε while the node's own cluster memberships (used
    /// for local training) stay exact.
    pub fn quantize_private(&mut self, k: usize, seed: u64, epsilon: f64) {
        self.quantize(k, seed);
        let budget = cluster::privacy::PrivacyBudget::new(epsilon);
        self.summaries = cluster::privacy::noise_summaries(&self.summaries, &budget, seed ^ 0xD1FF);
        self.summary_epoch += 1;
    }

    /// Whether the node has leader-visible cluster summaries — either
    /// [`EdgeNode::quantize`] has run or the node was built from
    /// summaries directly ([`EdgeNode::from_summaries`]).
    pub fn is_quantized(&self) -> bool {
        self.kmeans.is_some() || !self.summaries.is_empty()
    }

    /// The hull of every cluster summary rectangle — the node's entire
    /// leader-visible footprint in the joint space. This is what the
    /// spatial index stores per node: a query disjoint from this hull on
    /// *every* axis cannot produce a non-zero Eq. 2 overlap with any of
    /// the node's clusters.
    ///
    /// # Panics
    /// Panics if the node is not quantised (same guidance as scoring).
    pub fn summary_bounds(&self) -> HyperRect {
        assert!(
            self.is_quantized(),
            "node {} has no cluster summaries; call EdgeNetwork::quantize_all first",
            self.id
        );
        let mut it = self.summaries.iter().map(|s| &s.rect);
        let first = it.next().expect("quantised node has summaries").clone();
        it.fold(first, |acc, r| acc.hull(r))
    }

    /// Version counter of the leader-visible summaries: 0 at
    /// construction, incremented on every change or staleness event
    /// (quantisation, private release, [`EdgeNode::absorb`]). A selection
    /// cache entry scored at epoch `e` is valid for this node while
    /// `summary_epoch() == e`.
    pub fn summary_epoch(&self) -> u64 {
        self.summary_epoch
    }

    /// The fitted quantisation, if any.
    pub fn kmeans(&self) -> Option<&KMeans> {
        self.kmeans.as_ref()
    }

    /// Cluster summaries (empty before quantisation). This is the node's
    /// entire leader-visible state — `O(K·d)` numbers.
    pub fn summaries(&self) -> &[ClusterSummary] {
        &self.summaries
    }

    /// Number of non-empty clusters `K` the node reports.
    pub fn k(&self) -> usize {
        self.summaries.len()
    }

    /// The members of cluster `cluster_id` as a training dataset.
    ///
    /// # Panics
    /// Panics if the node is not quantised.
    pub fn cluster_dataset(&self, cluster_id: usize) -> DenseDataset {
        let model = self.kmeans.as_ref().expect("node not quantised");
        self.data.select(&model.members(cluster_id))
    }

    /// The whole local dataset as a single training stage (the "without
    /// query-driven selectivity" baseline of Figs. 8–9).
    pub fn full_dataset(&self) -> DenseDataset {
        self.data.clone()
    }

    /// Absorbs newly collected samples into the node's local dataset.
    ///
    /// The cached quantisation becomes stale and is dropped — call
    /// [`EdgeNode::quantize`] (or use mini-batch maintenance at the
    /// application level) before the node participates again.
    ///
    /// # Panics
    /// Panics if the new data's width differs from the local data's.
    pub fn absorb(&mut self, new: &DenseDataset) {
        assert_eq!(new.dim(), self.data.dim(), "absorbed data width mismatch");
        if new.is_empty() {
            return;
        }
        self.data = self.data.concat(new);
        self.joint = build_joint(&self.data);
        self.kmeans = None;
        self.summaries.clear();
        self.summary_epoch += 1;
    }

    /// Estimated number of local samples inside the query region,
    /// computed from the summaries only (what the *leader* can estimate;
    /// see [`cluster::estimate`]).
    ///
    /// # Panics
    /// Panics if the node is not quantised.
    pub fn estimated_query_cardinality(&self, query: &geom::Query) -> f64 {
        assert!(self.is_quantized(), "node not quantised");
        cluster::estimate::node_cardinality(&self.summaries, query)
    }

    /// Exact number of local samples inside the query region (what the
    /// node itself can compute).
    pub fn exact_query_cardinality(&self, query: &geom::Query) -> usize {
        query.filter_indices(self.joint.row_iter()).len()
    }
}

/// Concatenates features and label into the joint clustering matrix.
fn build_joint(data: &DenseDataset) -> Matrix {
    let n = data.len();
    let d = data.dim();
    let mut out = Matrix::zeros(n, d + 1);
    for i in 0..n {
        let row = out.row_mut(i);
        row[..d].copy_from_slice(data.x().row(i));
        row[d] = data.y()[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> EdgeNode {
        let x = Matrix::from_rows(&(0..60).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..60).map(|i| 2.0 * i as f64 + 1.0).collect();
        EdgeNode::new(NodeId(3), "test", DenseDataset::new(x, y), 1.5)
    }

    #[test]
    fn joint_space_concatenates_label() {
        let n = node();
        assert_eq!(n.joint_dim(), 2);
        assert_eq!(n.joint().row(5), &[5.0, 11.0]);
        assert_eq!(n.len(), 60);
        assert_eq!(n.capacity(), 1.5);
        assert_eq!(n.id(), NodeId(3));
        assert_eq!(format!("{}", n.id()), "n3");
    }

    #[test]
    fn data_space_is_the_joint_bounding_box() {
        let n = node();
        let s = n.data_space();
        assert_eq!(s.to_boundary_vec(), vec![0.0, 59.0, 1.0, 119.0]);
    }

    #[test]
    fn quantize_builds_summaries_over_joint_space() {
        let mut n = node();
        assert!(!n.is_quantized());
        n.quantize(5, 7);
        assert!(n.is_quantized());
        assert_eq!(n.k(), 5);
        let covered: usize = n.summaries().iter().map(|s| s.size).sum();
        assert_eq!(covered, 60);
        for s in n.summaries() {
            assert_eq!(s.rect.dim(), 2);
        }
    }

    #[test]
    fn cluster_dataset_returns_members() {
        let mut n = node();
        n.quantize(4, 1);
        let mut total = 0;
        for s in n.summaries().to_vec() {
            let ds = n.cluster_dataset(s.cluster_id);
            assert_eq!(ds.len(), s.size);
            total += ds.len();
            // Every member's joint point lies inside the summary rect.
            for (row, &y) in ds.x().row_iter().zip(ds.y()) {
                let joint = [row[0], y];
                assert!(s.rect.contains_point(&joint));
            }
        }
        assert_eq!(total, 60);
    }

    #[test]
    #[should_panic(expected = "not quantised")]
    fn cluster_dataset_requires_quantize() {
        node().cluster_dataset(0);
    }

    #[test]
    #[should_panic(expected = "no local data")]
    fn empty_node_rejected() {
        EdgeNode::new(NodeId(0), "empty", DenseDataset::empty(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn nonpositive_capacity_rejected() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        EdgeNode::new(NodeId(0), "bad", DenseDataset::new(x, vec![1.0]), 0.0);
    }

    #[test]
    fn quantize_private_noises_leader_visible_state_only() {
        let mut exact = node();
        exact.quantize(4, 2);
        let mut private = node();
        private.quantize_private(4, 2, 0.1);
        assert_eq!(exact.k(), private.k());
        // Leader-visible rectangles differ...
        let moved = exact
            .summaries()
            .iter()
            .zip(private.summaries())
            .any(|(a, b)| a.rect != b.rect || a.size != b.size);
        assert!(moved, "eps=0.1 must perturb the released summaries");
        // ...but local training data (cluster memberships) is exact.
        for s in exact.summaries().to_vec() {
            assert_eq!(
                exact.cluster_dataset(s.cluster_id),
                private.cluster_dataset(s.cluster_id)
            );
        }
    }

    #[test]
    fn absorb_extends_data_and_invalidates_summaries() {
        let mut n = node();
        n.quantize(3, 1);
        assert!(n.is_quantized());
        let extra = DenseDataset::new(
            Matrix::from_rows(&[vec![100.0], vec![101.0]]),
            vec![201.0, 203.0],
        );
        n.absorb(&extra);
        assert_eq!(n.len(), 62);
        assert!(!n.is_quantized(), "stale quantisation must be dropped");
        assert_eq!(n.joint().row(61), &[101.0, 203.0]);
        // Re-quantising covers the new region too.
        n.quantize(3, 1);
        assert!(n.data_space().contains_point(&[101.0, 203.0]));
    }

    #[test]
    fn absorb_empty_is_a_noop() {
        let mut n = node();
        n.quantize(3, 1);
        n.absorb(&DenseDataset::empty(1));
        assert!(n.is_quantized());
        assert_eq!(n.len(), 60);
    }

    /// The summary epoch must move on every event that changes (or
    /// stales) the leader-visible summaries, and only on those.
    #[test]
    fn summary_epoch_tracks_summary_changes() {
        let mut n = node();
        assert_eq!(n.summary_epoch(), 0);
        n.quantize(3, 1);
        assert_eq!(n.summary_epoch(), 1);
        // Empty absorb changes nothing.
        n.absorb(&DenseDataset::empty(1));
        assert_eq!(n.summary_epoch(), 1);
        // Link/capacity tweaks are invisible to the leader's summaries.
        n.set_capacity(2.0);
        n.set_link(LinkProfile::default());
        assert_eq!(n.summary_epoch(), 1);
        let extra = DenseDataset::new(Matrix::from_rows(&[vec![100.0]]), vec![201.0]);
        n.absorb(&extra);
        assert_eq!(n.summary_epoch(), 2, "absorb stales the summaries");
        n.quantize(3, 1);
        assert_eq!(n.summary_epoch(), 3);
        let before = n.summary_epoch();
        n.quantize_private(3, 1, 0.5);
        assert!(
            n.summary_epoch() > before,
            "private release replaces the summaries"
        );
    }

    #[test]
    fn summary_bounds_hull_covers_every_cluster_rect() {
        let mut n = node();
        n.quantize(4, 2);
        let hull = n.summary_bounds();
        for s in n.summaries() {
            for d in 0..s.rect.dim() {
                assert!(hull.interval(d).lo() <= s.rect.interval(d).lo());
                assert!(hull.interval(d).hi() >= s.rect.interval(d).hi());
            }
        }
        // The hull is tight: it equals the hull of the member rects.
        let mut it = n.summaries().iter().map(|s| s.rect.clone());
        let first = it.next().unwrap();
        assert_eq!(hull, it.fold(first, |acc, r| acc.hull(&r)));
    }

    #[test]
    #[should_panic(expected = "call EdgeNetwork::quantize_all first")]
    fn summary_bounds_requires_quantisation() {
        node().summary_bounds();
    }

    #[test]
    fn from_summaries_builds_a_selectable_node() {
        let summaries = vec![
            ClusterSummary {
                cluster_id: 0,
                size: 40,
                representative: vec![2.0, 3.0],
                rect: HyperRect::from_boundary_vec(&[1.0, 4.0, 2.0, 5.0]),
            },
            ClusterSummary {
                cluster_id: 1,
                size: 25,
                representative: vec![8.0, 9.0],
                rect: HyperRect::from_boundary_vec(&[7.0, 9.0, 8.0, 10.0]),
            },
        ];
        let n = EdgeNode::from_summaries(NodeId(7), "synthetic", 1.5, summaries);
        assert!(n.is_quantized(), "summary-only nodes count as quantised");
        assert_eq!(n.k(), 2);
        assert_eq!(n.summary_epoch(), 1);
        assert_eq!(n.joint_dim(), 2);
        assert_eq!(n.len(), 1, "carries only the representative sample");
        assert_eq!(
            n.summary_bounds().to_boundary_vec(),
            vec![1.0, 9.0, 2.0, 10.0]
        );
        // Absorbing real data stales the synthetic summaries like any
        // other summary-carrying node.
        let mut n = n;
        n.absorb(&DenseDataset::new(
            Matrix::from_rows(&[vec![0.0]]),
            vec![0.0],
        ));
        assert!(!n.is_quantized());
        assert_eq!(n.summary_epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one cluster summary")]
    fn from_summaries_rejects_empty() {
        EdgeNode::from_summaries(NodeId(0), "x", 1.0, vec![]);
    }

    #[test]
    fn cardinality_estimate_tracks_exact_count() {
        let mut n = node();
        n.quantize(4, 2);
        // Query over the lower half of the node's joint space (y = 2x+1).
        let q = geom::Query::from_boundary_vec(0, &[0.0, 30.0, 0.0, 61.0]);
        let exact = n.exact_query_cardinality(&q);
        let est = n.estimated_query_cardinality(&q);
        assert_eq!(exact, 31);
        assert!(
            (est - exact as f64).abs() < 0.4 * exact as f64,
            "estimate {est} vs exact {exact}"
        );
    }
}
