//! Edge-computing environment simulation.
//!
//! Models the paper's §III-A setting: a set of participant edge nodes,
//! each with a local dataset `D_k`, a compute capacity `c_k` and a
//! k-means quantisation of its *joint* data space (features + label - the
//! space the paper's Figs. 5/6 draw query rectangles over), plus a leader
//! that only ever sees the nodes' cluster summaries. A deterministic cost
//! model converts work (samples trained, bytes shipped) into simulated
//! time so the Fig. 8 "training time" comparison is reproducible on any
//! machine; wall-clock timing is captured alongside it.
//!
//! * [`node`] - [`node::EdgeNode`]: local data, quantisation, summaries.
//! * [`network`] - [`network::EdgeNetwork`]: the node population + global
//!   data-space hull.
//! * [`cost`] - the deterministic compute/communication cost model.
//! * [`accounting`] - per-query accounting (samples used, time, bytes).

pub mod accounting;
pub mod cost;
pub mod network;
pub mod node;
pub mod scaling;

pub use accounting::{QueryAccounting, StreamAccounting};
pub use cost::{CostModel, LinkProfile};
pub use network::EdgeNetwork;
pub use node::{EdgeNode, NodeId};
pub use scaling::SpaceScaler;
