//! Global-space feature scaling.
//!
//! Gradient training on raw air-quality magnitudes (CO reaches thousands)
//! diverges at the paper's learning rates, so — like the Keras pipelines
//! the paper used — data is normalised before training. In a federation
//! the only scaling statistics *every* party can agree on without moving
//! data are the global data-space bounds, which the leader already knows
//! from the nodes' cluster summaries. [`SpaceScaler`] min-max scales the
//! joint space onto `[0, 1]` per dimension and is broadcast with the
//! initial model; losses reported by different nodes are then directly
//! comparable.

use geom::HyperRect;
use linalg::Matrix;
use mlkit::DenseDataset;

/// Min-max scaler derived from a joint-space bounding rectangle
/// (features first, label last — the [`crate::EdgeNode::joint`] layout).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpaceScaler {
    bounds: Vec<(f64, f64)>,
}

impl SpaceScaler {
    /// Builds a scaler from a joint-space rectangle.
    pub fn from_space(space: &HyperRect) -> Self {
        Self {
            bounds: space
                .intervals()
                .iter()
                .map(|iv| (iv.lo(), iv.hi()))
                .collect(),
        }
    }

    /// Joint dimensionality (features + label).
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    fn fwd(&self, d: usize, v: f64) -> f64 {
        let (lo, hi) = self.bounds[d];
        let span = hi - lo;
        if span > 0.0 {
            (v - lo) / span
        } else {
            0.0
        }
    }

    fn back(&self, d: usize, v: f64) -> f64 {
        let (lo, hi) = self.bounds[d];
        let span = hi - lo;
        if span > 0.0 {
            v * span + lo
        } else {
            lo
        }
    }

    /// Scales a supervised dataset (features = dims `0..d-1`, label =
    /// dim `d-1`) onto the unit cube.
    ///
    /// # Panics
    /// Panics if `data.dim() + 1 != self.dim()`.
    pub fn transform_dataset(&self, data: &DenseDataset) -> DenseDataset {
        let d = data.dim();
        assert_eq!(
            d + 1,
            self.dim(),
            "dataset width {} != scaler joint dim {}",
            d + 1,
            self.dim()
        );
        let mut x = Matrix::zeros(data.len(), d);
        for (i, row) in data.x().row_iter().enumerate() {
            let out = x.row_mut(i);
            for (j, &v) in row.iter().enumerate() {
                out[j] = self.fwd(j, v);
            }
        }
        let y: Vec<f64> = data.y().iter().map(|&v| self.fwd(d, v)).collect();
        DenseDataset::new(x, y)
    }

    /// Scales a label value back to the original units.
    pub fn inverse_label(&self, v: f64) -> f64 {
        self.back(self.dim() - 1, v)
    }

    /// Scales a label value into the unit space.
    pub fn scale_label(&self, v: f64) -> f64 {
        self.fwd(self.dim() - 1, v)
    }

    /// Converts a *scaled-space* MSE back to original label units
    /// (multiplies by the squared label span), so losses can be reported
    /// in the dataset's natural units.
    pub fn unscale_mse(&self, scaled_mse: f64) -> f64 {
        let (lo, hi) = self.bounds[self.dim() - 1];
        let span = hi - lo;
        scaled_mse * span * span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::HyperRect;

    fn scaler() -> SpaceScaler {
        SpaceScaler::from_space(&HyperRect::from_boundary_vec(&[0.0, 10.0, 100.0, 300.0]))
    }

    fn toy() -> DenseDataset {
        DenseDataset::new(
            Matrix::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]),
            vec![100.0, 200.0, 300.0],
        )
    }

    #[test]
    fn transform_maps_bounds_to_unit_interval() {
        let t = scaler().transform_dataset(&toy());
        assert_eq!(t.x().col(0), vec![0.0, 0.5, 1.0]);
        assert_eq!(t.y(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn label_round_trip() {
        let s = scaler();
        for v in [100.0, 150.0, 299.0] {
            assert!((s.inverse_label(s.scale_label(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn unscale_mse_applies_squared_span() {
        let s = scaler();
        // Label span is 200, so scaled MSE of 0.01 is 0.01 * 200^2 = 400.
        assert!((s.unscale_mse(0.01) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_dimension_is_safe() {
        let s = SpaceScaler::from_space(&HyperRect::from_boundary_vec(&[5.0, 5.0, 0.0, 1.0]));
        let ds = DenseDataset::new(Matrix::from_rows(&[vec![5.0]]), vec![0.5]);
        let t = s.transform_dataset(&ds);
        assert_eq!(t.x()[(0, 0)], 0.0);
        assert_eq!(s.unscale_mse(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "scaler joint dim")]
    fn wrong_width_rejected() {
        let ds = DenseDataset::new(Matrix::from_rows(&[vec![1.0, 2.0]]), vec![0.0]);
        scaler().transform_dataset(&ds);
    }
}
