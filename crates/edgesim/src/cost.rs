//! Deterministic compute/communication cost model.
//!
//! The paper times training on the authors' hardware; absolute seconds are
//! not reproducible, but the *relative* claim of Fig. 8 — query-driven
//! data selectivity cuts training time in proportion to the data it skips
//! — only needs a cost model that is monotone in work done. The model
//! here charges time per sample-visit (scaled by the node's capacity) and
//! per byte on the wire (plus a per-message latency), which is exactly
//! how the dominant costs of on-node SGD and model shipping scale.

/// A node's uplink to the leader.
///
/// The default cost model assumes one shared link profile; heterogeneous
/// deployments attach a [`LinkProfile`] per node
/// ([`crate::EdgeNetwork::with_random_links`]) and the federation charges
/// each participant's transfers at its own link speed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkProfile {
    /// Uplink/downlink bandwidth in bytes/second.
    pub bytes_per_second: f64,
    /// One-way latency in seconds.
    pub latency_seconds: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        Self {
            bytes_per_second: 10e6,
            latency_seconds: 0.02,
        }
    }
}

impl LinkProfile {
    /// Seconds to ship `bytes` one way over this link.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.latency_seconds + bytes as f64 / self.bytes_per_second
    }

    /// Per-link fault hook: the extra simulated seconds charged for
    /// `failed_attempts` lost transfers of `bytes` each, retried under
    /// `retry`'s capped exponential backoff. Each lost attempt pays the
    /// full wire time (the bytes were sent — and lost) plus the backoff
    /// wait before the next try. Zero failed attempts cost exactly
    /// nothing, keeping fault-free accounting bit-identical.
    pub fn retry_penalty_seconds(
        &self,
        bytes: usize,
        failed_attempts: usize,
        retry: &faults::RetryPolicy,
    ) -> f64 {
        (1..=failed_attempts)
            .map(|k| self.transfer_seconds(bytes) + retry.backoff_before(k))
            .sum()
    }
}

/// Cost-model parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Seconds one sample-visit (one sample in one epoch) costs on a
    /// capacity-1.0 node.
    pub seconds_per_sample_visit: f64,
    /// Wire bandwidth in bytes/second between any node and the leader.
    pub bytes_per_second: f64,
    /// One-way message latency in seconds.
    pub latency_seconds: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // ~25 µs per sample-visit (a small Keras model on a weak edge
        // CPU), 10 MB/s uplink, 20 ms latency.
        Self {
            seconds_per_sample_visit: 25e-6,
            bytes_per_second: 10e6,
            latency_seconds: 0.02,
        }
    }
}

impl CostModel {
    /// Simulated time for a node of `capacity` to perform
    /// `sample_visits` (= Σ samples × epochs) of training.
    ///
    /// # Panics
    /// Panics if `capacity <= 0`.
    pub fn training_seconds(&self, sample_visits: usize, capacity: f64) -> f64 {
        assert!(capacity > 0.0, "capacity must be positive");
        sample_visits as f64 * self.seconds_per_sample_visit / capacity
    }

    /// Simulated time to ship `bytes` one way.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.latency_seconds + bytes as f64 / self.bytes_per_second
    }

    /// Shared-link variant of [`LinkProfile::retry_penalty_seconds`]:
    /// the extra seconds `failed_attempts` lost transfers cost on the
    /// default (network-wide) link profile.
    pub fn retry_penalty_seconds(
        &self,
        bytes: usize,
        failed_attempts: usize,
        retry: &faults::RetryPolicy,
    ) -> f64 {
        (1..=failed_attempts)
            .map(|k| self.transfer_seconds(bytes) + retry.backoff_before(k))
            .sum()
    }

    /// Round time when participants work in parallel and the leader waits
    /// for the slowest: `max_i(train_i + transfer_i)`.
    ///
    /// Returns 0 for an empty slice.
    pub fn parallel_round_seconds(&self, per_node: &[(usize, f64, usize)]) -> f64 {
        per_node
            .iter()
            .map(|&(visits, capacity, bytes)| {
                self.training_seconds(visits, capacity) + self.transfer_seconds(bytes)
            })
            .fold(0.0, f64::max)
    }

    /// Total training time summed over participants:
    /// `sum_i(train_i + transfer_i)`. This is the "time to train the
    /// models" view of the paper's Fig. 8 (work done, not wall time).
    pub fn sequential_round_seconds(&self, per_node: &[(usize, f64, usize)]) -> f64 {
        per_node
            .iter()
            .map(|&(visits, capacity, bytes)| {
                self.training_seconds(visits, capacity) + self.transfer_seconds(bytes)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_time_scales_with_work_and_capacity() {
        let m = CostModel::default();
        let t1 = m.training_seconds(1000, 1.0);
        let t2 = m.training_seconds(2000, 1.0);
        let t3 = m.training_seconds(1000, 2.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        assert!((t3 - 0.5 * t1).abs() < 1e-12);
        assert_eq!(m.training_seconds(0, 1.0), 0.0);
    }

    #[test]
    fn transfer_includes_latency() {
        let m = CostModel {
            seconds_per_sample_visit: 1.0,
            bytes_per_second: 100.0,
            latency_seconds: 0.5,
        };
        assert!((m.transfer_seconds(100) - 1.5).abs() < 1e-12);
        assert!((m.transfer_seconds(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_round_is_the_slowest_node() {
        let m = CostModel {
            seconds_per_sample_visit: 1.0,
            bytes_per_second: 1e9,
            latency_seconds: 0.0,
        };
        let t = m.parallel_round_seconds(&[(10, 1.0, 0), (10, 0.5, 0), (5, 1.0, 0)]);
        assert!((t - 20.0).abs() < 1e-9);
        assert_eq!(m.parallel_round_seconds(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CostModel::default().training_seconds(10, 0.0);
    }

    #[test]
    fn retry_penalty_is_zero_for_no_failures() {
        let retry = faults::RetryPolicy::default();
        assert_eq!(
            CostModel::default().retry_penalty_seconds(1000, 0, &retry),
            0.0
        );
        assert_eq!(
            LinkProfile::default().retry_penalty_seconds(1000, 0, &retry),
            0.0
        );
    }

    #[test]
    fn retry_penalty_sums_wire_time_and_backoff() {
        let link = LinkProfile {
            bytes_per_second: 100.0,
            latency_seconds: 0.5,
        };
        let retry = faults::RetryPolicy {
            max_attempts: 4,
            base_backoff_seconds: 1.0,
            backoff_multiplier: 2.0,
            max_backoff_seconds: 1.5,
        };
        // One lost 100-byte transfer: wire time 1.5 s + backoff_before(1) = 1.0 s.
        let one = link.retry_penalty_seconds(100, 1, &retry);
        assert!((one - 2.5).abs() < 1e-12);
        // Two losses: + wire 1.5 + backoff_before(2) capped at 1.5.
        let two = link.retry_penalty_seconds(100, 2, &retry);
        assert!((two - (2.5 + 3.0)).abs() < 1e-12);
        // Shared-link CostModel variant agrees with an equivalent profile.
        let m = CostModel {
            seconds_per_sample_visit: 1.0,
            bytes_per_second: 100.0,
            latency_seconds: 0.5,
        };
        assert!((m.retry_penalty_seconds(100, 2, &retry) - two).abs() < 1e-12);
    }
}
