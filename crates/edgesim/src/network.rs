//! The node population the leader coordinates.

use geom::HyperRect;
use mlkit::DenseDataset;

use linalg::rng as lrng;
use linalg::rng::Rng;

use crate::cost::{CostModel, LinkProfile};
use crate::node::{EdgeNode, NodeId};

/// An edge network: the participant population plus the cost model.
///
/// The leader itself is stateless in the paper's protocol (it only ranks
/// summaries and averages models), so the network exposes node state and
/// the distributed-learning crate implements the leader logic on top.
#[derive(Debug, Clone)]
pub struct EdgeNetwork {
    nodes: Vec<EdgeNode>,
    cost: CostModel,
    /// Version counter of the node *membership* (which nodes exist).
    /// Bumped by [`EdgeNetwork::add_node`]; consumers holding
    /// membership-shaped state (e.g. the selection index, built over one
    /// rectangle per node) compare it against the epoch they built at.
    /// Per-node summary changes move the nodes' own
    /// [`EdgeNode::summary_epoch`] instead.
    membership_epoch: u64,
    /// Conservative version counter for node *state*: bumped whenever a
    /// `&mut EdgeNode` is handed out ([`EdgeNetwork::node_mut`]) or a
    /// bulk summary mutation runs (`quantize_all*`). While this counter
    /// is unchanged, no node can have moved its summary epoch, so a
    /// consumer holding cached per-node epochs (the selection index at
    /// fleet scale) may skip the `O(N)` drift walk entirely. A bump does
    /// *not* imply a change — the exact per-node comparison stays the
    /// arbiter; this only gates when that walk is worth paying.
    mutation_epoch: u64,
}

impl EdgeNetwork {
    /// Builds a network from named datasets with unit capacity everywhere.
    ///
    /// # Panics
    /// Panics if `datasets` is empty.
    pub fn from_datasets(datasets: Vec<(String, DenseDataset)>) -> Self {
        assert!(!datasets.is_empty(), "network needs at least one node");
        let nodes = datasets
            .into_iter()
            .enumerate()
            .map(|(i, (name, data))| EdgeNode::new(NodeId(i), name, data, 1.0))
            .collect();
        Self {
            nodes,
            cost: CostModel::default(),
            membership_epoch: 0,
            mutation_epoch: 0,
        }
    }

    /// Builds a network from pre-constructed nodes (e.g. summary-only
    /// synthetic fleets via [`EdgeNode::from_summaries`]).
    ///
    /// # Panics
    /// Panics if `nodes` is empty or ids are not the sequential
    /// `0..nodes.len()` (the id-is-index invariant every lookup relies
    /// on).
    pub fn from_nodes(nodes: Vec<EdgeNode>) -> Self {
        assert!(!nodes.is_empty(), "network needs at least one node");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId(i), "node ids must be sequential");
        }
        Self {
            nodes,
            cost: CostModel::default(),
            membership_epoch: 0,
            mutation_epoch: 0,
        }
    }

    /// Appends a node (it gets the next sequential id) and bumps the
    /// membership epoch, invalidating any membership-shaped state built
    /// over the previous population. Removal is deliberately absent:
    /// ids index into the node vector everywhere, so departed nodes are
    /// modelled by fault plans, not by compacting the population.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        data: DenseDataset,
        capacity: f64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(EdgeNode::new(id, name, data, capacity));
        self.membership_epoch += 1;
        id
    }

    /// The membership version counter (see the field docs).
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// The conservative node-state version counter (see the field
    /// docs): unchanged means no node's summary epoch can have moved
    /// since the last observed value.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// Assigns heterogeneous capacities drawn uniformly from
    /// `[lo, hi]` (deterministic in `seed`).
    ///
    /// Mutates capacities in place: link profiles set by
    /// [`EdgeNetwork::with_random_links`] and any cached quantisation
    /// survive, so the builder methods compose in either order.
    ///
    /// # Panics
    /// Panics if `lo <= 0` or `lo > hi`.
    pub fn with_random_capacities(mut self, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(lo > 0.0 && lo <= hi, "capacity range ({lo}, {hi}) invalid");
        let mut rng = lrng::rng_for(seed, 0xCAFE);
        for node in &mut self.nodes {
            node.set_capacity(rng.gen_range(lo..=hi));
        }
        self
    }

    /// Draws heterogeneous per-node uplinks: bandwidth uniform in
    /// `[bw_lo, bw_hi]` bytes/s and latency uniform in `[lat_lo, lat_hi]`
    /// seconds (deterministic in `seed`).
    ///
    /// Mutates links in place: capacities and any cached quantisation
    /// survive, so the builder methods compose in either order.
    ///
    /// # Panics
    /// Panics on empty or inverted ranges.
    pub fn with_random_links(
        mut self,
        (bw_lo, bw_hi): (f64, f64),
        (lat_lo, lat_hi): (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(
            bw_lo > 0.0 && bw_lo <= bw_hi,
            "bandwidth range ({bw_lo}, {bw_hi}) invalid"
        );
        assert!(
            lat_lo >= 0.0 && lat_lo <= lat_hi,
            "latency range ({lat_lo}, {lat_hi}) invalid"
        );
        let mut rng = lrng::rng_for(seed, 0x11_4B);
        for node in &mut self.nodes {
            node.set_link(LinkProfile {
                bytes_per_second: rng.gen_range(bw_lo..=bw_hi),
                latency_seconds: rng.gen_range(lat_lo..=lat_hi),
            });
        }
        self
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Quantises every node (§III-C; the paper uses `k = 5` everywhere
    /// "to avoid biases"). Each node derives its own k-means seed.
    pub fn quantize_all(&mut self, k: usize, seed: u64) {
        let _span = telemetry::span!("qens_edgesim_quantize_all_nanos");
        let _trace = telemetry::trace::span_args(
            "edgesim.quantize_all",
            &[("k", k as u64), ("nodes", self.nodes.len() as u64)],
        );
        for node in &mut self.nodes {
            node.quantize(k, lrng::derive_seed(seed, node.id().0 as u64));
        }
        self.mutation_epoch += 1;
        telemetry::counter!("qens_edgesim_nodes_quantized_total").add(self.nodes.len() as u64);
    }

    /// Like [`EdgeNetwork::quantize_all`] but every node releases
    /// differentially-private summaries at budget ε
    /// (see [`cluster::privacy`]).
    pub fn quantize_all_private(&mut self, k: usize, seed: u64, epsilon: f64) {
        for node in &mut self.nodes {
            node.quantize_private(k, lrng::derive_seed(seed, node.id().0 as u64), epsilon);
        }
        self.mutation_epoch += 1;
    }

    /// All nodes.
    pub fn nodes(&self) -> &[EdgeNode] {
        &self.nodes
    }

    /// One node by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &EdgeNode {
        &self.nodes[id.0]
    }

    /// Mutable access to one node (e.g. to pin a capacity or link
    /// profile for a targeted experiment). Bumps the (conservative)
    /// mutation epoch: the borrow *may* change the node's summaries,
    /// and epoch-gated consumers re-verify exactly on the next probe.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut EdgeNode {
        self.mutation_epoch += 1;
        &mut self.nodes[id.0]
    }

    /// Number of nodes `N`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no nodes (never post-construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Total samples across the network (the Fig. 9 denominator).
    pub fn total_samples(&self) -> usize {
        self.nodes.iter().map(EdgeNode::len).sum()
    }

    /// The hull of every node's joint data space — the "whole data space"
    /// the paper's query workload is generated over.
    pub fn global_space(&self) -> HyperRect {
        let mut it = self.nodes.iter().map(EdgeNode::data_space);
        let first = it.next().expect("network is non-empty");
        it.fold(first, |acc, s| acc.hull(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn dataset(offset: f64, n: usize) -> DenseDataset {
        let x = Matrix::from_rows(&(0..n).map(|i| vec![offset + i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..n).map(|i| offset + i as f64 * 2.0).collect();
        DenseDataset::new(x, y)
    }

    fn network() -> EdgeNetwork {
        EdgeNetwork::from_datasets(vec![
            ("a".into(), dataset(0.0, 30)),
            ("b".into(), dataset(100.0, 20)),
            ("c".into(), dataset(-50.0, 10)),
        ])
    }

    #[test]
    fn construction_assigns_sequential_ids() {
        let net = network();
        assert_eq!(net.len(), 3);
        for (i, n) in net.nodes().iter().enumerate() {
            assert_eq!(n.id(), NodeId(i));
            assert_eq!(n.capacity(), 1.0);
        }
        assert_eq!(net.node(NodeId(1)).name(), "b");
        assert_eq!(net.total_samples(), 60);
    }

    #[test]
    fn global_space_covers_every_node() {
        let net = network();
        let space = net.global_space();
        for node in net.nodes() {
            for row in node.joint().row_iter() {
                assert!(space.contains_point(row));
            }
        }
        // x spans -50..129, y spans -50..138.
        assert_eq!(space.interval(0).lo(), -50.0);
        assert_eq!(space.interval(0).hi(), 119.0);
    }

    #[test]
    fn quantize_all_touches_every_node() {
        let mut net = network();
        net.quantize_all(3, 9);
        for n in net.nodes() {
            assert!(n.is_quantized());
            assert!(n.k() >= 1 && n.k() <= 3);
        }
    }

    #[test]
    fn quantize_all_uses_distinct_per_node_seeds() {
        let mut net = EdgeNetwork::from_datasets(vec![
            ("a".into(), dataset(0.0, 30)),
            ("b".into(), dataset(0.0, 30)), // identical data
        ]);
        net.quantize_all(3, 1);
        // Identical data with distinct seeds still yields valid summaries.
        assert_eq!(net.node(NodeId(0)).k(), net.node(NodeId(1)).k());
    }

    #[test]
    fn random_capacities_are_in_range_and_deterministic() {
        let a = network().with_random_capacities(0.5, 2.0, 3);
        let b = network().with_random_capacities(0.5, 2.0, 3);
        for (x, y) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(x.capacity(), y.capacity());
            assert!((0.5..=2.0).contains(&x.capacity()));
        }
        // Capacities actually vary.
        let caps: Vec<f64> = a.nodes().iter().map(|n| n.capacity()).collect();
        assert!(caps.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_links_are_in_range_and_deterministic() {
        let a = network().with_random_links((1e6, 20e6), (0.005, 0.1), 7);
        let b = network().with_random_links((1e6, 20e6), (0.005, 0.1), 7);
        for (x, y) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(x.link(), y.link());
            assert!((1e6..=20e6).contains(&x.link().bytes_per_second));
            assert!((0.005..=0.1).contains(&x.link().latency_seconds));
        }
        let bws: Vec<f64> = a
            .nodes()
            .iter()
            .map(|n| n.link().bytes_per_second)
            .collect();
        assert!(bws.windows(2).any(|w| w[0] != w[1]), "links did not vary");
    }

    #[test]
    fn random_links_preserve_capacities() {
        let net = network()
            .with_random_capacities(0.5, 2.0, 3)
            .with_random_links((1e6, 20e6), (0.0, 0.1), 3);
        assert!(net.nodes().iter().any(|n| n.capacity() != 1.0));
    }

    #[test]
    fn builder_methods_are_order_independent() {
        // Regression: with_random_capacities used to rebuild nodes via
        // EdgeNode::new, silently resetting link profiles (and dropping
        // quantisation) assigned earlier in the chain.
        let links_first = network()
            .with_random_links((1e6, 20e6), (0.005, 0.1), 7)
            .with_random_capacities(0.5, 2.0, 3);
        let caps_first = network()
            .with_random_capacities(0.5, 2.0, 3)
            .with_random_links((1e6, 20e6), (0.005, 0.1), 7);
        for (a, b) in links_first.nodes().iter().zip(caps_first.nodes()) {
            assert_eq!(a.link(), b.link(), "links must survive capacity draw");
            assert_eq!(a.capacity(), b.capacity());
        }
        // And the draws actually changed both attributes.
        assert!(links_first.nodes().iter().any(|n| n.capacity() != 1.0));
        assert!(links_first
            .nodes()
            .iter()
            .any(|n| *n.link() != LinkProfile::default()));
    }

    #[test]
    fn capacity_and_link_draws_preserve_quantisation() {
        let mut net = network();
        net.quantize_all(3, 9);
        let summaries: Vec<_> = net.nodes().iter().map(|n| n.summaries().to_vec()).collect();
        let net =
            net.with_random_capacities(0.5, 2.0, 3)
                .with_random_links((1e6, 20e6), (0.005, 0.1), 7);
        for (node, before) in net.nodes().iter().zip(&summaries) {
            assert!(node.is_quantized(), "quantisation must survive the draws");
            assert_eq!(node.summaries(), &before[..]);
        }
    }

    #[test]
    fn link_transfer_time_includes_latency_and_bandwidth() {
        let link = LinkProfile {
            bytes_per_second: 1000.0,
            latency_seconds: 0.5,
        };
        assert!((link.transfer_seconds(2000) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_network_rejected() {
        EdgeNetwork::from_datasets(vec![]);
    }

    #[test]
    fn add_node_appends_and_bumps_membership_epoch() {
        let mut net = network();
        assert_eq!(net.membership_epoch(), 0);
        let id = net.add_node("d", dataset(500.0, 12), 2.0);
        assert_eq!(id, NodeId(3));
        assert_eq!(net.len(), 4);
        assert_eq!(net.membership_epoch(), 1);
        assert_eq!(net.node(id).capacity(), 2.0);
        // Summary changes on existing nodes do not move the membership
        // epoch — they move the node's own summary epoch.
        net.node_mut(NodeId(0)).quantize(2, 1);
        assert_eq!(net.membership_epoch(), 1);
    }

    #[test]
    fn from_nodes_keeps_prebuilt_nodes() {
        let nodes = vec![
            EdgeNode::new(NodeId(0), "a", dataset(0.0, 10), 1.0),
            EdgeNode::new(NodeId(1), "b", dataset(5.0, 10), 1.5),
        ];
        let net = EdgeNetwork::from_nodes(nodes);
        assert_eq!(net.len(), 2);
        assert_eq!(net.node(NodeId(1)).capacity(), 1.5);
        assert_eq!(net.membership_epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn from_nodes_rejects_gapped_ids() {
        EdgeNetwork::from_nodes(vec![EdgeNode::new(NodeId(3), "a", dataset(0.0, 5), 1.0)]);
    }
}
