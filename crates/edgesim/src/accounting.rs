//! Per-query resource accounting.
//!
//! Fig. 8 (training time with/without query-driven selectivity) and
//! Fig. 9 (fraction of data each query needed) are pure accounting
//! outputs; this module is the ledger both are read from.

/// What one query cost across the whole federation.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueryAccounting {
    /// Query id.
    pub query_id: u64,
    /// Nodes selected for the query.
    pub nodes_selected: usize,
    /// Samples actually used for training (over all selected nodes).
    pub samples_used: usize,
    /// Total samples available across *all* nodes (the Fig. 9
    /// denominator).
    pub samples_total: usize,
    /// Sample-visits performed (samples × epochs, summed over nodes).
    pub sample_visits: usize,
    /// Simulated wall time of the training round (leader waits for the
    /// slowest participant), in seconds.
    pub sim_seconds: f64,
    /// Simulated *total* training seconds summed over participants (the
    /// single-machine / sequential view the paper's Fig. 8 plots).
    pub sim_seconds_total: f64,
    /// Measured wall-clock seconds spent in local training.
    pub wall_seconds: f64,
    /// Bytes shipped (summaries + model weights).
    pub bytes_transferred: usize,
    /// Model-transfer attempts lost on the wire and retried (each lost
    /// attempt is one retry, whether or not the transfer eventually
    /// succeeded).
    pub retries: usize,
    /// Participants that never reported in some round: transient
    /// dropouts, crashes, exhausted transfer budgets and deadline
    /// misses all count once per node-round.
    pub dropped_participants: usize,
    /// Ranked standby nodes promoted to cover failed participants.
    pub replacements: usize,
    /// Rounds a participant's (completed) work was discarded because it
    /// finished past the straggler deadline.
    pub deadline_misses: usize,
}

impl QueryAccounting {
    /// Fraction of the network's data this query trained on (Fig. 9's
    /// y-axis). Zero when the network is empty.
    pub fn data_fraction(&self) -> f64 {
        if self.samples_total == 0 {
            0.0
        } else {
            self.samples_used as f64 / self.samples_total as f64
        }
    }

    /// Routes this ledger into the global telemetry registry, so Fig. 8/9
    /// quantities are visible through the same export path as the span
    /// timers. Counter totals therefore *must* agree with the summed
    /// accounting rows — `tests/telemetry_pipeline.rs` asserts exactly
    /// that. No-op while telemetry is disabled.
    pub fn commit_telemetry(&self) {
        // One deterministic point event per committed ledger — the
        // leader commits serially, so this records on the logical clock.
        telemetry::trace::instant(
            "edgesim.accounting",
            &[
                ("nodes", self.nodes_selected as u64),
                ("samples", self.samples_used as u64),
                ("bytes", self.bytes_transferred as u64),
                ("retries", self.retries as u64),
            ],
        );
        telemetry::counter!("qens_edgesim_queries_total").incr();
        telemetry::counter!("qens_edgesim_nodes_selected_total").add(self.nodes_selected as u64);
        telemetry::counter!("qens_edgesim_samples_used_total").add(self.samples_used as u64);
        telemetry::counter!("qens_edgesim_sample_visits_total").add(self.sample_visits as u64);
        telemetry::counter!("qens_edgesim_bytes_transferred_total")
            .add(self.bytes_transferred as u64);
        // Seconds are f64; gauges accumulate them exactly (one writer at
        // a time: the leader commits once per completed query).
        telemetry::gauge!("qens_edgesim_wall_seconds").add(self.wall_seconds);
        telemetry::gauge!("qens_edgesim_sim_seconds").add(self.sim_seconds);
        // Distribution views in micro-units (histograms store u64).
        telemetry::histogram!("qens_edgesim_query_sim_micros")
            .record((self.sim_seconds * 1e6) as u64);
        telemetry::histogram!("qens_edgesim_query_wall_micros")
            .record((self.wall_seconds * 1e6) as u64);
        telemetry::histogram!("qens_edgesim_query_bytes").record(self.bytes_transferred as u64);
        // Fault/reaction counters. Recorded serially at the leader, so
        // totals are scheduling-independent like every other domain
        // counter. Guarded so fault-free runs register no fault metrics
        // at all (the registry stays byte-identical to pre-fault runs).
        if self.retries > 0 {
            telemetry::counter!("qens_fault_retries_total").add(self.retries as u64);
        }
        if self.dropped_participants > 0 {
            telemetry::counter!("qens_fault_dropped_participants_total")
                .add(self.dropped_participants as u64);
        }
        if self.replacements > 0 {
            telemetry::counter!("qens_fault_replacements_total").add(self.replacements as u64);
        }
        if self.deadline_misses > 0 {
            telemetry::counter!("qens_fault_deadline_misses_total")
                .add(self.deadline_misses as u64);
        }
    }
}

/// Aggregates accounting rows across a query stream.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamAccounting {
    /// Per-query rows in issue order.
    pub rows: Vec<QueryAccounting>,
}

impl StreamAccounting {
    /// Adds a row.
    pub fn push(&mut self, row: QueryAccounting) {
        self.rows.push(row);
    }

    /// Mean simulated seconds per query.
    pub fn mean_sim_seconds(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.sim_seconds).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean data fraction per query.
    pub fn mean_data_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(QueryAccounting::data_fraction)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Total samples used over the stream.
    pub fn total_samples_used(&self) -> usize {
        self.rows.iter().map(|r| r.samples_used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, used: usize, total: usize, sim: f64) -> QueryAccounting {
        QueryAccounting {
            query_id: id,
            samples_used: used,
            samples_total: total,
            sim_seconds: sim,
            ..Default::default()
        }
    }

    #[test]
    fn data_fraction_is_guarded() {
        assert_eq!(row(0, 10, 40, 0.0).data_fraction(), 0.25);
        assert_eq!(row(0, 0, 0, 0.0).data_fraction(), 0.0);
    }

    #[test]
    fn fault_fields_default_to_zero() {
        let r = QueryAccounting::default();
        assert_eq!(r.retries, 0);
        assert_eq!(r.dropped_participants, 0);
        assert_eq!(r.replacements, 0);
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    fn stream_means() {
        let mut s = StreamAccounting::default();
        assert_eq!(s.mean_sim_seconds(), 0.0);
        assert_eq!(s.mean_data_fraction(), 0.0);
        s.push(row(0, 10, 100, 2.0));
        s.push(row(1, 30, 100, 4.0));
        assert!((s.mean_sim_seconds() - 3.0).abs() < 1e-12);
        assert!((s.mean_data_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(s.total_samples_used(), 40);
    }
}
