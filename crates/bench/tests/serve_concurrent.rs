//! Concurrent-scrape correctness: the observability endpoints must stay
//! consistent while a query stream is in flight.
//!
//! One test, its own binary: the assertions compare the global metric
//! registry against a ledger of what the clients actually did, so
//! nothing else may run queries in this process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bench::serve::{self, http};
use qens::prelude::*;
use qens::telemetry;

const CLIENTS: usize = 3;
const QUERIES_PER_CLIENT: usize = 8;

/// Every non-comment Prometheus line must parse as `name[{labels}]
/// value` with a finite value — a torn write would break this.
fn assert_prometheus_parses(body: &str) {
    assert!(body.contains("# HELP") && body.contains("# TYPE"));
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable sample line: {line:?}"));
        assert!(
            !name.is_empty() && name.starts_with("qens_"),
            "foreign sample name in {line:?}"
        );
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
        assert!(value.is_finite(), "non-finite sample in {line:?}");
    }
}

#[test]
fn scrapes_stay_consistent_under_a_live_query_stream() {
    telemetry::set_enabled(true);
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .telemetry(true)
        .selection_cache(true)
        .selection_cache_bucket(30.0)
        .build();
    let handle = serve::spawn("127.0.0.1:0", fed).expect("spawn server");
    let addr = handle.addr().to_string();

    let streaming = Arc::new(AtomicBool::new(true));

    // The query stream: CLIENTS keep-alive connections, each posting a
    // mix of repeated and distinct rectangles (so batching and the
    // cache are both live while the scrapers read).
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || -> usize {
            let mut ka = http::KeepAliveClient::connect(&addr).expect("client connect");
            let mut answered = 0;
            for i in 0..QUERIES_PER_CLIENT {
                let (lo, hi) = if i % 2 == 0 {
                    (0.0, 20.0)
                } else {
                    (5.0 * c as f64, 25.0 + 5.0 * c as f64)
                };
                let body = format!(
                    "{{\"id\": {}, \"bounds\": [{lo}, {hi}, 0, 45]}}",
                    c * QUERIES_PER_CLIENT + i
                );
                let (status, reply) = ka.request("POST", "/query", &body).expect("query");
                assert_eq!(status, 200, "query must succeed, got: {reply}");
                assert!(reply.contains("\"participants\":["), "reply: {reply}");
                answered += 1;
            }
            answered
        }));
    }

    // The scrapers: hammer /metrics, /slo and /profile while the stream
    // runs. Each scrape must be well-formed and the headline counter
    // must never decrease (no torn or interleaved exports).
    let mut scrapers = Vec::new();
    for _ in 0..2 {
        let addr = addr.clone();
        let streaming = Arc::clone(&streaming);
        scrapers.push(std::thread::spawn(move || {
            let mut last_queries = 0u64;
            let mut scrapes = 0usize;
            while streaming.load(Ordering::SeqCst) || scrapes < 3 {
                let (status, body) = http::get(&addr, "/metrics").expect("/metrics");
                assert_eq!(status, 200);
                assert_prometheus_parses(&body);
                let queries_now = body
                    .lines()
                    .find(|l| l.starts_with("qens_serve_queries_total "))
                    .and_then(|l| l.rsplit_once(' '))
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(0);
                assert!(
                    queries_now >= last_queries,
                    "qens_serve_queries_total went backwards: {queries_now} < {last_queries}"
                );
                last_queries = queries_now;

                let (status, body) = http::get(&addr, "/slo").expect("/slo");
                assert_eq!(status, 200);
                assert!(
                    body.contains("\"objective_nanos\"") && body.contains("\"burn_rate_1x\""),
                    "torn /slo body: {body}"
                );

                let (status, _) = http::get(&addr, "/profile").expect("/profile");
                assert_eq!(status, 200);

                scrapes += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            scrapes
        }));
    }

    let mut answered = 0usize;
    for c in clients {
        answered += c.join().expect("client thread");
    }
    streaming.store(false, Ordering::SeqCst);
    let mut scrapes = 0usize;
    for s in scrapers {
        scrapes += s.join().expect("scraper thread");
    }
    assert_eq!(answered, CLIENTS * QUERIES_PER_CLIENT);
    assert!(scrapes >= 6, "scrapers must actually have scraped");

    // The registry totals must match the ledger of what the clients did:
    // every answered query was admitted exactly once, nothing was shed
    // or rejected under this (default, deep-queue) admission config.
    let snap = telemetry::global().snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(
        counter("qens_serve_queries_total"),
        answered as u64,
        "admitted-query counter must equal the client ledger"
    );
    assert_eq!(
        counter("qens_serve_batched_queries_total"),
        answered as u64,
        "every admitted query must have gone through a batch wave"
    );
    assert!(counter("qens_serve_batches_total") > 0);
    assert!(
        counter("qens_serve_batches_total") <= answered as u64,
        "batch count cannot exceed query count"
    );
    assert_eq!(counter("qens_serve_shed_total"), 0);
    assert_eq!(counter("qens_serve_rejected_total"), 0);
    assert!(
        counter("qens_serve_requests_total") >= (answered + scrapes * 3) as u64,
        "request counter must cover queries and scrapes"
    );
    // And the federation itself saw exactly the admitted queries.
    assert_eq!(counter("qens_fedlearn_rounds_total"), answered as u64);

    handle.request_shutdown();
    handle.wait().expect("graceful shutdown");
}
