//! HTTP/1.1 surface of the query-serving subsystem, end to end over the
//! public `bench::serve` API: keep-alive pipelining, admission-control
//! status codes, body caps, the cache endpoint, and graceful shutdown
//! (both `POST /shutdown` and `--duration`).

use std::io::{Read, Write};
use std::net::TcpStream;

use bench::serve::{self, http, ServeOptions};
use qens::prelude::*;
use qens::telemetry;

fn server_with(admission: AdmissionConfig) -> serve::ServerHandle {
    telemetry::set_enabled(true);
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .telemetry(true)
        .selection_cache(true)
        .selection_cache_bucket(30.0)
        .admission(admission)
        .build();
    serve::spawn("127.0.0.1:0", fed).expect("spawn server")
}

/// One raw request with explicit headers; returns the whole response.
fn raw_round_trip(addr: &str, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response
}

#[test]
fn keep_alive_pipelines_a_query_stream_over_one_socket() {
    let server = server_with(AdmissionConfig::default());
    let mut ka = http::KeepAliveClient::connect(server.addr()).expect("connect");
    for i in 0..10u64 {
        // Alternate buckets so batching structure varies.
        let bounds = if i % 2 == 0 {
            "[0, 20, 0, 45]"
        } else {
            "[0, 10, 0, 25]"
        };
        let (status, body) = ka
            .request(
                "POST",
                "/query",
                &format!("{{\"id\": {i}, \"bounds\": {bounds}}}"),
            )
            .expect("pipelined query");
        assert_eq!(status, 200, "query {i} must succeed: {body}");
        assert!(body.contains(&format!("\"query_id\":{i}")));
        assert!(body.contains("\"sim_seconds\":"));
    }
    // The same socket still serves scrapes.
    let (status, body) = ka.request("GET", "/metrics", "").expect("scrape");
    assert_eq!(status, 200);
    assert!(body.contains("qens_serve_queries_total"));
    drop(ka);
    server.request_shutdown();
    server.wait().expect("shutdown");
}

#[test]
fn admission_rejects_and_sheds_with_the_documented_status_codes() {
    // queue_depth 0: every query bounces with 429 + Retry-After.
    let server = server_with(AdmissionConfig {
        queue_depth: 0,
        ..AdmissionConfig::default()
    });
    let response = raw_round_trip(
        server.addr(),
        &format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            "{\"bounds\": [0, 20, 0, 45]}".len(),
            "{\"bounds\": [0, 20, 0, 45]}"
        ),
    );
    assert!(response.starts_with("HTTP/1.1 429"), "got: {response}");
    assert!(response.contains("Retry-After:"), "got: {response}");
    server.request_shutdown();
    server.wait().expect("shutdown");

    // deadline 0: everything admitted is immediately stale — 503.
    let server = server_with(AdmissionConfig {
        deadline_ms: Some(0),
        ..AdmissionConfig::default()
    });
    let (status, body) =
        http::post(server.addr(), "/query", "{\"bounds\": [0, 20, 0, 45]}").expect("shed query");
    assert_eq!(status, 503, "zero deadline must shed: {body}");
    assert!(body.contains("shed"), "got: {body}");
    server.request_shutdown();
    server.wait().expect("shutdown");
}

#[test]
fn bodies_over_the_cap_get_413_and_within_cap_bodies_pass() {
    let server = server_with(AdmissionConfig {
        body_cap_bytes: 512,
        ..AdmissionConfig::default()
    });
    let (status, body) =
        http::post(server.addr(), "/query", "{\"bounds\": [0, 20, 0, 45]}").expect("small body");
    assert_eq!(status, 200, "small body must pass: {body}");
    let huge = format!(
        "{{\"bounds\": [0, 20, 0, 45], \"pad\": \"{}\"}}",
        "x".repeat(600)
    );
    let (status, body) = http::post(server.addr(), "/query", &huge).expect("big body");
    assert_eq!(status, 413, "oversized body must be refused: {body}");
    assert!(body.contains("exceeds"), "got: {body}");
    server.request_shutdown();
    server.wait().expect("shutdown");
}

#[test]
fn cache_endpoint_reflects_the_batcher_cache() {
    let server = server_with(AdmissionConfig::default());
    // Two same-bucket queries: the second lookup can be served from the
    // batcher's warm selection cache.
    for i in 0..2 {
        let (status, _) = http::post(
            server.addr(),
            "/query",
            &format!("{{\"id\": {i}, \"bounds\": [0, 20, 0, 45]}}"),
        )
        .expect("warm query");
        assert_eq!(status, 200);
    }
    let (status, body) = http::get(server.addr(), "/cache").expect("/cache");
    assert_eq!(status, 200);
    for key in [
        "\"hits\":",
        "\"misses\":",
        "\"invalidations\":",
        "\"entries\":",
        "\"hit_rate\":",
    ] {
        assert!(body.contains(key), "/cache missing {key}: {body}");
    }
    server.request_shutdown();
    server.wait().expect("shutdown");
}

#[test]
fn graceful_drain_answers_in_flight_queries() {
    let server = server_with(AdmissionConfig::default());
    let addr = server.addr().to_string();
    let in_flight = std::thread::spawn(move || {
        http::post(&addr, "/query", "{\"id\": 77, \"bounds\": [0, 20, 0, 45]}")
            .expect("in-flight query")
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let (status, body) = http::post(server.addr(), "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200, "loopback shutdown: {body}");
    let (status, body) = in_flight.join().expect("in-flight thread");
    assert_eq!(
        status, 200,
        "a query admitted before shutdown must drain to its answer: {body}"
    );
    assert!(body.contains("\"query_id\":77"));
    server.wait().expect("drained shutdown");
}

#[test]
fn duration_brings_serve_home() {
    // The blocking entry point itself: --duration must return after
    // draining, without any /shutdown call.
    let started = std::time::Instant::now();
    serve::serve(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        once: false,
        duration: Some(0.2),
    })
    .expect("serve with duration");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_millis(200),
        "must serve for the requested duration, returned after {elapsed:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "must not hang after the duration elapses"
    );
}
