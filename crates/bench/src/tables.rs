//! Table I, Table II and Table III reproductions.

use qens::prelude::*;

use crate::{heterogeneous_federation, homogeneous_federation, ExperimentScale, L_SELECT, SEED};

/// Table I / Table II row: expected loss of two selection mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub struct LossComparison {
    /// The model name ("LR" in both tables).
    pub model: &'static str,
    /// Loss of the structured mechanism (all-node / compatible node).
    pub structured_loss: f64,
    /// Loss of random selection.
    pub random_loss: f64,
    /// How many queries the average covers.
    pub queries: usize,
}

impl LossComparison {
    /// `random / structured` — Table I expects ≈ 1, Table II ≫ 1.
    pub fn ratio(&self) -> f64 {
        self.random_loss / self.structured_loss.max(1e-12)
    }
}

/// Table I: on a *homogeneous* population, all-node selection and random
/// selection produce near-identical expected loss (paper: 24.45 vs
/// 24.70).
pub fn table1(scale: ExperimentScale) -> LossComparison {
    let fed = homogeneous_federation(scale);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: scale.n_queries().min(30),
        ..WorkloadConfig::paper_default(SEED)
    });
    let rows = compare_policies(
        &fed,
        &wl,
        &[
            PolicyKind::AllNodes,
            PolicyKind::Random {
                l: L_SELECT,
                seed: SEED,
            },
        ],
    );
    LossComparison {
        model: "LR",
        structured_loss: rows[0].mean_loss.expect("all-nodes rounds complete"),
        random_loss: rows[1].mean_loss.expect("random rounds complete"),
        queries: wl.len() - rows[0].failed_queries.max(rows[1].failed_queries),
    }
}

/// Table II: on a *heterogeneous* population, selecting a compatible node
/// beats a random node by an order of magnitude (paper: 9.70 vs 178.10).
///
/// Queries target the leader-like region (the paper's Fig. 2 situation:
/// the global model's own data pattern), the structured mechanism picks
/// the node whose clusters overlap it, random picks blindly.
pub fn table2(scale: ExperimentScale) -> LossComparison {
    let fed = heterogeneous_federation(scale);
    let n_q = scale.n_queries().min(20) as u64;
    let mut structured = 0.0;
    let mut random = 0.0;
    let mut done = 0usize;
    for qid in 0..n_q {
        // Queries jitter around the leader pattern region.
        let shift = (qid % 5) as f64;
        let q = fed.query_from_bounds(qid, &[shift, 15.0 + shift, 2.0 * shift, 35.0 + 2.0 * shift]);
        let ours = match fed.run_query(&q, &PolicyKind::query_driven(1)) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let rand = match fed.run_query(
            &q,
            &PolicyKind::Random {
                l: 1,
                seed: SEED ^ 0xABCD,
            },
        ) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let (Some(a), Some(b)) = (
            ours.query_loss(fed.network(), &q),
            rand.query_loss(fed.network(), &q),
        ) else {
            continue;
        };
        structured += a;
        random += b;
        done += 1;
    }
    assert!(done > 0, "no query produced a comparable pair");
    LossComparison {
        model: "LR",
        structured_loss: structured / done as f64,
        random_loss: random / done as f64,
        queries: done,
    }
}

/// Table III is configuration, not measurement: returns the (name,
/// LR-value, NN-value) rows our implementation actually uses so the
/// repro binary can print them next to the paper's.
pub fn table3() -> Vec<(&'static str, String, String)> {
    let lr = TrainConfig::paper_lr(0);
    let nn = TrainConfig::paper_nn(0);
    vec![
        ("Dense", "1".into(), "64".into()),
        ("epochs", lr.epochs.to_string(), nn.epochs.to_string()),
        (
            "validation split",
            lr.validation_split.to_string(),
            nn.validation_split.to_string(),
        ),
        (
            "Learning rate",
            lr.optimizer.learning_rate().to_string(),
            nn.optimizer.learning_rate().to_string(),
        ),
        ("activation", "linear".into(), "relu".into()),
        ("Loss", "MSE".into(), "MSE".into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_near_tie() {
        let t = table1(ExperimentScale::Quick);
        assert!(
            t.ratio() > 0.5 && t.ratio() < 2.0,
            "ratio {} not a near-tie",
            t.ratio()
        );
        assert!(t.queries > 10);
    }

    #[test]
    fn table2_shape_order_of_magnitude() {
        let t = table2(ExperimentScale::Quick);
        assert!(
            t.ratio() > 5.0,
            "ratio {} too small for the heterogeneous gap",
            t.ratio()
        );
    }

    #[test]
    fn table3_matches_paper_hyperparameters() {
        let rows = table3();
        let get = |name: &str| rows.iter().find(|r| r.0 == name).unwrap().clone();
        assert_eq!(get("Dense").1, "1");
        assert_eq!(get("Dense").2, "64");
        assert_eq!(get("epochs").1, "100");
        assert_eq!(get("Learning rate").1, "0.03");
        assert_eq!(get("Learning rate").2, "0.001");
        assert_eq!(get("Loss").1, "MSE");
    }
}
