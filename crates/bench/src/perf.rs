//! The perf-regression harness behind `repro bench`.
//!
//! Times a fixed set of kernels (k-means fit, query-driven selection
//! uncached and behind a warm selection cache, an end-to-end federated
//! round, the Prometheus exporter, a live `POST /query` round trip)
//! and writes `results/BENCH_qens.json` in a tiny stable schema:
//!
//! ```json
//! {"schema":"qens-bench-v1","results":[
//!   {"name":"kmeans_fit","nanos_per_iter":123456.0,"iters":32}, ...
//! ]}
//! ```
//!
//! `repro bench --check` additionally compares the fresh run against the
//! committed baseline at the repository root (`BENCH_qens.json`) and
//! prints a warning for every kernel slower than the tolerance band.
//! The gate is **warn-only** by default: CI boxes and laptops disagree
//! wildly on absolute nanoseconds, so a tight hard gate would only
//! teach people to bump the baseline. Setting `QENS_BENCH_GATE=<factor>`
//! (e.g. `20`) promotes it to a hard gate at that slowdown factor —
//! generous enough to absorb machine noise, tight enough that an
//! accidental O(n²) shows up as a failed `scripts/verify.sh` instead of
//! a scrolled-past warning. Kernels missing from the baseline stay
//! warn-only even under the gate (a new kernel is not a regression).

use std::path::{Path, PathBuf};
use std::time::Instant;

use qens::prelude::*;

/// Slowdown factor past which `--check` warns (fresh > baseline × band).
pub const TOLERANCE_BAND: f64 = 3.0;

/// Reads the optional hard-gate factor from `QENS_BENCH_GATE`. `None`
/// (unset, empty, unparsable or non-positive) keeps the default
/// warn-only behaviour.
pub fn gate_from_env() -> Option<f64> {
    std::env::var("QENS_BENCH_GATE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|g| g.is_finite() && *g > 0.0)
}

/// The outcome of one baseline comparison, split by severity: `missing`
/// is informational (new kernels), `regressions` carries
/// `(kernel, slowdown_factor, message)` rows the gate can act on.
#[derive(Debug, Default)]
pub struct BenchComparison {
    /// Kernels slower than the baseline by more than the band.
    pub regressions: Vec<(String, f64, String)>,
    /// Kernels present in the fresh run but absent from the baseline.
    pub missing: Vec<String>,
}

/// One timed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Kernel name (stable across runs; the compare key).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub nanos_per_iter: f64,
    /// Iterations the mean was taken over.
    pub iters: usize,
}

/// Times `f` for `iters` iterations after `warmup` unmeasured ones.
fn time_kernel<F: FnMut()>(name: &str, warmup: usize, iters: usize, mut f: F) -> BenchResult {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    BenchResult {
        name: name.to_string(),
        nanos_per_iter: elapsed / iters as f64,
        iters,
    }
}

/// Fleet size of the scaling kernels in the committed baseline.
pub const SCALE_FLEET: usize = 1_000_000;

/// Runs the whole fixed suite at the committed 1M-node scaling-fleet
/// size. Deterministic inputs (seeded), measured wall time — so numbers
/// vary per machine but the *set* of kernels and their inputs never do.
pub fn run_suite() -> Vec<BenchResult> {
    run_suite_sized(SCALE_FLEET)
}

/// [`run_suite`] with an explicit scaling-fleet size (tests shrink it;
/// kernel *names* keep the baseline's `_1m_` spelling regardless, since
/// they are the compare key).
pub fn run_suite_sized(scale_fleet: usize) -> Vec<BenchResult> {
    use qens::cluster::{KMeans, KMeansConfig};
    use qens::geom::{HyperRect, Interval, Query};
    use qens::linalg::Matrix;
    use qens::selection::{
        GridConfig, IndexedQueryDriven, QueryDriven, SelectionContext, SelectionPolicy,
    };

    let mut out = Vec::new();

    // Kernel 1: k-means fit on a fixed 512x4 matrix, k = 5.
    let rows: Vec<Vec<f64>> = (0..512)
        .map(|i| {
            let x = f64::from(i % 97);
            vec![x, (x * 1.7) % 31.0, (x * 0.3) % 11.0, f64::from(i / 97)]
        })
        .collect();
    let data = Matrix::from_rows(&rows);
    let kconfig = KMeansConfig::with_k(5, 11);
    out.push(time_kernel("kmeans_fit", 3, 24, || {
        let _ = KMeans::fit(&data, &kconfig);
    }));

    // A small quantised federation shared by the remaining kernels.
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(6, 120)
        .clusters_per_node(4)
        .seed(13)
        .epochs(2)
        .build();
    let query = fed.query_from_bounds(0, &[0.0, 25.0, 0.0, 55.0]);

    // Kernel 2: query-driven scoring + ranking over the population
    // (the leader's Eq. 2-4 hot path).
    let ranker = QueryDriven::top_l(3);
    let ctx = SelectionContext::new(fed.network(), &query);
    out.push(time_kernel("selection_rank", 5, 64, || {
        let _ = ranker.select(&ctx);
    }));

    // Kernel 2b: the same selection served by a warm cache (exact-hit
    // path; the warmup iterations install the entry). The gap between
    // this and `selection_rank` is the cache's whole value proposition,
    // so it lives in the committed baseline next to it.
    let cached_ranker = qens::selection::CachedQueryDriven::with_defaults(QueryDriven::top_l(3));
    out.push(time_kernel("selection_rank_cached", 5, 64, || {
        let _ = cached_ranker.select(&ctx);
    }));

    // Kernel 3: one end-to-end federated round (select + train + agg).
    let policy = PolicyKind::query_driven(3);
    out.push(time_kernel("fedlearn_round", 1, 8, || {
        let _ = fed.run_query(&query, &policy);
    }));

    // Kernel 4: the Prometheus exporter over whatever the federation
    // recorded above (text exposition is on the serve hot path).
    let snap = qens::telemetry::global().snapshot();
    out.push(time_kernel("prometheus_export", 5, 64, || {
        let _ = qens::telemetry::export::to_prometheus(&snap);
    }));

    // Kernel 5: the fleet scorecard update path — the per-participant
    // bookkeeping every selection, round completion and transfer pays
    // when fleet observability is on (one iteration = one participant's
    // full selected -> trained -> transferred -> participated cycle).
    let fleet_was_on = qens::telemetry::fleet::enabled();
    qens::telemetry::fleet::set_enabled(true);
    qens::telemetry::fleet::reset();
    qens::telemetry::fleet::observe_fleet(200);
    let mut fleet_qid = 0u64;
    out.push(time_kernel("fleet_scorecard_update", 16, 256, || {
        fleet_qid += 1;
        let node = fleet_qid % 200;
        qens::telemetry::fleet::query_observed(fleet_qid);
        qens::telemetry::fleet::selected(fleet_qid, node, 3);
        qens::telemetry::fleet::trained(node, 0.25, 1_000);
        qens::telemetry::fleet::transferred(node, 4096);
        qens::telemetry::fleet::participated(node);
    }));
    qens::telemetry::fleet::set_enabled(fleet_was_on);
    qens::telemetry::fleet::reset();

    // Kernel 6: a live POST /query round trip against an ephemeral
    // server — HTTP parse, admission, batcher hand-off, federation
    // round, reply. The end-to-end serving latency the /query endpoint
    // actually delivers (the warmup iteration also warms its selection
    // cache, like a steady-state server).
    let server = crate::serve::spawn("127.0.0.1:0", crate::serve::demo_federation())
        .expect("spawn bench server");
    let addr = server.addr().to_string();
    out.push(time_kernel("serve_roundtrip", 1, 8, || {
        let (status, body) =
            crate::serve::http::post(&addr, "/query", "{\"bounds\": [0, 20, 0, 45]}")
                .expect("bench round trip");
        assert_eq!(status, 200, "bench round trip failed: {body}");
    }));
    server.request_shutdown();
    server.wait().expect("bench server shutdown");

    // Kernels 7/8: fleet-scale selection — the full Eq. 2-4 scan vs the
    // spatial-index candidate generator over the same summary-only
    // fleet and query. These run last so the big fleet is allocated
    // after every other kernel has finished. The query is narrow
    // (16 units of a 1000-unit space per side), the regime the index
    // exists for; `repro bench --check` asserts the indexed leg's
    // speedup below.
    let fleet = crate::scale::synthetic_fleet(scale_fleet, 3, 77);
    let scale_query = Query::new(
        900,
        HyperRect::new(vec![
            Interval::new(500.0, 516.0),
            Interval::new(500.0, 516.0),
        ]),
    );
    let scale_ctx = SelectionContext::new(&fleet, &scale_query);
    let scan_ranker = QueryDriven::top_l(3);
    out.push(time_kernel("selection_rank_1m_scan", 1, 4, || {
        let _ = scan_ranker.select(&scale_ctx);
    }));
    let indexed_ranker = IndexedQueryDriven::new(QueryDriven::top_l(3), GridConfig::default());
    // The first warmup iteration bulk-builds the index (steady state is
    // what the baseline tracks; build cost has its own histogram,
    // `qens_index_build_nanos`).
    out.push(time_kernel("selection_rank_1m_indexed", 2, 32, || {
        let _ = indexed_ranker.select(&scale_ctx);
    }));
    assert_eq!(
        scan_ranker.select(&scale_ctx),
        indexed_ranker.select(&scale_ctx),
        "bench fleet: indexed selection diverged from the full scan"
    );

    out
}

/// Minimum `selection_rank_1m_scan` / `selection_rank_1m_indexed`
/// speedup `--check` expects (ISSUE 10's acceptance floor).
pub const INDEX_SPEEDUP_FLOOR: f64 = 5.0;

/// The indexed-beats-scan check: returns the measured speedup factor
/// and whether it clears [`INDEX_SPEEDUP_FLOOR`]. `None` when either
/// kernel is missing from `results`.
pub fn index_speedup(results: &[BenchResult]) -> Option<(f64, bool)> {
    let scan = results
        .iter()
        .find(|r| r.name == "selection_rank_1m_scan")?;
    let indexed = results
        .iter()
        .find(|r| r.name == "selection_rank_1m_indexed")?;
    if indexed.nanos_per_iter <= 0.0 {
        return None;
    }
    let factor = scan.nanos_per_iter / indexed.nanos_per_iter;
    Some((factor, factor >= INDEX_SPEEDUP_FLOOR))
}

/// Serialises results in the stable `qens-bench-v1` schema.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\"schema\":\"qens-bench-v1\",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"nanos_per_iter\":{:.1},\"iters\":{}}}",
            r.name, r.nanos_per_iter, r.iters
        ));
    }
    s.push_str("]}\n");
    s
}

/// Parses the `qens-bench-v1` schema back. Deliberately tiny — the
/// format is machine-written with a fixed key order, so a scan for
/// `"name":"…"` / `"nanos_per_iter":…` pairs is exact, not heuristic.
pub fn from_json(doc: &str) -> Option<Vec<BenchResult>> {
    if !doc.contains("\"schema\":\"qens-bench-v1\"") {
        return None;
    }
    let mut results = Vec::new();
    let mut rest = doc;
    while let Some(start) = rest.find("{\"name\":\"") {
        rest = &rest[start + "{\"name\":\"".len()..];
        let name_end = rest.find('"')?;
        let name = rest[..name_end].to_string();
        let nanos_key = "\"nanos_per_iter\":";
        let npos = rest.find(nanos_key)?;
        let after = &rest[npos + nanos_key.len()..];
        let num_end = after.find([',', '}'])?;
        let nanos_per_iter: f64 = after[..num_end].trim().parse().ok()?;
        let iters_key = "\"iters\":";
        let ipos = rest.find(iters_key)?;
        let after = &rest[ipos + iters_key.len()..];
        let num_end = after.find(['}', ','])?;
        let iters: usize = after[..num_end].trim().parse().ok()?;
        results.push(BenchResult {
            name,
            nanos_per_iter,
            iters,
        });
        rest = &rest[ipos..];
    }
    Some(results)
}

/// Compares fresh results against a baseline at an explicit tolerance
/// band, splitting regressions from baseline-coverage gaps so the
/// caller can gate on the former only.
pub fn compare_with_band(
    fresh: &[BenchResult],
    baseline: &[BenchResult],
    band: f64,
) -> BenchComparison {
    let mut cmp = BenchComparison::default();
    for f in fresh {
        let Some(b) = baseline.iter().find(|b| b.name == f.name) else {
            cmp.missing.push(f.name.clone());
            continue;
        };
        if b.nanos_per_iter > 0.0 && f.nanos_per_iter > b.nanos_per_iter * band {
            let factor = f.nanos_per_iter / b.nanos_per_iter;
            cmp.regressions.push((
                f.name.clone(),
                factor,
                format!(
                    "bench: {} regressed {factor:.1}x ({:.0} ns/iter vs baseline {:.0} ns/iter, band {band}x)",
                    f.name, f.nanos_per_iter, b.nanos_per_iter,
                ),
            ));
        }
    }
    cmp
}

/// Compares fresh results against a baseline; returns warning lines
/// (empty = all kernels within the default band). Legacy flat view of
/// [`compare_with_band`].
pub fn compare(fresh: &[BenchResult], baseline: &[BenchResult]) -> Vec<String> {
    let cmp = compare_with_band(fresh, baseline, TOLERANCE_BAND);
    let mut warnings: Vec<String> = cmp
        .missing
        .iter()
        .map(|name| {
            format!(
                "bench: kernel {name:?} missing from baseline (new kernel? re-record the baseline)"
            )
        })
        .collect();
    warnings.extend(cmp.regressions.into_iter().map(|(_, _, msg)| msg));
    warnings
}

/// The `repro bench [--check]` entry point. Always writes
/// `results/BENCH_qens.json`; with `check`, also compares against the
/// committed `BENCH_qens.json` at the repo root. Returns `false` only
/// when `QENS_BENCH_GATE` is set and a kernel regressed past that
/// factor — everything else (no baseline, new kernels, regressions
/// within the gate) stays warn-only and returns `true`.
pub fn run_bench(check: bool, baseline_path: Option<&Path>) -> bool {
    let results = run_suite();
    for r in &results {
        println!(
            "{:<24} {:>14.0} ns/iter  ({} iters)",
            r.name, r.nanos_per_iter, r.iters
        );
    }
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_qens.json");
    std::fs::write(&path, to_json(&results)).expect("write BENCH_qens.json");
    println!("(bench results -> {})", path.display());

    if !check {
        return true;
    }
    let gate = gate_from_env();

    // The scaling claim is relative (same machine, same run), so unlike
    // the nanosecond baselines it can be checked hard: warn-only by
    // default, a failure under QENS_BENCH_GATE.
    let mut speedup_ok = true;
    match index_speedup(&results) {
        Some((factor, ok)) => {
            println!(
                "bench check: indexed selection speedup {factor:.1}x over the scan \
                 (floor {INDEX_SPEEDUP_FLOOR}x)"
            );
            if !ok {
                eprintln!(
                    "WARNING: bench: selection_rank_1m_indexed is only {factor:.1}x faster than \
                     selection_rank_1m_scan (floor {INDEX_SPEEDUP_FLOOR}x)"
                );
                if gate.is_some() {
                    eprintln!(
                        "FAIL: bench: index speedup below the {INDEX_SPEEDUP_FLOOR}x floor \
                         under QENS_BENCH_GATE"
                    );
                    speedup_ok = false;
                }
            }
        }
        None => eprintln!("WARNING: bench: scaling kernels missing; speedup unchecked"),
    }
    let baseline_path = baseline_path.unwrap_or(Path::new("BENCH_qens.json"));
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(doc) => match from_json(&doc) {
            Some(baseline) => baseline,
            None => {
                eprintln!(
                    "WARNING: bench: baseline {} is not qens-bench-v1; skipping compare",
                    baseline_path.display()
                );
                return speedup_ok;
            }
        },
        Err(e) => {
            eprintln!(
                "WARNING: bench: no baseline at {} ({e}); run `repro bench` and commit the file",
                baseline_path.display()
            );
            return speedup_ok;
        }
    };
    let cmp = compare_with_band(&results, &baseline, TOLERANCE_BAND);
    for name in &cmp.missing {
        eprintln!(
            "WARNING: bench: kernel {name:?} missing from baseline \
             (new kernel? re-record the baseline)"
        );
    }
    if cmp.regressions.is_empty() {
        println!(
            "bench check OK: {} kernels within {}x of {}",
            results.len(),
            TOLERANCE_BAND,
            baseline_path.display()
        );
        return speedup_ok;
    }
    for (_, _, msg) in &cmp.regressions {
        eprintln!("WARNING: {msg}");
    }
    let Some(gate) = gate else {
        println!(
            "bench check: {} warning(s) against {} (warn-only; set QENS_BENCH_GATE=<factor> \
             to make regressions past that factor fail)",
            cmp.regressions.len(),
            baseline_path.display()
        );
        return speedup_ok;
    };
    let over_gate: Vec<&(String, f64, String)> = cmp
        .regressions
        .iter()
        .filter(|(_, factor, _)| *factor > gate)
        .collect();
    if over_gate.is_empty() {
        println!(
            "bench check: {} regression(s) within the QENS_BENCH_GATE={gate}x hard gate \
             (warned, not failing)",
            cmp.regressions.len()
        );
        return speedup_ok;
    }
    for (name, factor, _) in &over_gate {
        eprintln!("FAIL: bench: {name} regressed {factor:.1}x, past the QENS_BENCH_GATE={gate}x hard gate");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str, nanos: f64) -> BenchResult {
        BenchResult {
            name: name.to_string(),
            nanos_per_iter: nanos,
            iters: 10,
        }
    }

    #[test]
    fn json_round_trips() {
        let results = vec![r("kmeans_fit", 1234.5), r("fedlearn_round", 99.0)];
        let doc = to_json(&results);
        let parsed = from_json(&doc).expect("parse own output");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "kmeans_fit");
        assert!((parsed[0].nanos_per_iter - 1234.5).abs() < 1e-9);
        assert_eq!(parsed[1].iters, 10);
    }

    #[test]
    fn from_json_rejects_foreign_schemas() {
        assert!(from_json("{\"schema\":\"other\"}").is_none());
        assert!(from_json("not json at all").is_none());
    }

    #[test]
    fn compare_warns_only_outside_the_band() {
        let baseline = vec![r("a", 100.0), r("b", 100.0)];
        let fresh = vec![r("a", 100.0 * TOLERANCE_BAND * 1.1), r("b", 120.0)];
        let warnings = compare(&fresh, &baseline);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("\"a\"") || warnings[0].contains("a regressed"));
    }

    #[test]
    fn compare_flags_kernels_missing_from_baseline() {
        let warnings = compare(&[r("new_kernel", 1.0)], &[]);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("missing from baseline"));
    }

    #[test]
    fn compare_with_band_separates_regressions_from_missing() {
        let baseline = vec![r("a", 100.0)];
        let fresh = vec![r("a", 2_500.0), r("brand_new", 1.0)];
        let cmp = compare_with_band(&fresh, &baseline, 20.0);
        assert_eq!(cmp.missing, vec!["brand_new".to_string()]);
        assert_eq!(cmp.regressions.len(), 1);
        let (name, factor, msg) = &cmp.regressions[0];
        assert_eq!(name, "a");
        assert!((factor - 25.0).abs() < 1e-9);
        assert!(msg.contains("25.0x"));
        // Within the band: clean.
        let cmp = compare_with_band(&[r("a", 1_500.0)], &baseline, 20.0);
        assert!(cmp.regressions.is_empty() && cmp.missing.is_empty());
    }

    #[test]
    fn index_speedup_reads_the_scaling_pair() {
        let results = vec![
            r("selection_rank_1m_scan", 10_000.0),
            r("selection_rank_1m_indexed", 1_000.0),
        ];
        let (factor, ok) = index_speedup(&results).expect("pair present");
        assert!((factor - 10.0).abs() < 1e-9);
        assert!(ok);
        let slow = vec![
            r("selection_rank_1m_scan", 2_000.0),
            r("selection_rank_1m_indexed", 1_000.0),
        ];
        let (factor, ok) = index_speedup(&slow).expect("pair present");
        assert!((factor - 2.0).abs() < 1e-9);
        assert!(!ok);
        assert!(index_speedup(&[r("selection_rank_1m_scan", 1.0)]).is_none());
    }

    #[test]
    fn suite_runs_and_serialises() {
        // Keep it cheap: assert the suite produces the fixed kernel set
        // and the serialised doc parses back, with the scaling fleet
        // shrunk to test size — names stay the baseline's `_1m_` ones.
        // (The suite's fleet kernel mutates the process-global registry:
        // take the lock.)
        let _g = crate::fleet_test_lock();
        let results = run_suite_sized(20_000);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "kmeans_fit",
                "selection_rank",
                "selection_rank_cached",
                "fedlearn_round",
                "prometheus_export",
                "fleet_scorecard_update",
                "serve_roundtrip",
                "selection_rank_1m_scan",
                "selection_rank_1m_indexed"
            ]
        );
        assert!(results.iter().all(|r| r.nanos_per_iter > 0.0));
        let parsed = from_json(&to_json(&results)).expect("round trip");
        assert_eq!(parsed.len(), results.len());
    }
}
