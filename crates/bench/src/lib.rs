//! Shared experiment harness for the `repro` binary and the Criterion
//! benches: one function per table/figure of the paper, each returning
//! plain data the caller can print or serialise.
//!
//! Every experiment takes an [`ExperimentScale`]:
//! [`ExperimentScale::Quick`] keeps the whole suite tractable on a
//! laptop (fewer queries/epochs/samples, identical structure), while
//! [`ExperimentScale::Paper`] matches the paper's published parameters
//! (`N = 10` nodes, `K = 5`, 200 queries, Table III epochs).

use qens::linalg::stats;
use qens::prelude::*;

pub mod figures;
pub mod fleet;
pub mod harness;
pub mod perf;
pub mod profile;
pub mod report;
pub mod scale;
pub mod serve;
pub mod tables;

/// Serializes tests that mutate the process-global fleet registry and
/// event journal (they would race otherwise: cargo runs a binary's
/// tests on parallel threads).
#[cfg(test)]
pub(crate) fn fleet_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Small but shape-preserving (default for tests and benches).
    Quick,
    /// The paper's published parameters.
    Paper,
}

impl ExperimentScale {
    /// Queries in the dynamic workload (paper: 200).
    pub fn n_queries(self) -> usize {
        match self {
            ExperimentScale::Quick => 40,
            ExperimentScale::Paper => 200,
        }
    }

    /// Training epochs per stage (paper Table III: 100).
    pub fn epochs(self) -> usize {
        match self {
            ExperimentScale::Quick => 10,
            ExperimentScale::Paper => 100,
        }
    }

    /// Hours of synthetic air-quality data per station.
    pub fn hours(self) -> u64 {
        match self {
            ExperimentScale::Quick => 24 * 45,
            ExperimentScale::Paper => 24 * 365,
        }
    }

    /// Samples per node in the controlled synthetic scenarios.
    pub fn samples_per_node(self) -> usize {
        match self {
            ExperimentScale::Quick => 250,
            ExperimentScale::Paper => 1000,
        }
    }

    /// Hidden width of the NN model (paper Table III: 64).
    pub fn nn_hidden(self) -> usize {
        match self {
            ExperimentScale::Quick => 16,
            ExperimentScale::Paper => 64,
        }
    }
}

/// The evaluation's fixed parameters (§V-A).
pub const N_NODES: usize = 10;
/// Clusters per node (§V-A: "K = 5 for all nodes to avoid biases").
pub const K_CLUSTERS: usize = 5;
/// Participants per query for the top-ℓ policies.
pub const L_SELECT: usize = 4;
/// Overlap threshold ε.
pub const EPSILON: f64 = 0.05;
/// Master seed of the whole evaluation.
pub const SEED: u64 = 20230403; // ICDE 2023 started April 3rd.

/// The paper's evaluation federation: N air-quality stations, K = 5.
pub fn paper_federation(scale: ExperimentScale, model: ModelKind, agg: Aggregation) -> Federation {
    FederationBuilder::new()
        .air_quality_nodes(N_NODES, scale.hours())
        .clusters_per_node(K_CLUSTERS)
        .seed(SEED)
        .model(model)
        .epochs(scale.epochs())
        .aggregation(agg)
        .build()
}

/// The §II homogeneous population.
pub fn homogeneous_federation(scale: ExperimentScale) -> Federation {
    FederationBuilder::new()
        .homogeneous_nodes(N_NODES, scale.samples_per_node())
        .clusters_per_node(K_CLUSTERS)
        .seed(SEED)
        .epochs(scale.epochs())
        .build()
}

/// The §II heterogeneous population.
pub fn heterogeneous_federation(scale: ExperimentScale) -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(N_NODES, scale.samples_per_node())
        .clusters_per_node(K_CLUSTERS)
        .seed(SEED)
        .epochs(scale.epochs())
        .build()
}

/// Per-node scatter statistics used by the Fig. 1/2 replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePattern {
    /// Node name.
    pub name: String,
    /// OLS slope of the label on the single feature.
    pub slope: f64,
    /// OLS intercept.
    pub intercept: f64,
    /// Pearson correlation.
    pub correlation: f64,
    /// Feature range.
    pub x_range: (f64, f64),
    /// Sample count.
    pub samples: usize,
}

/// Computes the pattern statistics of one node.
pub fn node_pattern(fed: &Federation, idx: usize) -> NodePattern {
    let node = &fed.network().nodes()[idx];
    let xs = node.data().x().col(0);
    let ys = node.data().y().to_vec();
    let (slope, intercept) = stats::ols_line(&xs, &ys);
    NodePattern {
        name: node.name().to_string(),
        slope,
        intercept,
        correlation: stats::pearson(&xs, &ys),
        x_range: stats::min_max(&xs).expect("nodes are non-empty"),
        samples: node.len(),
    }
}
