//! Figure reproductions: Figs. 1, 2, 5, 6, 7, 8, 9.

use qens::prelude::*;

use crate::{
    heterogeneous_federation, homogeneous_federation, node_pattern, paper_federation,
    ExperimentScale, NodePattern, EPSILON, L_SELECT, SEED,
};

/// Fig. 1/2 replica: the pattern statistics of two participants plus the
/// probe loss each inflicts on the leader's model.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticipantPair {
    /// The node the structured mechanism would pick.
    pub selected: NodePattern,
    /// A randomly picked node.
    pub random: NodePattern,
    /// Leader-probe loss on the selected node.
    pub selected_probe_loss: f64,
    /// Leader-probe loss on the random node.
    pub random_probe_loss: f64,
}

fn participant_pair(fed: &Federation, random_idx: usize) -> ParticipantPair {
    // The structured pick: the best-ranked non-leader node for a query
    // over the leader's own data region (the paper's "participant
    // selected based on the selection mechanism").
    let leader_space = fed.network().nodes()[0].data_space().to_boundary_vec();
    let q = Query::from_boundary_vec(0, &leader_space);
    let ctx = SelectionContext::new(fed.network(), &q);
    let ranked = QueryDriven {
        epsilon: EPSILON,
        ..QueryDriven::top_l(fed.network().len())
    }
    .select(&ctx);
    let selected_idx = ranked
        .participants
        .iter()
        .map(|p| p.node.0)
        .find(|&i| i != 0)
        .expect("some non-leader node overlaps the leader region");
    // Probe losses (the numbers Tables I/II quote next to the scatter
    // plots) still come from the leader's probe model.
    let gt = GameTheory::paper_default(0, fed.network().len(), SEED);
    let losses = gt.probe_losses(&ctx);
    ParticipantPair {
        selected: node_pattern(fed, selected_idx),
        random: node_pattern(fed, random_idx),
        selected_probe_loss: losses[selected_idx],
        random_probe_loss: losses[random_idx],
    }
}

/// Fig. 1: two *similar* participants — both choices look alike.
pub fn fig1(scale: ExperimentScale) -> ParticipantPair {
    let fed = homogeneous_federation(scale);
    participant_pair(&fed, 7)
}

/// Fig. 2: *dissimilar* participants — the random pick has a different
/// pattern (opposite-sign regression) and a much higher probe loss.
pub fn fig2(scale: ExperimentScale) -> ParticipantPair {
    let fed = heterogeneous_federation(scale);
    // Node 4 inverts the relation (slope -4) in the scenario spec.
    participant_pair(&fed, 4)
}

/// One cluster's leader-visible summary with its query overlap (Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterProjection {
    /// Cluster id within the node.
    pub cluster_id: usize,
    /// Member count.
    pub size: usize,
    /// Boundary vector of the cluster rectangle.
    pub rect: Vec<f64>,
    /// Data-overlap rate `h_ik` against the query.
    pub overlap: f64,
    /// Whether `h_ik >= ε`.
    pub supporting: bool,
}

/// Fig. 5: the query region projected onto one participant's quantised
/// data space.
pub fn fig5(scale: ExperimentScale) -> (Vec<f64>, Vec<ClusterProjection>) {
    let fed = heterogeneous_federation(scale);
    let query = fed.query_from_bounds(0, &[0.0, 12.0, 0.0, 30.0]);
    let node = &fed.network().nodes()[0];
    let projections = node
        .summaries()
        .iter()
        .map(|s| {
            let overlap = query.region().overlap_rate(&s.rect);
            ClusterProjection {
                cluster_id: s.cluster_id,
                size: s.size,
                rect: s.rect.to_boundary_vec(),
                overlap,
                supporting: overlap >= EPSILON,
            }
        })
        .collect();
    (query.to_boundary_vec(), projections)
}

/// Fig. 6 row: how much of one node's data a query actually needs.
#[derive(Debug, Clone, PartialEq)]
pub struct DataNeed {
    /// Node name.
    pub node: String,
    /// Samples in supporting clusters.
    pub needed: usize,
    /// Total samples on the node.
    pub total: usize,
    /// Number of supporting clusters.
    pub supporting_clusters: usize,
    /// Total clusters.
    pub clusters: usize,
}

/// Fig. 6: the query space projected onto three nodes' data spaces — the
/// data *needed* versus the data *available*.
pub fn fig6(scale: ExperimentScale) -> (Vec<f64>, Vec<DataNeed>) {
    let fed = heterogeneous_federation(scale);
    // A query over part of the leader pattern, brushing node 6's range.
    let query = fed.query_from_bounds(0, &[0.0, 12.0, 0.0, 28.0]);
    let policy = QueryDriven {
        epsilon: EPSILON,
        ..QueryDriven::top_l(usize::MAX)
    };
    let needs = [0usize, 1, 6]
        .iter()
        .map(|&i| {
            let node = &fed.network().nodes()[i];
            let (_, supporting) = policy.score_node(node, &query);
            DataNeed {
                node: node.name().to_string(),
                needed: supporting.iter().map(|c| c.size).sum(),
                total: node.len(),
                supporting_clusters: supporting.len(),
                clusters: node.k(),
            }
        })
        .collect();
    (query.to_boundary_vec(), needs)
}

/// Fig. 7: average loss of the four mechanisms over the dynamic workload,
/// for one model architecture.
pub fn fig7(scale: ExperimentScale, model: ModelKind) -> Vec<PolicyComparison> {
    // "Averaging" and "Weighted" are our mechanism under the two
    // aggregation rules; GT and Random use weighted-capable uniform
    // weights (their rankings are all 1).
    let weighted = paper_federation(scale, model, Aggregation::WeightedAveraging);
    let plain = paper_federation(scale, model, Aggregation::ModelAveraging);
    let wl = weighted.workload(&WorkloadConfig {
        n_queries: scale.n_queries(),
        ..WorkloadConfig::paper_default(SEED)
    });

    let mut rows = compare_policies(
        &weighted,
        &wl,
        &[
            PolicyKind::GameTheory {
                leader: 0,
                l: L_SELECT,
                seed: SEED,
            },
            PolicyKind::Random {
                l: L_SELECT,
                seed: SEED,
            },
        ],
    );
    let mut ours_plain = compare_policies(
        &plain,
        &wl,
        &[PolicyKind::QueryDriven {
            epsilon: EPSILON,
            l: L_SELECT,
        }],
    );
    ours_plain[0].policy = "averaging (ours)".into();
    let mut ours_weighted = compare_policies(
        &weighted,
        &wl,
        &[PolicyKind::QueryDriven {
            epsilon: EPSILON,
            l: L_SELECT,
        }],
    );
    ours_weighted[0].policy = "weighted (ours)".into();
    rows.extend(ours_plain);
    rows.extend(ours_weighted);
    rows
}

/// Extension experiment (not a paper figure): mean loss of *every*
/// implemented mechanism over the same workload - the two evaluated
/// baselines plus the related-work mechanisms of §II.
pub fn extended_comparison(scale: ExperimentScale) -> Vec<PolicyComparison> {
    let fed = paper_federation(scale, ModelKind::Linear, Aggregation::WeightedAveraging);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: scale.n_queries(),
        ..WorkloadConfig::paper_default(SEED)
    });
    compare_policies(
        &fed,
        &wl,
        &[
            PolicyKind::QueryDriven {
                epsilon: EPSILON,
                l: L_SELECT,
            },
            PolicyKind::Random {
                l: L_SELECT,
                seed: SEED,
            },
            PolicyKind::GameTheory {
                leader: 0,
                l: L_SELECT,
                seed: SEED,
            },
            PolicyKind::DataCentric { l: L_SELECT },
            PolicyKind::FairStochastic {
                l: L_SELECT,
                seed: SEED,
            },
            PolicyKind::AllNodes,
        ],
    )
}

/// One cell of the "Fig. 8 under faults" sweep: one selection policy at
/// one dropout rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepRow {
    /// Per-round participant dropout probability.
    pub dropout: f64,
    /// Policy display name.
    pub policy: String,
    /// Mean loss over the queries that completed (`None` when every
    /// round collapsed below quorum).
    pub mean_loss: Option<f64>,
    /// Queries that produced a model.
    pub completed: usize,
    /// Queries that failed (no overlap, or quorum lost under faults).
    pub failed: usize,
    /// Ranked standbys promoted into cohorts across the stream.
    pub replacements: usize,
    /// Participants lost to dropouts/transfer failures/deadlines.
    pub dropped: usize,
    /// Mean simulated seconds per completed query.
    pub mean_sim_seconds: f64,
}

/// "Fig. 8 under faults" (extension experiment, not a paper figure):
/// mean loss of the query-driven mechanism vs. random selection as the
/// per-round dropout probability rises, both under the *same*
/// full-strength tolerance (a standby promoted for every loss).
///
/// The query-driven policy keeps a ranked standby tail behind its top-ℓ
/// cut, so it can actually honour the promotion policy; random selection
/// has no ranked tail and collapses once dropouts bite. The fault
/// schedule is deterministic in the workload seed, so the emitted CSV is
/// byte-stable across runs and thread counts.
pub fn fig8_faults(scale: ExperimentScale) -> Vec<FaultSweepRow> {
    let fed = paper_federation(scale, ModelKind::Linear, Aggregation::WeightedAveraging);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 20,
        ..WorkloadConfig::paper_default(SEED ^ 0xFA)
    });
    let rates = [0.0, 0.1, 0.25, 0.5, 0.75];
    let policies = [
        PolicyKind::QueryDriven {
            epsilon: EPSILON,
            l: L_SELECT,
        },
        PolicyKind::Random {
            l: L_SELECT,
            seed: SEED,
        },
    ];
    let mut rows = Vec::with_capacity(rates.len() * policies.len());
    for &dropout in &rates {
        for pk in &policies {
            let mut config = fed.config().clone();
            config.faults = (dropout > 0.0).then(|| FaultSpec::dropout(SEED, dropout));
            config.tolerance = FaultTolerance::full_strength();
            let stream =
                qens::fedlearn::run_stream(fed.network(), &wl, pk.build().as_ref(), &config);
            let replacements: usize = stream.accounting.rows.iter().map(|r| r.replacements).sum();
            let dropped: usize = stream
                .accounting
                .rows
                .iter()
                .map(|r| r.dropped_participants)
                .sum();
            rows.push(FaultSweepRow {
                dropout,
                policy: stream.policy.clone(),
                mean_loss: stream.mean_loss(),
                completed: stream.per_query.len() - stream.failed_queries(),
                failed: stream.failed_queries(),
                replacements,
                dropped,
                mean_sim_seconds: stream.mean_sim_seconds(),
            });
        }
    }
    rows
}

/// Fig. 8 and Fig. 9 share the same run: per-query training time and
/// data fraction with/without the query-driven mechanism, over the first
/// 20 queries of the stream (the paper plots 20 "for legibility").
pub fn fig8_fig9(scale: ExperimentScale) -> SelectivitySeries {
    let fed = paper_federation(scale, ModelKind::Linear, Aggregation::WeightedAveraging);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 20,
        ..WorkloadConfig::paper_default(SEED ^ 0x88)
    });
    selectivity_comparison(&fed, &wl, EPSILON, L_SELECT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_pair_is_similar() {
        let p = fig1(ExperimentScale::Quick);
        assert!((p.selected.slope - p.random.slope).abs() < 0.3);
        let ratio = p.random_probe_loss / p.selected_probe_loss.max(1e-12);
        assert!(
            ratio < 3.0,
            "homogeneous pair should look alike, ratio {ratio}"
        );
    }

    #[test]
    fn fig2_pair_is_dissimilar() {
        let p = fig2(ExperimentScale::Quick);
        assert!(
            p.selected.slope * p.random.slope < 0.0,
            "expected opposite-sign regressions, got {} and {}",
            p.selected.slope,
            p.random.slope
        );
        assert!(p.random_probe_loss > 3.0 * p.selected_probe_loss);
    }

    #[test]
    fn fig5_marks_supporting_clusters() {
        let (query, projections) = fig5(ExperimentScale::Quick);
        assert_eq!(query.len(), 4);
        assert!(!projections.is_empty());
        assert!(projections.iter().any(|c| c.supporting));
        for c in &projections {
            assert_eq!(c.supporting, c.overlap >= EPSILON);
            assert!(c.size > 0);
        }
    }

    #[test]
    fn fig6_needs_less_than_available() {
        let (_, needs) = fig6(ExperimentScale::Quick);
        assert_eq!(needs.len(), 3);
        assert!(
            needs.iter().any(|n| n.needed > 0),
            "query should need someone's data"
        );
        for n in &needs {
            assert!(n.needed <= n.total);
            assert!(n.supporting_clusters <= n.clusters);
        }
    }

    #[test]
    fn fig7_ordering_holds_for_lr() {
        let rows = fig7(ExperimentScale::Quick, ModelKind::Linear);
        let loss = |name: &str| {
            rows.iter()
                .find(|r| r.policy.contains(name))
                .and_then(|r| r.mean_loss)
                .unwrap_or(f64::NAN)
        };
        let weighted = loss("weighted");
        let averaging = loss("averaging");
        let random = loss("random");
        let gt = loss("game-theory");
        assert!(weighted < random, "weighted {weighted} vs random {random}");
        assert!(
            averaging < random,
            "averaging {averaging} vs random {random}"
        );
        assert!(weighted < gt, "weighted {weighted} vs gt {gt}");
    }

    #[test]
    fn fig8_fig9_savings() {
        let s = fig8_fig9(ExperimentScale::Quick);
        assert!(s.query_ids.len() >= 10);
        assert!(s.mean_speedup().unwrap() > 1.0);
        let mean_with: f64 = s.with_fraction.iter().sum::<f64>() / s.with_fraction.len() as f64;
        let mean_without: f64 =
            s.without_fraction.iter().sum::<f64>() / s.without_fraction.len() as f64;
        assert!(mean_with < mean_without);
    }

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let rows = fig8_faults(ExperimentScale::Quick);
        let ours = |d: f64| {
            rows.iter()
                .find(|r| r.dropout == d && r.policy.contains("query-driven"))
                .expect("query-driven row at every dropout rate")
        };
        // No faults: a clean sweep baseline with no replacements.
        assert_eq!(ours(0.0).failed, 0);
        assert_eq!(ours(0.0).replacements, 0);
        // Heavy dropout: the ranked standby tail keeps models coming —
        // finite mean loss, and promotions actually doing the work.
        let heavy = ours(0.5);
        assert!(heavy.completed > 0, "no query survived 50% dropout");
        assert!(heavy.mean_loss.is_some_and(f64::is_finite));
        assert!(
            heavy.replacements > 0,
            "graceful degradation must come from standby promotion"
        );
        // The sweep is deterministic: a rerun reproduces it exactly.
        assert_eq!(rows, fig8_faults(ExperimentScale::Quick));
    }
}
