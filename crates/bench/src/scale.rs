//! `repro scale`: the fleet-size scaling experiment (Fig. 11).
//!
//! The paper's experiments stop at tens of nodes; ROADMAP item 1 asks
//! what happens at fleet scale. This module sweeps a synthetic
//! shared-space fleet across 1k / 10k / 100k / 1M nodes and runs the
//! same seeded query stream through both selection paths:
//!
//! * `scan` — the plain [`QueryDriven`] kernel (every node scored), and
//! * `indexed` — [`IndexedQueryDriven`], the spatial-index candidate
//!   generator feeding the identical kernel.
//!
//! Every query asserts the two selections are **bit-identical** before
//! anything is recorded, so the committed artifact doubles as an
//! equivalence proof at scales the unit tests cannot afford.
//!
//! `results/fig11_scale.csv` carries *structural* columns only — node
//! counts, probe counters, participant totals and an FNV selection
//! hash, never wall-clock — so the file is byte-identical at any
//! `QENS_THREADS` (`scripts/verify.sh` diffs two runs). Wall-clock
//! observations go to stdout where they belong.
//!
//! # The fleet constructor
//!
//! [`synthetic_fleet`] builds **summary-only** nodes
//! ([`EdgeNode::from_summaries`]): each node carries its cluster
//! summaries and a one-row representative dataset instead of a cloned
//! training matrix. That is exactly the leader's view of a real fleet —
//! the leader never holds remote datasets, only the quantised synopses
//! the nodes shipped (§III-B) — and it is what makes a million-node
//! sweep fit in memory: the per-node footprint is a few hundred bytes,
//! not a dataset clone.

use std::path::Path;
use std::time::Instant;

use qens::cluster::ClusterSummary;
use qens::edgesim::{EdgeNetwork, EdgeNode, NodeId};
use qens::geom::{HyperRect, Interval};
use qens::linalg::rng::{self as lrng, Rng};
use qens::selection::{
    GridConfig, IndexedQueryDriven, QueryDriven, Selection, SelectionContext, SelectionPolicy,
};
use qens::workload::{self, WorkloadConfig, WorkloadKind};

use crate::report;

/// Fleet sizes the sweep visits (the x-axis of Fig. 11).
pub const FLEET_SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Clusters per synthetic node.
pub const CLUSTERS_PER_NODE: usize = 3;

/// Fleet construction seed (workload uses its own).
pub const FLEET_SEED: u64 = 77;

/// Queries per fleet size.
pub const N_QUERIES: usize = 20;

/// The shared 2-D joint space every synthetic node lives in.
pub fn scale_space() -> HyperRect {
    HyperRect::new(vec![Interval::new(0.0, 1000.0), Interval::new(0.0, 1000.0)])
}

/// Builds an `n_nodes`-strong summary-only fleet over [`scale_space`].
///
/// Each node draws a centre uniformly over the space and scatters
/// `clusters_per_node` small cluster rectangles (half-widths 0.5–1.5,
/// centre jitter ±2, clamped to the space) around it, so node hulls are
/// tight and a narrow query prunes most of the fleet. Construction is
/// a single seeded pass: byte-identical fleets for a given
/// `(n_nodes, clusters_per_node, seed)` triple on every machine.
///
/// # Panics
/// Panics if `n_nodes == 0` or `clusters_per_node == 0`.
pub fn synthetic_fleet(n_nodes: usize, clusters_per_node: usize, seed: u64) -> EdgeNetwork {
    assert!(n_nodes > 0, "synthetic fleet needs at least one node");
    assert!(clusters_per_node > 0, "synthetic nodes need clusters");
    let space = scale_space();
    let (space_lo, space_hi) = {
        let iv = &space.intervals()[0];
        (iv.lo(), iv.hi())
    };
    let mut rng = lrng::rng_for(seed, 0x5CA1E);
    let mut nodes = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let cx: f64 = rng.gen_range(space_lo..space_hi);
        let cy: f64 = rng.gen_range(space_lo..space_hi);
        let mut summaries = Vec::with_capacity(clusters_per_node);
        for k in 0..clusters_per_node {
            let ox: f64 = rng.gen_range(-2.0..2.0);
            let oy: f64 = rng.gen_range(-2.0..2.0);
            let hx: f64 = rng.gen_range(0.5..1.5);
            let hy: f64 = rng.gen_range(0.5..1.5);
            let x = Interval::new(
                (cx + ox - hx).clamp(space_lo, space_hi),
                (cx + ox + hx).clamp(space_lo, space_hi),
            );
            let y = Interval::new(
                (cy + oy - hy).clamp(space_lo, space_hi),
                (cy + oy + hy).clamp(space_lo, space_hi),
            );
            let rect = HyperRect::new(vec![x, y]);
            let representative = vec![
                (rect.intervals()[0].lo() + rect.intervals()[0].hi()) / 2.0,
                (rect.intervals()[1].lo() + rect.intervals()[1].hi()) / 2.0,
            ];
            summaries.push(ClusterSummary {
                cluster_id: k,
                size: 16 + (i + k) % 48,
                representative,
                rect,
            });
        }
        nodes.push(EdgeNode::from_summaries(
            NodeId(i),
            format!("synth-{i}"),
            1.0,
            summaries,
        ));
    }
    EdgeNetwork::from_nodes(nodes)
}

/// The scaling workload: narrow uniform queries (0.01–0.03 span
/// fraction per side), so candidate fractions stay small and the
/// index's pruning is visible at every fleet size.
pub fn scale_workload() -> workload::QueryWorkload {
    workload::generate(
        &scale_space(),
        &WorkloadConfig {
            n_queries: N_QUERIES,
            halfwidth_frac: (0.01, 0.03),
            kind: WorkloadKind::Uniform,
            seed: 4242,
        },
    )
}

/// One CSV row of the sweep (one fleet size × one path).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Fleet size.
    pub nodes: usize,
    /// `"scan"` or `"indexed"`.
    pub path: &'static str,
    /// Queries run.
    pub queries: usize,
    /// Nodes the Eq. 2–4 kernel actually scored across all queries.
    pub scored_nodes: u64,
    /// Grid cells visited (indexed path; 0 for scan).
    pub cells_probed: u64,
    /// Domains eliminated before per-node work (indexed; 0 for scan).
    pub domains_pruned: u64,
    /// Index rebuilds (indexed; 0 for scan).
    pub rebuilds: u64,
    /// Participants selected across all queries (identical per pair).
    pub participants: u64,
    /// Standby-tail nodes across all queries (identical per pair).
    pub standby: u64,
    /// FNV-1a hash over every selection's full structure.
    pub selection_hash: u64,
}

/// Folds one selection into an FNV-1a accumulator: node ids, ranking
/// bits and supporting-cluster structure for participants and standby
/// alike. Bitwise — two paths produce equal hashes iff their selections
/// are bit-identical in every float.
fn fold_selection(mut h: u64, qid: u64, sel: &Selection) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(qid);
    for (tag, list) in [(1u64, &sel.participants), (2u64, &sel.standby)] {
        eat(tag);
        eat(list.len() as u64);
        for p in list {
            eat(p.node.0 as u64);
            eat(p.ranking.to_bits());
            eat(p.supporting_clusters.len() as u64);
            for sc in &p.supporting_clusters {
                eat(sc.cluster_id as u64);
                eat(sc.overlap.to_bits());
                eat(sc.size as u64);
            }
        }
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Runs the sweep over `sizes`, asserting scan/indexed bit-identity on
/// every query, and returns a `(scan, indexed)` row pair per size.
///
/// # Panics
/// Panics if any query's indexed selection diverges from the scan — the
/// sweep is an equivalence proof first and a scaling experiment second.
pub fn run_sweep(sizes: &[usize]) -> Vec<ScaleRow> {
    let workload = scale_workload();
    let mut rows = Vec::new();
    for &n in sizes {
        let build_start = Instant::now();
        let network = synthetic_fleet(n, CLUSTERS_PER_NODE, FLEET_SEED);
        println!(
            "scale: fleet of {n} summary-only nodes built in {:.2?}",
            build_start.elapsed()
        );

        let scan = QueryDriven::top_l(crate::L_SELECT);
        let indexed =
            IndexedQueryDriven::new(QueryDriven::top_l(crate::L_SELECT), GridConfig::default());

        let mut scan_hash = FNV_OFFSET;
        let mut indexed_hash = FNV_OFFSET;
        let mut participants = 0u64;
        let mut standby = 0u64;
        let (mut scan_nanos, mut indexed_nanos) = (0u128, 0u128);
        for q in &workload.queries {
            let ctx = SelectionContext::new(&network, q);
            let t = Instant::now();
            let s = scan.select(&ctx);
            scan_nanos += t.elapsed().as_nanos();
            let t = Instant::now();
            let i = indexed.select(&ctx);
            indexed_nanos += t.elapsed().as_nanos();
            assert_eq!(
                s,
                i,
                "indexed selection diverged from the full scan at {n} nodes, query {}",
                q.id()
            );
            scan_hash = fold_selection(scan_hash, q.id(), &s);
            indexed_hash = fold_selection(indexed_hash, q.id(), &i);
            participants += s.participants.len() as u64;
            standby += s.standby.len() as u64;
        }
        assert_eq!(scan_hash, indexed_hash, "selection hashes must agree");

        let stats = indexed.index_stats();
        let q = workload.queries.len();
        println!(
            "scale: {n:>9} nodes  scan {:>12.0} ns/query  indexed {:>12.0} ns/query  \
             ({} candidates / {} scored, {} domains pruned)",
            scan_nanos as f64 / q as f64,
            indexed_nanos as f64 / q as f64,
            stats.candidates,
            n as u64 * q as u64,
            stats.domains_pruned,
        );
        rows.push(ScaleRow {
            nodes: n,
            path: "scan",
            queries: q,
            scored_nodes: n as u64 * q as u64,
            cells_probed: 0,
            domains_pruned: 0,
            rebuilds: 0,
            participants,
            standby,
            selection_hash: scan_hash,
        });
        rows.push(ScaleRow {
            nodes: n,
            path: "indexed",
            queries: q,
            scored_nodes: stats.candidates,
            cells_probed: stats.cells_probed,
            domains_pruned: stats.domains_pruned,
            rebuilds: stats.rebuilds,
            participants,
            standby,
            selection_hash: indexed_hash,
        });
    }
    rows
}

/// Renders rows into the committed CSV shape.
pub fn csv_rows(rows: &[ScaleRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.path.to_string(),
                r.queries.to_string(),
                r.scored_nodes.to_string(),
                r.cells_probed.to_string(),
                r.domains_pruned.to_string(),
                r.rebuilds.to_string(),
                r.participants.to_string(),
                r.standby.to_string(),
                format!("{:016x}", r.selection_hash),
            ]
        })
        .collect()
}

/// CSV header (column meanings in [`ScaleRow`]).
pub const CSV_HEADER: &str =
    "nodes,path,queries,scored_nodes,cells_probed,domains_pruned,rebuilds,participants,standby,selection_hash";

/// The `repro scale` entry point: full sweep, CSV into `out_dir`.
pub fn run_scale(out_dir: &Path) -> std::io::Result<()> {
    let rows = run_sweep(&FLEET_SIZES);
    let path = out_dir.join("fig11_scale.csv");
    report::write_csv(&path, CSV_HEADER, &csv_rows(&rows))?;
    println!("(scaling series -> {})", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fleet_is_deterministic_and_summary_only() {
        let a = synthetic_fleet(64, 3, 9);
        let b = synthetic_fleet(64, 3, 9);
        assert_eq!(a.nodes().len(), 64);
        for (x, y) in a.nodes().iter().zip(b.nodes()) {
            assert!(x.is_quantized());
            assert_eq!(x.summaries(), y.summaries());
            // Summary-only: the representative dataset is one row, not a
            // cloned training set.
            assert_eq!(x.data().len(), 1);
        }
        // Different seed, different fleet.
        let c = synthetic_fleet(64, 3, 10);
        assert_ne!(a.nodes()[0].summaries(), c.nodes()[0].summaries());
    }

    #[test]
    fn rects_stay_inside_the_space() {
        let net = synthetic_fleet(200, 3, 77);
        let space = scale_space();
        for node in net.nodes() {
            for s in node.summaries() {
                for (d, iv) in s.rect.intervals().iter().enumerate() {
                    let sp = &space.intervals()[d];
                    assert!(iv.lo() >= sp.lo() && iv.hi() <= sp.hi());
                }
            }
        }
    }

    #[test]
    fn sweep_rows_pair_up_and_agree() {
        let rows = run_sweep(&[300]);
        assert_eq!(rows.len(), 2);
        let (scan, indexed) = (&rows[0], &rows[1]);
        assert_eq!(scan.path, "scan");
        assert_eq!(indexed.path, "indexed");
        assert_eq!(scan.selection_hash, indexed.selection_hash);
        assert_eq!(scan.participants, indexed.participants);
        assert!(scan.participants > 0, "sweep should select someone");
        assert_eq!(scan.scored_nodes, 300 * N_QUERIES as u64);
        assert!(
            indexed.scored_nodes < scan.scored_nodes,
            "index should prune at least one node"
        );
        assert_eq!(indexed.rebuilds, 1);
    }

    #[test]
    fn csv_rows_are_structural_only() {
        let rows = run_sweep(&[120]);
        let a = csv_rows(&rows);
        let b = csv_rows(&run_sweep(&[120]));
        assert_eq!(a, b, "CSV rows must be run-to-run identical");
        assert_eq!(CSV_HEADER.split(',').count(), a[0].len());
    }
}
