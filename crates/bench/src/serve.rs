//! A live observability endpoint for a running federation leader.
//!
//! Hand-rolled HTTP/1.1 over [`std::net::TcpListener`] — the workspace
//! must build with the crates-io registry unreachable, so there is no
//! hyper/axum here, just enough of the protocol for scrapers:
//!
//! | path       | body                                                  |
//! |------------|-------------------------------------------------------|
//! | `/healthz` | `ok` (text/plain)                                     |
//! | `/metrics` | Prometheus text exposition of the global registry     |
//! | `/trace`   | Chrome trace-event JSON of the trace buffer           |
//!
//! `repro serve` binds the listener and serves forever; `repro serve
//! --once` is the self-test mode `scripts/verify.sh` runs: it seeds a
//! tiny faulty+traced workload, probes every endpoint over a plain
//! [`std::net::TcpStream`], asserts the responses, and exits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use qens::telemetry;

/// Upper bound on accepted request head size (request line + headers).
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// What `serve` should bind and how long it should live.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `host:port` to bind; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Self-test mode: seed a workload, probe the endpoints once,
    /// assert, exit.
    pub once: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9464".to_string(),
            once: false,
        }
    }
}

/// One parsed request line: `GET /metrics HTTP/1.1` → `("GET", "/metrics")`.
fn parse_request_head(stream: &mut TcpStream) -> std::io::Result<(String, String)> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.len() > MAX_REQUEST_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line too long",
        ));
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    // Drain the header block (we never need the headers themselves).
    let mut drained = line.len();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        drained += n;
        if n == 0 || header == "\r\n" || header == "\n" || drained > MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Serves exactly one connection: parse, route, respond.
fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    let (method, path) = parse_request_head(&mut stream)?;
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match path.split('?').next().unwrap_or("") {
        "/healthz" => write_response(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => {
            let body = telemetry::export::to_prometheus(&telemetry::global().snapshot());
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/trace" => {
            let body = telemetry::trace::export_chrome(None);
            write_response(&mut stream, "200 OK", "application/json", &body)
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /healthz or /trace\n",
        ),
    }
}

/// A tiny faulty + traced workload so the endpoints have something to
/// show: guarantees at least one `qens_fault_*` counter (retries /
/// dropped participants) and `qens_trace_*` counters in `/metrics`, and
/// a non-empty span tree in `/trace`.
pub fn seed_observable_workload() {
    use qens::prelude::*;
    telemetry::trace::set_mode(Some(telemetry::trace::Clock::Wall));
    telemetry::trace::clear();
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .telemetry(true)
        .faults(
            FaultSpec::unreliable_edge(7)
                .with_dropout(0.3)
                .with_link_loss(0.6),
        )
        .fault_tolerance(FaultTolerance::full_strength())
        .build();
    for qid in 0..3u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        // Quorum loss under a hostile plan is acceptable here — every
        // attempt still records metrics and trace events.
        let _ = fed.run_query(&q, &PolicyKind::query_driven(2));
    }
}

/// One self-probe: connect, send a minimal GET, return `(status, body)`.
fn probe(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Runs the endpoint. Blocking; returns only in `--once` mode (or on a
/// bind error).
///
/// # Panics
/// In `--once` mode, panics if any endpoint misbehaves — that is the
/// point (verify.sh treats the panic as a failed gate).
pub fn serve(opts: &ServeOptions) -> std::io::Result<()> {
    if opts.once {
        return serve_once();
    }
    telemetry::set_enabled(true);
    let listener = TcpListener::bind(&opts.addr)?;
    println!(
        "serving http://{} (/metrics, /healthz, /trace); Ctrl-C to stop",
        listener.local_addr()?
    );
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                if let Err(e) = handle_connection(s) {
                    eprintln!("connection error: {e}");
                }
            }
            Err(e) => eprintln!("accept error: {e}"),
        }
    }
    Ok(())
}

/// The `--once` self-test: ephemeral port, three probes, hard asserts.
fn serve_once() -> std::io::Result<()> {
    seed_observable_workload();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    const PROBES: usize = 4;
    let server = std::thread::spawn(move || {
        for _ in 0..PROBES {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Err(e) = handle_connection(stream) {
                        eprintln!("connection error: {e}");
                    }
                }
                Err(e) => eprintln!("accept error: {e}"),
            }
        }
    });

    let (health_status, health_body) = probe(&addr, "/healthz")?;
    assert_eq!(health_status, 200, "/healthz must return 200");
    assert!(health_body.contains("ok"), "/healthz body must say ok");

    let (metrics_status, metrics_body) = probe(&addr, "/metrics")?;
    assert_eq!(metrics_status, 200, "/metrics must return 200");
    assert!(
        metrics_body.lines().any(|l| l.starts_with("qens_")),
        "/metrics must expose qens_* series"
    );
    assert!(
        metrics_body.contains("qens_fault_"),
        "/metrics must expose at least one qens_fault_* series"
    );
    assert!(
        metrics_body.contains("qens_trace_"),
        "/metrics must expose at least one qens_trace_* series"
    );
    assert!(
        metrics_body.contains("# HELP") && metrics_body.contains("# TYPE"),
        "/metrics must carry HELP/TYPE metadata"
    );

    let (trace_status, trace_body) = probe(&addr, "/trace")?;
    assert_eq!(trace_status, 200, "/trace must return 200");
    assert!(
        trace_body.contains("\"traceEvents\"") && trace_body.contains("\"ph\":\"B\""),
        "/trace must contain a non-empty Chrome trace"
    );

    let (missing_status, _) = probe(&addr, "/nope")?;
    assert_eq!(missing_status, 404, "unknown paths must 404");

    server.join().expect("server thread");
    let series = metrics_body
        .lines()
        .filter(|l| l.starts_with("qens_"))
        .count();
    println!(
        "serve --once OK: /healthz 200, /metrics 200 ({series} qens_* samples), /trace 200 ({} bytes)",
        trace_body.len()
    );
    telemetry::trace::set_mode(None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full `--once` loop is exercised by `scripts/verify.sh`; here
    /// we pin the request-head parser and the response writer.
    #[test]
    fn http_round_trip_over_a_local_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            handle_connection(stream).unwrap();
        });
        let (status, body) = probe(&addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        server.join().unwrap();
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                handle_connection(stream).unwrap();
            }
        });
        let (status, _) = probe(&addr, "/definitely-not-here").unwrap();
        assert_eq!(status, 404);
        // POST by hand.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.join().unwrap();
    }
}
