//! A live observability endpoint for a running federation leader.
//!
//! Hand-rolled HTTP/1.1 over [`std::net::TcpListener`] — the workspace
//! must build with the crates-io registry unreachable, so there is no
//! hyper/axum here, just enough of the protocol for scrapers:
//!
//! | path           | body                                                 |
//! |----------------|------------------------------------------------------|
//! | `/healthz`     | `ok` (text/plain)                                    |
//! | `/metrics`     | Prometheus text exposition of the global registry    |
//! | `/trace`       | Chrome trace-event JSON of the trace buffer          |
//! | `/profile`     | Folded-stack profile of the trace buffer (text)      |
//! | `/profile.svg` | The same profile as an SVG flamegraph                |
//! | `/slowest`     | Flight-recorder top-K slowest queries (JSON)         |
//! | `/slo`         | SLO objective, good/bad totals and burn rates (JSON) |
//!
//! Malformed requests never kill the process: empty, truncated,
//! oversized and non-UTF-8 request lines all get a `400` with a body,
//! non-GET methods get a `405` with an `Allow` header, and unknown
//! paths get a `404` listing every endpoint.
//!
//! `repro serve` binds the listener and serves forever; `repro serve
//! --once` is the self-test mode `scripts/verify.sh` runs: it seeds a
//! tiny faulty+traced workload, probes every endpoint (plus the error
//! paths) over a plain [`std::net::TcpStream`], asserts the responses,
//! and exits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use qens::telemetry;

/// Upper bound on accepted request head size (request line + headers).
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// What `serve` should bind and how long it should live.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `host:port` to bind; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Self-test mode: seed a workload, probe the endpoints once,
    /// assert, exit.
    pub once: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9464".to_string(),
            once: false,
        }
    }
}

/// The outcome of reading one request head off the wire.
enum ParsedRequest {
    /// A well-formed request line: method and path.
    Request { method: String, path: String },
    /// A malformed head (empty, truncated, oversized, not UTF-8, …)
    /// with a human-readable reason — answered with a `400`.
    Bad { reason: &'static str },
}

/// Reads one request head, never trusting the peer: the reader is
/// capped at [`MAX_REQUEST_BYTES`] (+slack for the final newline), so an
/// endless request line runs out of bytes instead of memory, and a line
/// that is not UTF-8 or has no terminator is reported as `Bad` rather
/// than bubbled up as an I/O error that would drop the connection with
/// no response at all.
fn parse_request_head(stream: &mut TcpStream) -> std::io::Result<ParsedRequest> {
    let mut reader = BufReader::new(Read::by_ref(stream).take(MAX_REQUEST_BYTES as u64 + 2));
    let mut line = String::new();
    let n = match reader.read_line(&mut line) {
        Ok(n) => n,
        // read_line maps non-UTF-8 bytes to InvalidData; that is a
        // protocol error by the peer, not a server failure.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Ok(ParsedRequest::Bad {
                reason: "request line is not valid UTF-8",
            })
        }
        Err(e) => return Err(e),
    };
    if n == 0 {
        return Ok(ParsedRequest::Bad {
            reason: "empty request",
        });
    }
    if !line.ends_with('\n') {
        // The take() limit was hit (oversized line) or the peer hung up
        // mid-line (truncated request). Either way: no parseable head.
        return Ok(ParsedRequest::Bad {
            reason: "request line truncated or longer than the 16 KiB limit",
        });
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(ParsedRequest::Bad {
            reason: "malformed request line (expected: METHOD PATH HTTP/1.1)",
        });
    };
    let (method, path) = (method.to_string(), path.to_string());
    // Drain the header block (we never need the headers themselves); the
    // take() cap bounds this loop too.
    loop {
        let mut header = String::new();
        let n = match reader.read_line(&mut header) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => continue,
            Err(e) => return Err(e),
        };
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    Ok(ParsedRequest::Request { method, path })
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

const ENDPOINT_LIST: &str = "/healthz, /metrics, /trace, /profile, /profile.svg, /slowest, /slo";

/// Serves exactly one connection: parse, route, respond.
fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    let (method, path) = match parse_request_head(&mut stream)? {
        ParsedRequest::Request { method, path } => (method, path),
        ParsedRequest::Bad { reason } => {
            // Drain what the peer already sent (bounded, with a read
            // timeout) before responding: closing a socket with unread
            // bytes pending RSTs the connection, and the 400 would
            // never reach the client.
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
            let _ = std::io::copy(
                &mut Read::by_ref(&mut stream).take(1 << 20),
                &mut std::io::sink(),
            );
            let _ = stream.set_read_timeout(None);
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "",
                &format!("bad request: {reason}\n"),
            );
        }
    };
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "Allow: GET\r\n",
            &format!("method {method} not allowed; only GET is supported\n"),
        );
    }
    match path.split('?').next().unwrap_or("") {
        "/healthz" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; charset=utf-8",
            "",
            "ok\n",
        ),
        "/metrics" => {
            let body = telemetry::export::to_prometheus(&telemetry::global().snapshot());
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                "",
                &body,
            )
        }
        "/trace" => {
            let body = telemetry::trace::export_chrome(None);
            write_response(&mut stream, "200 OK", "application/json", "", &body)
        }
        "/profile" => {
            let profile = telemetry::profile::aggregate(&telemetry::trace::snapshot_events());
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; charset=utf-8",
                "",
                &telemetry::profile::to_folded(&profile),
            )
        }
        "/profile.svg" => {
            let profile = telemetry::profile::aggregate(&telemetry::trace::snapshot_events());
            let unit = match telemetry::trace::mode() {
                Some(telemetry::trace::Clock::Logical) => "ticks",
                _ => "ns",
            };
            let body = telemetry::profile::to_svg(&profile, "qens live profile", unit);
            write_response(&mut stream, "200 OK", "image/svg+xml", "", &body)
        }
        "/slowest" => {
            let body = telemetry::profile::slowest_to_json();
            write_response(&mut stream, "200 OK", "application/json", "", &body)
        }
        "/slo" => {
            let body = telemetry::profile::slo_to_json();
            write_response(&mut stream, "200 OK", "application/json", "", &body)
        }
        other => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "",
            &format!("no endpoint {other}; try one of: {ENDPOINT_LIST}\n"),
        ),
    }
}

/// A tiny faulty + traced workload so the endpoints have something to
/// show: guarantees at least one `qens_fault_*` counter (retries /
/// dropped participants) and `qens_trace_*` counters in `/metrics`, and
/// a non-empty span tree in `/trace`.
pub fn seed_observable_workload() {
    use qens::prelude::*;
    telemetry::trace::set_mode(Some(telemetry::trace::Clock::Wall));
    telemetry::trace::clear();
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .telemetry(true)
        .faults(
            FaultSpec::unreliable_edge(7)
                .with_dropout(0.3)
                .with_link_loss(0.6),
        )
        .fault_tolerance(FaultTolerance::full_strength())
        .build();
    for qid in 0..3u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        // Quorum loss under a hostile plan is acceptable here — every
        // attempt still records metrics and trace events.
        let _ = fed.run_query(&q, &PolicyKind::query_driven(2));
    }
}

/// One self-probe: connect, send a minimal GET, return `(status, body)`.
fn probe(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Runs the endpoint. Blocking; returns only in `--once` mode (or on a
/// bind error).
///
/// # Panics
/// In `--once` mode, panics if any endpoint misbehaves — that is the
/// point (verify.sh treats the panic as a failed gate).
pub fn serve(opts: &ServeOptions) -> std::io::Result<()> {
    if opts.once {
        return serve_once();
    }
    telemetry::set_enabled(true);
    let listener = TcpListener::bind(&opts.addr)?;
    println!(
        "serving http://{} ({ENDPOINT_LIST}); Ctrl-C to stop",
        listener.local_addr()?
    );
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                if let Err(e) = handle_connection(s) {
                    eprintln!("connection error: {e}");
                }
            }
            Err(e) => eprintln!("accept error: {e}"),
        }
    }
    Ok(())
}

/// Sends raw bytes and returns the status code of whatever came back
/// (0 when the server sent nothing) — for probing the malformed-request
/// error paths.
fn probe_raw(addr: &str, request: &[u8]) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request)?;
    // Half-close our sending side so a server blocked in read_line sees
    // EOF (the truncated-request case) instead of waiting forever.
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8_lossy(&response).into_owned();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// The `--once` self-test: ephemeral port, every endpoint plus the
/// error paths probed once, hard asserts.
fn serve_once() -> std::io::Result<()> {
    seed_observable_workload();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    const PROBES: usize = 10;
    let server = std::thread::spawn(move || {
        for _ in 0..PROBES {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Err(e) = handle_connection(stream) {
                        eprintln!("connection error: {e}");
                    }
                }
                Err(e) => eprintln!("accept error: {e}"),
            }
        }
    });

    let (health_status, health_body) = probe(&addr, "/healthz")?;
    assert_eq!(health_status, 200, "/healthz must return 200");
    assert!(health_body.contains("ok"), "/healthz body must say ok");

    let (metrics_status, metrics_body) = probe(&addr, "/metrics")?;
    assert_eq!(metrics_status, 200, "/metrics must return 200");
    assert!(
        metrics_body.lines().any(|l| l.starts_with("qens_")),
        "/metrics must expose qens_* series"
    );
    assert!(
        metrics_body.contains("qens_fault_"),
        "/metrics must expose at least one qens_fault_* series"
    );
    assert!(
        metrics_body.contains("qens_trace_"),
        "/metrics must expose at least one qens_trace_* series"
    );
    assert!(
        metrics_body.contains("qens_build_info{") && metrics_body.contains("qens_uptime_seconds"),
        "/metrics must carry the build_info and uptime self-description"
    );
    assert!(
        metrics_body.contains("# HELP") && metrics_body.contains("# TYPE"),
        "/metrics must carry HELP/TYPE metadata"
    );

    let (trace_status, trace_body) = probe(&addr, "/trace")?;
    assert_eq!(trace_status, 200, "/trace must return 200");
    assert!(
        trace_body.contains("\"traceEvents\"") && trace_body.contains("\"ph\":\"B\""),
        "/trace must contain a non-empty Chrome trace"
    );

    let (profile_status, profile_body) = probe(&addr, "/profile")?;
    assert_eq!(profile_status, 200, "/profile must return 200");
    assert!(
        profile_body.lines().any(|l| l.starts_with("query")),
        "/profile must contain folded stacks rooted at the query span"
    );
    assert!(
        profile_body.contains("query;fedlearn.round"),
        "/profile must attribute time to pipeline phases"
    );

    let (svg_status, svg_body) = probe(&addr, "/profile.svg")?;
    assert_eq!(svg_status, 200, "/profile.svg must return 200");
    assert!(
        svg_body.starts_with("<svg ") && svg_body.trim_end().ends_with("</svg>"),
        "/profile.svg must be a complete SVG document"
    );

    let (slowest_status, slowest_body) = probe(&addr, "/slowest")?;
    assert_eq!(slowest_status, 200, "/slowest must return 200");
    assert!(
        slowest_body.starts_with("{\"slowest\":[") && slowest_body.contains("\"query_id\""),
        "/slowest must list the flight recorder's retained queries"
    );

    let (slo_status, slo_body) = probe(&addr, "/slo")?;
    assert_eq!(slo_status, 200, "/slo must return 200");
    assert!(
        slo_body.contains("\"objective_nanos\"") && slo_body.contains("\"burn_rate_1x\""),
        "/slo must expose the objective and burn rates"
    );

    let (missing_status, missing_body) = probe(&addr, "/nope")?;
    assert_eq!(missing_status, 404, "unknown paths must 404");
    assert!(
        missing_body.contains("/profile"),
        "the 404 body must list the available endpoints"
    );

    // Error paths: an oversized request line and a truncated one must
    // both get a 400, not kill the server thread.
    let mut oversized = Vec::from(&b"GET /"[..]);
    oversized.resize(MAX_REQUEST_BYTES + 64, b'a');
    oversized.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let (oversized_status, _) = probe_raw(&addr, &oversized)?;
    assert_eq!(oversized_status, 400, "oversized request lines must 400");

    let (truncated_status, _) = probe_raw(&addr, b"GET /metrics")?;
    assert_eq!(truncated_status, 400, "truncated request lines must 400");

    server.join().expect("server thread");
    let series = metrics_body
        .lines()
        .filter(|l| l.starts_with("qens_"))
        .count();
    println!(
        "serve --once OK: /healthz /metrics ({series} qens_* samples) /trace /profile \
         /profile.svg /slowest /slo all 200; 404 + 2x400 error paths exercised"
    );
    telemetry::trace::set_mode(None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full `--once` loop is exercised by `scripts/verify.sh`; here
    /// we pin the request-head parser and the response writer.
    #[test]
    fn http_round_trip_over_a_local_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            handle_connection(stream).unwrap();
        });
        let (status, body) = probe(&addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        server.join().unwrap();
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                handle_connection(stream).unwrap();
            }
        });
        let (status, body) = probe(&addr, "/definitely-not-here").unwrap();
        assert_eq!(status, 404);
        assert!(
            body.contains("/slowest") && body.contains("/slo"),
            "404 body must list the endpoints"
        );
        // POST by hand.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        assert!(
            response.contains("Allow: GET"),
            "405 must carry an Allow header"
        );
        server.join().unwrap();
    }

    #[test]
    fn malformed_requests_get_a_400_not_a_dead_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..4 {
                let (stream, _) = listener.accept().unwrap();
                handle_connection(stream).unwrap();
            }
        });
        // Truncated request line (no newline, half-closed).
        let (status, body) = probe_raw(&addr, b"GET /metrics").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("truncated"));
        // Oversized request line.
        let mut oversized = Vec::from(&b"GET /"[..]);
        oversized.resize(MAX_REQUEST_BYTES + 64, b'x');
        oversized.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let (status, _) = probe_raw(&addr, &oversized).unwrap();
        assert_eq!(status, 400);
        // Empty request.
        let (status, body) = probe_raw(&addr, b"").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("empty"));
        // Non-UTF-8 request line.
        let (status, body) = probe_raw(&addr, b"\xff\xfe\xfd barbarism\r\n\r\n").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("UTF-8"));
        server.join().unwrap();
    }

    #[test]
    fn profile_endpoints_serve_current_buffers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (stream, _) = listener.accept().unwrap();
                handle_connection(stream).unwrap();
            }
        });
        // Profile of an empty (or foreign) buffer is still a valid
        // document — the endpoints never fail, they render what's there.
        let (status, _) = probe(&addr, "/profile").unwrap();
        assert_eq!(status, 200);
        let (status, body) = probe(&addr, "/slowest").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"slowest\":["));
        let (status, body) = probe(&addr, "/slo").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"objective_nanos\""));
        server.join().unwrap();
    }
}
