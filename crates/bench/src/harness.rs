//! A dependency-free micro-benchmark harness.
//!
//! The Criterion benches are feature-gated (`criterion-bench`) because
//! the default build path must work without crates-io; this harness keeps
//! the hot-kernel numbers measurable offline. It is deliberately small:
//! warm-up, iteration-count calibration to a target batch time, a few
//! batches, then mean/min per-iteration nanoseconds.
//!
//! Running the bench binary with `--test` (what `cargo test` passes to
//! `harness = false` targets) or with `QENS_BENCH_FAST=1` switches to a
//! single-iteration smoke mode, so the suite stays fast under `cargo
//! test -q` while still executing every kernel once.

use std::time::Instant;

pub use std::hint::black_box;

/// How long one calibrated measurement batch should take.
const TARGET_BATCH_NANOS: u128 = 20_000_000; // 20 ms
/// Batches per benchmark (the minimum over batches is the headline).
const BATCHES: usize = 5;

/// One benchmark's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per measurement batch.
    pub iters: u64,
    /// Mean nanoseconds per iteration across batches.
    pub mean_nanos: f64,
    /// Best (minimum) batch's nanoseconds per iteration — the least
    /// noise-contaminated number, which comparisons should use.
    pub min_nanos: f64,
}

/// Collects benchmark results and prints a Criterion-like table.
#[derive(Debug, Default)]
pub struct Harness {
    fast: bool,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness configured from the process arguments/environment
    /// (see the module docs for the smoke-mode triggers).
    pub fn from_env() -> Self {
        let fast = std::env::args().any(|a| a == "--test")
            || std::env::var("QENS_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
        Self {
            fast,
            results: Vec::new(),
        }
    }

    /// Whether the harness is in single-iteration smoke mode.
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// Times `f`, records the result and prints one table row.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) -> &BenchResult {
        let result = if self.fast {
            let start = Instant::now();
            f();
            let nanos = start.elapsed().as_nanos() as f64;
            BenchResult {
                name: name.to_string(),
                iters: 1,
                mean_nanos: nanos,
                min_nanos: nanos,
            }
        } else {
            Self::measure(name, &mut f)
        };
        println!(
            "{:<40} {:>14}/iter (min {:>14}, {} iters)",
            result.name,
            format_nanos(result.mean_nanos),
            format_nanos(result.min_nanos),
            result.iters
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    fn measure(name: &str, f: &mut impl FnMut()) -> BenchResult {
        // Warm-up and calibration: run until ~one target batch has
        // elapsed, counting iterations.
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while warm_start.elapsed().as_nanos() < TARGET_BATCH_NANOS {
            f();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
        let iters = u64::try_from((TARGET_BATCH_NANOS / per_iter.max(1)).max(1)).unwrap_or(1);

        let mut batch_nanos: Vec<f64> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            batch_nanos.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = batch_nanos.iter().sum::<f64>() / batch_nanos.len() as f64;
        let min = batch_nanos.iter().copied().fold(f64::INFINITY, f64::min);
        BenchResult {
            name: name.to_string(),
            iters,
            mean_nanos: mean,
            min_nanos: min,
        }
    }

    /// All results so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The named result, if that benchmark ran.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

fn format_nanos(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.3}s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.3}ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.3}us", n / 1e3)
    } else {
        format!("{n:.1}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_runs_once() {
        let mut h = Harness {
            fast: true,
            results: Vec::new(),
        };
        let mut calls = 0u32;
        h.bench("noop", || calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.result("noop").unwrap().iters, 1);
    }

    #[test]
    fn results_are_queryable_by_name() {
        let mut h = Harness {
            fast: true,
            results: Vec::new(),
        };
        h.bench("a", || {});
        h.bench("b", || {});
        assert!(h.result("a").is_some());
        assert!(h.result("missing").is_none());
    }
}
