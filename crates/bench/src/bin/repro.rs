//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro            # everything, quick scale
//! cargo run --release -p bench --bin repro -- fig7    # one experiment
//! cargo run --release -p bench --bin repro -- all --paper   # full paper scale
//! ```
//!
//! Printed rows state the measured values next to the paper's; CSV series
//! land in `results/`.

use std::path::PathBuf;

use bench::{figures, report, tables, ExperimentScale};
use qens::prelude::ModelKind;

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

fn run_table1(scale: ExperimentScale) {
    let t = tables::table1(scale);
    println!(
        "{}",
        report::render_loss_comparison(
            "Table I: expected loss, homogeneous participants",
            (24.45, 24.70),
            &t,
            "All-node selection",
        )
    );
}

fn run_table2(scale: ExperimentScale) {
    let t = tables::table2(scale);
    println!(
        "{}",
        report::render_loss_comparison(
            "Table II: expected loss, heterogeneous participants",
            (9.70, 178.10),
            &t,
            "Compatible-node selection",
        )
    );
}

fn run_table3() {
    println!("Table III: model hyper-parameters (ours == paper)");
    println!("{:<18} {:>8} {:>8}", "", "LR", "NN");
    for (name, lr, nn) in tables::table3() {
        println!("{name:<18} {lr:>8} {nn:>8}");
    }
    println!();
}

fn run_fig1(scale: ExperimentScale) {
    println!(
        "{}",
        report::render_pair(
            "Fig. 1: similar participants (homogeneous population)",
            &figures::fig1(scale)
        )
    );
}

fn run_fig2(scale: ExperimentScale) {
    println!(
        "{}",
        report::render_pair(
            "Fig. 2: dissimilar participants (heterogeneous population)",
            &figures::fig2(scale)
        )
    );
}

fn run_fig5(scale: ExperimentScale) {
    let (query, clusters) = figures::fig5(scale);
    println!("Fig. 5: query projected onto a participant's clustered space");
    println!("{}", report::render_fig5(&query, &clusters));
}

fn run_fig6(scale: ExperimentScale) {
    let (query, needs) = figures::fig6(scale);
    println!("Fig. 6: data needed by the query vs data available");
    println!("{}", report::render_fig6(&query, &needs));
}

fn run_fig7(scale: ExperimentScale) {
    for (model, label) in [
        (ModelKind::Linear, "LR"),
        (ModelKind::Neural { hidden: scale.nn_hidden() }, "NN"),
    ] {
        let rows = figures::fig7(scale, model);
        println!("{}", report::render_fig7(label, &rows));
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.6}", r.mean_loss.unwrap_or(f64::NAN)),
                    format!("{:.6}", r.mean_data_fraction),
                    format!("{:.6}", r.mean_sim_seconds),
                    r.failed_queries.to_string(),
                ]
            })
            .collect();
        report::write_csv(
            &results_dir().join(format!("fig7_{}.csv", label.to_lowercase())),
            "policy,mean_loss,mean_data_fraction,mean_sim_seconds,failed",
            &csv_rows,
        )
        .expect("write fig7 csv");
    }
    println!("(series written to results/fig7_lr.csv, results/fig7_nn.csv)\n");
}

fn run_extended(scale: ExperimentScale) {
    let rows = figures::extended_comparison(scale);
    println!("{}", report::render_fig7("LR, all implemented mechanisms", &rows));
}

fn run_fig8_fig9(scale: ExperimentScale) {
    let series = figures::fig8_fig9(scale);
    println!("{}", report::render_fig8_fig9(&series));
    report::write_csv(
        &results_dir().join("fig8_fig9.csv"),
        "query,with_seconds,without_seconds,with_fraction,without_fraction",
        &report::selectivity_csv_rows(&series),
    )
    .expect("write fig8/fig9 csv");
    println!("(series written to results/fig8_fig9.csv)\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        ExperimentScale::Paper
    } else {
        ExperimentScale::Quick
    };
    let exp = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    println!("== qens paper reproduction ({scale:?} scale) ==\n");
    match exp.as_str() {
        "table1" => run_table1(scale),
        "table2" => run_table2(scale),
        "table3" => run_table3(),
        "fig1" => run_fig1(scale),
        "fig2" => run_fig2(scale),
        "fig5" => run_fig5(scale),
        "fig6" => run_fig6(scale),
        "fig7" => run_fig7(scale),
        "fig8" | "fig9" | "fig8_fig9" => run_fig8_fig9(scale),
        "extended" => run_extended(scale),
        "all" => {
            run_table1(scale);
            run_table2(scale);
            run_table3();
            run_fig1(scale);
            run_fig2(scale);
            run_fig5(scale);
            run_fig6(scale);
            run_fig7(scale);
            run_fig8_fig9(scale);
            run_extended(scale);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of \
                 table1|table2|table3|fig1|fig2|fig5|fig6|fig7|fig8|fig9|extended|all [--paper]"
            );
            std::process::exit(2);
        }
    }
}
