//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro            # everything, quick scale
//! cargo run --release -p bench --bin repro -- fig7    # one experiment
//! cargo run --release -p bench --bin repro -- all --paper   # full paper scale
//! cargo run --release -p bench --bin repro -- --smoke # tiny end-to-end check
//! cargo run --release -p bench --bin repro -- serve   # live /metrics endpoint
//! cargo run --release -p bench --bin repro -- bench --check  # perf harness
//! cargo run --release -p bench --bin repro -- profile # flamegraph + SLO report
//! cargo run --release -p bench --bin repro -- scale   # Fig. 11 fleet-size sweep
//! ```
//!
//! Printed rows state the measured values next to the paper's; CSV series
//! land in `results/`, alongside `results/telemetry.json` — the full
//! metric snapshot (per-query deltas included) of the run.

use std::path::PathBuf;

use bench::{figures, report, tables, ExperimentScale};
use qens::prelude::ModelKind;
use qens::telemetry;

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Writes the global telemetry snapshot (plus the per-query ring) to
/// `results/telemetry.json` and returns the snapshot for inspection.
fn write_telemetry() -> telemetry::Snapshot {
    let snap = telemetry::global().snapshot();
    let queries = telemetry::global().query_snapshots();
    let doc = telemetry::export::to_json(&snap, &queries);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("telemetry.json");
    std::fs::write(&path, doc).expect("write telemetry.json");
    println!(
        "(telemetry: {} counters, {} histograms, {} per-query snapshots -> {})",
        snap.counters.len(),
        snap.histograms.len(),
        queries.len(),
        path.display()
    );
    snap
}

/// The `--smoke` fast path: a tiny federation, a couple of queries, and
/// hard assertions that the telemetry pipeline observed every layer.
fn run_smoke() {
    use qens::prelude::*;
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .telemetry(true)
        .build();
    for qid in 0..2u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        let out = fed
            .run_query(&q, &PolicyKind::query_driven(2))
            .expect("smoke query runs");
        let loss = out
            .query_loss(fed.network(), &q)
            .expect("smoke query has data");
        assert!(loss.is_finite(), "smoke loss must be finite");
    }
    let snap = write_telemetry();
    assert!(!snap.is_empty(), "smoke run recorded no telemetry");
    // Every pipeline layer must have reported something.
    for metric in [
        "qens_cluster_kmeans_fits_total",
        "qens_selection_overlap_evals_total",
        "qens_mlkit_train_calls_total",
        "qens_fedlearn_participants_total",
        "qens_edgesim_queries_total",
    ] {
        assert!(
            snap.counter(metric).is_some_and(|v| v > 0),
            "smoke run missing {metric}"
        );
    }
    assert_eq!(
        telemetry::global().query_snapshots().len(),
        2,
        "expected one per-query snapshot per smoke query"
    );
    if let Some(h) = snap.histogram("qens_fedlearn_run_query_nanos") {
        println!(
            "run_query latency: p50 {:.0} ns, p95 {:.0} ns, p99 {:.0} ns over {} queries",
            h.p50(),
            h.p95(),
            h.p99(),
            h.count
        );
    }

    // Fault smoke: the same tiny federation under a hostile plan. The
    // trace JSON lands in results/fault_trace.json — `scripts/verify.sh`
    // diffs two runs of it (at different QENS_THREADS) byte-for-byte.
    let faulty = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .faults(FaultSpec::unreliable_edge(7).with_dropout(0.3))
        .fault_tolerance(FaultTolerance::full_strength())
        .build();
    let q = faulty.query_from_bounds(2, &[0.0, 20.0, 0.0, 45.0]);
    let out = faulty
        .run_query(&q, &PolicyKind::query_driven(2))
        .expect("fault smoke query runs");
    assert!(
        out.query_loss(faulty.network(), &q)
            .expect("fault smoke query has data")
            .is_finite(),
        "fault smoke loss must be finite"
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let trace_path = dir.join("fault_trace.json");
    std::fs::write(&trace_path, out.fault_trace.to_json()).expect("write fault_trace.json");
    println!(
        "fault smoke: {} events ({} retries, {} dropped, {} replacements) -> {}",
        out.fault_trace.len(),
        out.accounting.retries,
        out.accounting.dropped_participants,
        out.accounting.replacements,
        trace_path.display()
    );

    // Trace smoke: the same faulty query again, on the logical trace
    // clock. `scripts/verify.sh` runs --smoke twice at different
    // QENS_THREADS and byte-diffs results/trace.json — the logical
    // clock is the determinism contract that makes that meaningful.
    telemetry::trace::set_mode(Some(telemetry::trace::Clock::Logical));
    telemetry::trace::clear();
    let q = faulty.query_from_bounds(3, &[0.0, 20.0, 0.0, 45.0]);
    faulty
        .run_query(&q, &PolicyKind::query_driven(2))
        .expect("trace smoke query runs");
    let trace_json_path = dir.join("trace.json");
    telemetry::trace::write_chrome(&trace_json_path, None).expect("write trace.json");
    let trace_doc = std::fs::read_to_string(&trace_json_path).expect("read back trace.json");
    assert!(
        trace_doc.contains("\"ph\":\"B\"") && trace_doc.contains("\"ph\":\"E\""),
        "trace smoke produced no spans"
    );
    assert!(
        trace_doc.contains("fedlearn.round"),
        "trace smoke is missing the round span"
    );
    telemetry::trace::set_mode(None);
    println!(
        "trace smoke: {} bytes of Chrome trace -> {} (open in Perfetto)",
        trace_doc.len(),
        trace_json_path.display()
    );
    println!("smoke OK: pipeline + telemetry + tracing + fault engine healthy");
}

fn run_table1(scale: ExperimentScale) {
    let t = tables::table1(scale);
    println!(
        "{}",
        report::render_loss_comparison(
            "Table I: expected loss, homogeneous participants",
            (24.45, 24.70),
            &t,
            "All-node selection",
        )
    );
}

fn run_table2(scale: ExperimentScale) {
    let t = tables::table2(scale);
    println!(
        "{}",
        report::render_loss_comparison(
            "Table II: expected loss, heterogeneous participants",
            (9.70, 178.10),
            &t,
            "Compatible-node selection",
        )
    );
}

fn run_table3() {
    println!("Table III: model hyper-parameters (ours == paper)");
    println!("{:<18} {:>8} {:>8}", "", "LR", "NN");
    for (name, lr, nn) in tables::table3() {
        println!("{name:<18} {lr:>8} {nn:>8}");
    }
    println!();
}

fn run_fig1(scale: ExperimentScale) {
    println!(
        "{}",
        report::render_pair(
            "Fig. 1: similar participants (homogeneous population)",
            &figures::fig1(scale)
        )
    );
}

fn run_fig2(scale: ExperimentScale) {
    println!(
        "{}",
        report::render_pair(
            "Fig. 2: dissimilar participants (heterogeneous population)",
            &figures::fig2(scale)
        )
    );
}

fn run_fig5(scale: ExperimentScale) {
    let (query, clusters) = figures::fig5(scale);
    println!("Fig. 5: query projected onto a participant's clustered space");
    println!("{}", report::render_fig5(&query, &clusters));
}

fn run_fig6(scale: ExperimentScale) {
    let (query, needs) = figures::fig6(scale);
    println!("Fig. 6: data needed by the query vs data available");
    println!("{}", report::render_fig6(&query, &needs));
}

fn run_fig7(scale: ExperimentScale) {
    for (model, label) in [
        (ModelKind::Linear, "LR"),
        (
            ModelKind::Neural {
                hidden: scale.nn_hidden(),
            },
            "NN",
        ),
    ] {
        let rows = figures::fig7(scale, model);
        println!("{}", report::render_fig7(label, &rows));
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.6}", r.mean_loss.unwrap_or(f64::NAN)),
                    format!("{:.6}", r.mean_data_fraction),
                    format!("{:.6}", r.mean_sim_seconds),
                    r.failed_queries.to_string(),
                ]
            })
            .collect();
        report::write_csv(
            &results_dir().join(format!("fig7_{}.csv", label.to_lowercase())),
            "policy,mean_loss,mean_data_fraction,mean_sim_seconds,failed",
            &csv_rows,
        )
        .expect("write fig7 csv");
    }
    println!("(series written to results/fig7_lr.csv, results/fig7_nn.csv)\n");
}

fn run_extended(scale: ExperimentScale) {
    let rows = figures::extended_comparison(scale);
    println!(
        "{}",
        report::render_fig7("LR, all implemented mechanisms", &rows)
    );
}

fn run_fig8_fig9(scale: ExperimentScale) {
    let series = figures::fig8_fig9(scale);
    println!("{}", report::render_fig8_fig9(&series));
    report::write_csv(
        &results_dir().join("fig8_fig9.csv"),
        "query,with_seconds,without_seconds,with_fraction,without_fraction",
        &report::selectivity_csv_rows(&series),
    )
    .expect("write fig8/fig9 csv");
    println!("(series written to results/fig8_fig9.csv)\n");
}

/// `repro fleet`: the fleet-observability experiment. The scorecard
/// registry and journal record on the logical clock, so the artifacts
/// (`results/fleet.json`, `results/fig10_fleet_skew.csv`) are
/// byte-identical at any `QENS_THREADS` — `scripts/verify.sh` checks.
fn run_fleet_exp(scale: ExperimentScale) {
    bench::fleet::run_and_write(scale, &results_dir()).expect("write fleet artifacts");
}

fn run_fig8_faults(scale: ExperimentScale) {
    let rows = figures::fig8_faults(scale);
    println!("{}", report::render_fault_sweep(&rows));
    report::write_csv(
        &results_dir().join("fig8_faults.csv"),
        "dropout,policy,mean_loss,completed,failed,replacements,dropped,mean_sim_seconds",
        &report::fault_sweep_csv_rows(&rows),
    )
    .expect("write fig8_faults csv");
    // The headline claim: the standby-backed mechanism still trains
    // models at heavy dropout instead of collapsing.
    let ours_heavy = rows
        .iter()
        .filter(|r| r.policy.contains("query-driven") && r.dropout >= 0.5)
        .collect::<Vec<_>>();
    assert!(
        ours_heavy
            .iter()
            .any(|r| r.completed > 0 && r.mean_loss.is_some_and(f64::is_finite)),
        "query-driven selection should degrade gracefully at >= 50% dropout"
    );
    println!("(series written to results/fig8_faults.csv)\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `load` owns its own --smoke flag (live-server smoke), so it must
    // dispatch before the global --smoke fast path.
    if args.first().map(String::as_str) == Some("load") {
        let mut opts = bench::serve::loadgen::LoadOptions::default();
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--seed" => {
                    opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("load: --seed needs an integer");
                        std::process::exit(2);
                    });
                }
                "--queries" => {
                    opts.queries = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("load: --queries needs a positive integer");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "load: unknown flag {other:?}; expected \
                         [--seed N] [--queries N] [--smoke]"
                    );
                    std::process::exit(2);
                }
            }
        }
        telemetry::set_enabled(true);
        if opts.smoke {
            if let Err(e) = bench::serve::loadgen::smoke(&opts) {
                eprintln!("load --smoke: {e}");
                std::process::exit(1);
            }
        } else {
            let csv = bench::serve::loadgen::run_load(&opts);
            let dir = results_dir();
            std::fs::create_dir_all(&dir).expect("create results dir");
            let path = dir.join("fig9_saturation.csv");
            std::fs::write(&path, csv).expect("write fig9_saturation.csv");
            println!("(saturation table -> {})", path.display());
        }
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        let mut opts = bench::serve::ServeOptions::default();
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--once" => opts.once = true,
                "--addr" => {
                    opts.addr = it
                        .next()
                        .unwrap_or_else(|| {
                            eprintln!("serve: --addr needs a host:port value");
                            std::process::exit(2);
                        })
                        .clone();
                }
                "--duration" => {
                    let seconds: f64 =
                        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                            eprintln!("serve: --duration needs a number of seconds");
                            std::process::exit(2);
                        });
                    opts.duration = Some(seconds);
                }
                other => {
                    eprintln!(
                        "serve: unknown flag {other:?}; expected \
                         [--addr host:port] [--once] [--duration seconds]"
                    );
                    std::process::exit(2);
                }
            }
        }
        telemetry::set_enabled(true);
        if let Err(e) = bench::serve::serve(&opts) {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        let check = args.iter().any(|a| a == "--check");
        telemetry::set_enabled(true);
        if !bench::perf::run_bench(check, None) {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("scale") {
        // Fig. 11: fleet-size scaling, scan vs spatial index. The CSV is
        // structural-only (no wall clock), so scripts/verify.sh can
        // byte-diff it across QENS_THREADS values.
        if let Err(e) = bench::scale::run_scale(&results_dir()) {
            eprintln!("scale: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("profile") {
        let mut opts = bench::profile::ProfileOptions::default();
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--queries" => {
                    opts.queries = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("profile: --queries needs a positive integer");
                        std::process::exit(2);
                    });
                }
                "--out" => {
                    opts.out_dir = it.next().map(PathBuf::from).unwrap_or_else(|| {
                        eprintln!("profile: --out needs a directory path");
                        std::process::exit(2);
                    });
                }
                other => {
                    eprintln!(
                        "profile: unknown flag {other:?}; expected [--queries N] [--out dir]"
                    );
                    std::process::exit(2);
                }
            }
        }
        if let Err(e) = bench::profile::run_profile(&opts) {
            eprintln!("profile: {e}");
            std::process::exit(1);
        }
        return;
    }
    let scale = if args.iter().any(|a| a == "--paper") {
        ExperimentScale::Paper
    } else {
        ExperimentScale::Quick
    };
    let exp = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    // The reproduction always records: where a query's time goes is part
    // of the paper's argument (Figs. 8-9).
    telemetry::set_enabled(true);
    println!("== qens paper reproduction ({scale:?} scale) ==\n");
    match exp.as_str() {
        "table1" => run_table1(scale),
        "table2" => run_table2(scale),
        "table3" => run_table3(),
        "fig1" => run_fig1(scale),
        "fig2" => run_fig2(scale),
        "fig5" => run_fig5(scale),
        "fig6" => run_fig6(scale),
        "fig7" => run_fig7(scale),
        "fig8" | "fig9" | "fig8_fig9" => run_fig8_fig9(scale),
        "faults" | "fig8_faults" => run_fig8_faults(scale),
        "fleet" | "fig10" => run_fleet_exp(scale),
        "extended" => run_extended(scale),
        "all" => {
            run_table1(scale);
            run_table2(scale);
            run_table3();
            run_fig1(scale);
            run_fig2(scale);
            run_fig5(scale);
            run_fig6(scale);
            run_fig7(scale);
            run_fig8_fig9(scale);
            run_fig8_faults(scale);
            run_extended(scale);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of \
                 table1|table2|table3|fig1|fig2|fig5|fig6|fig7|fig8|fig9|faults|fleet|extended|\
                 all [--paper | --smoke], or a tool subcommand: serve|load|bench|profile|scale"
            );
            std::process::exit(2);
        }
    }
    write_telemetry();
}
