//! The `repro profile` subcommand: run a deterministic profiling
//! workload and answer "where does a query spend its time?" three ways.
//!
//! Two passes over the same federation and query mix:
//!
//! 1. **Wall clock** — real nanosecond attribution, worker spans
//!    included. Printed as a top-self-time table plus the flight
//!    recorder's slowest queries and the SLO summary.
//! 2. **Logical clock** — deterministic tick attribution, leader-serial
//!    spans only. Written to `results/profile.folded` (flamegraph.pl
//!    folded format) and `results/profile.svg` (a self-contained
//!    flamegraph). Both artifacts are **byte-identical for any
//!    `QENS_THREADS`** — `scripts/verify.sh` diffs them across thread
//!    counts, which turns the profile itself into a CI regression
//!    artifact: any change to the span layout of the pipeline shows up
//!    as a diff.
//!
//! The workload is fixed-seed and mildly hostile (dropout + link loss
//! with full fault tolerance), so the profile covers the retry and
//! standby-promotion phases, not just the happy path.

use std::path::PathBuf;

use qens::prelude::*;
use qens::telemetry;
use qens::telemetry::profile as tprofile;
use qens::telemetry::trace;

/// What `repro profile` should run and where the artifacts land.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Queries per pass.
    pub queries: u64,
    /// Output directory for `profile.folded` / `profile.svg`.
    pub out_dir: PathBuf,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        Self {
            queries: 8,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// Builds the fixed profiling federation (seeded, faulty, telemetry on).
fn build_federation() -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(6, 120)
        .clusters_per_node(4)
        .seed(13)
        .epochs(2)
        .telemetry(true)
        .faults(
            FaultSpec::unreliable_edge(13)
                .with_dropout(0.25)
                .with_link_loss(0.4),
        )
        .fault_tolerance(FaultTolerance::full_strength())
        .build()
}

/// Runs the query mix once. Quorum loss under the hostile plan is fine —
/// failed attempts profile deterministically too, and the profiler must
/// cover them.
fn run_workload(fed: &Federation, queries: u64) {
    for qid in 0..queries {
        let lo = (qid % 3) as f64 * 5.0;
        let q = fed.query_from_bounds(qid, &[lo, lo + 20.0, 0.0, 45.0]);
        let _ = fed.run_query(&q, &PolicyKind::query_driven(3));
    }
}

/// One profiling pass under `clock`: fresh trace buffer, fresh flight
/// recorder/SLO state, the full query mix, then the aggregated profile.
fn profile_pass(clock: trace::Clock, queries: u64) -> tprofile::Profile {
    trace::set_mode(Some(clock));
    trace::clear();
    tprofile::reset();
    let fed = build_federation();
    run_workload(&fed, queries);
    tprofile::aggregate(&trace::snapshot_events())
}

fn print_top_table(profile: &tprofile::Profile, unit: &str) {
    println!(
        "  {:<52} {:>12} {:>12} {:>7}",
        "phase path", "self", "total", "count"
    );
    for (path, stat) in profile.top_by_self(14) {
        let shown: String = if path.len() > 52 {
            format!("..{}", &path[path.len() - 50..])
        } else {
            path.to_string()
        };
        println!(
            "  {shown:<52} {:>12} {:>12} {:>7}",
            format!("{} {unit}", stat.self_time),
            format!("{} {unit}", stat.total),
            stat.count
        );
    }
}

fn print_slowest(unit: &str) {
    let slowest = tprofile::slowest();
    if slowest.is_empty() {
        println!("  (flight recorder empty)");
        return;
    }
    for (rank, e) in slowest.iter().enumerate() {
        println!(
            "  #{:<2} query {:<4} {:>12} {unit}  ({} events retained)",
            rank + 1,
            e.query_id,
            e.duration,
            e.events.len()
        );
    }
}

/// Runs both passes and writes the logical-clock artifacts. Returns the
/// paths written.
///
/// # Panics
/// If the workload produces an empty profile or a malformed SVG — this
/// is a verify.sh gate, so a broken profiler must fail loudly.
pub fn run_profile(opts: &ProfileOptions) -> std::io::Result<(PathBuf, PathBuf)> {
    telemetry::set_enabled(true);

    // Pass 1: wall clock — the "real time" view.
    println!(
        "== profile pass 1: wall clock ({} queries) ==",
        opts.queries
    );
    let wall = profile_pass(trace::Clock::Wall, opts.queries);
    print_top_table(&wall, "ns");
    println!("\nslowest queries (flight recorder, wall nanos):");
    print_slowest("ns");
    let slo = tprofile::slo_view();
    println!(
        "\nSLO: objective {:.1} ms, target {:.3}: {} good / {} bad, burn 1x {:.3}, 6x {:.3}",
        slo.config.objective_nanos as f64 / 1e6,
        slo.config.target,
        slo.good_total,
        slo.bad_total,
        slo.burn_rate_1x,
        slo.burn_rate_6x,
    );

    // Pass 2: logical clock — the deterministic CI artifact.
    println!(
        "\n== profile pass 2: logical clock ({} queries) ==",
        opts.queries
    );
    let logical = profile_pass(trace::Clock::Logical, opts.queries);
    print_top_table(&logical, "ticks");
    println!("\nslowest queries (flight recorder, tick spans):");
    print_slowest("ticks");

    let folded = tprofile::to_folded(&logical);
    assert!(
        !folded.is_empty(),
        "logical profile pass produced no folded stacks"
    );
    for phase in ["query", "query;fedlearn.round", "query;fedlearn.select"] {
        assert!(
            folded.lines().any(|l| l.starts_with(&format!("{phase} "))),
            "folded profile is missing the {phase} path"
        );
    }
    let svg = tprofile::to_svg(&logical, "qens logical profile", "ticks");
    assert!(
        svg.starts_with("<svg ") && svg.trim_end().ends_with("</svg>"),
        "profile SVG is not a complete document"
    );

    std::fs::create_dir_all(&opts.out_dir)?;
    let folded_path = opts.out_dir.join("profile.folded");
    let svg_path = opts.out_dir.join("profile.svg");
    std::fs::write(&folded_path, &folded)?;
    std::fs::write(&svg_path, &svg)?;
    trace::set_mode(None);
    trace::clear();
    println!(
        "\nprofile OK: {} folded paths -> {}, {} byte SVG -> {}",
        logical.paths.len(),
        folded_path.display(),
        svg.len(),
        svg_path.display()
    );
    println!("(both artifacts are byte-identical for any QENS_THREADS)");
    Ok((folded_path, svg_path))
}
