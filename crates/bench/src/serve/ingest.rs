//! The ingestion pipeline: a bounded queue between the HTTP workers and
//! one batcher thread that coalesces compatible queries into shared
//! federation waves.
//!
//! Back-pressure is explicit at both ends. At the front, a full queue
//! rejects the push and the HTTP worker answers `429 Retry-After` — the
//! queue can never grow past [`qens::AdmissionConfig::queue_depth`]. At
//! the back, the batcher sheds queries whose enqueue-to-dequeue age
//! blew the staleness deadline (`503`), so a backlog burns down instead
//! of serving arbitrarily stale work.
//!
//! Batching reuses the selection cache's quantized-query keying
//! ([`selection::CacheConfig::compatibility_key`]): queries whose
//! rectangles land in the same cache bucket share a scoring pass and a
//! training wave via [`fedlearn::run_batch`], and the per-query answers
//! stay bit-identical to unbatched serving.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qens::geom::Query;
use qens::{fedlearn, telemetry, PolicyKind};

use super::ServerState;

/// A bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`, capacity
/// enforced at push time (the producer is told, never blocked).
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    cv: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless the queue is at capacity; a `cap` of 0 rejects
    /// everything (the admission-control test hook).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        telemetry::gauge!("qens_serve_queue_depth").set(q.len() as f64);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Pops the head, waiting up to `timeout` for one to appear.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.is_empty() {
            let (guard, _) = self.cv.wait_timeout(q, timeout).expect("queue poisoned");
            q = guard;
        }
        let item = q.pop_front();
        if item.is_some() {
            telemetry::gauge!("qens_serve_queue_depth").set(q.len() as f64);
        }
        item
    }

    /// Pops up to `max` more items without waiting (the batcher's
    /// coalescing window).
    pub fn drain_up_to(&self, max: usize) -> Vec<T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        let n = max.min(q.len());
        let drained: Vec<T> = q.drain(..n).collect();
        if !drained.is_empty() {
            telemetry::gauge!("qens_serve_queue_depth").set(q.len() as f64);
        }
        drained
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wakes every waiter (used on shutdown so the batcher re-checks
    /// its exit condition immediately).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// The answer the batcher sends back to the HTTP worker holding the
/// client connection.
pub struct Reply {
    pub status: &'static str,
    pub content_type: &'static str,
    pub body: String,
}

/// One admitted query waiting for a federation wave.
pub struct QueryJob {
    pub query: Query,
    pub enqueued: Instant,
    pub reply: mpsc::Sender<Reply>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The batcher thread body: pop → shed stale → group by cache bucket →
/// one [`fedlearn::run_batch`] per group → reply per query.
///
/// Runs until shutdown is requested *and* the queue is empty, so
/// requests admitted before a shutdown still get real answers (the
/// graceful-drain contract `serve --once` asserts).
pub fn batcher_loop(state: Arc<ServerState>) {
    // The policy (and its selection cache) lives for the whole server:
    // built here because boxed policies are not Send, and shared across
    // every wave so repeated buckets hit the cache.
    let policy = state
        .fed
        .build_policy(&PolicyKind::query_driven(super::SERVE_SELECT_L));
    let compat = state.fed.cache_config().unwrap_or_default();
    let admission = state.admission;
    loop {
        let Some(head) = state.queue.pop_wait(Duration::from_millis(100)) else {
            if state.is_draining() && state.queue.is_empty() {
                break;
            }
            continue;
        };
        let mut jobs = vec![head];
        jobs.extend(
            state
                .queue
                .drain_up_to(admission.batch_max.saturating_sub(1)),
        );

        // Load shedding: a query that waited past the staleness deadline
        // gets a fast 503 instead of a stale federation round.
        let mut live: Vec<QueryJob> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let age_ms = job.enqueued.elapsed().as_millis() as u64;
            telemetry::histogram!("qens_serve_wait_micros")
                .record(job.enqueued.elapsed().as_micros() as u64);
            if admission.deadline_ms.is_some_and(|d| d == 0 || age_ms > d) {
                telemetry::counter!("qens_serve_shed_total").incr();
                telemetry::trace::instant(
                    "serve.shed",
                    &[("query", job.query.id()), ("age_ms", age_ms)],
                );
                telemetry::journal::admission_shed(job.query.id(), age_ms);
                let _ = job.reply.send(Reply {
                    status: "503 Service Unavailable",
                    content_type: "application/json",
                    body: format!(
                        "{{\"error\":\"shed: queued {age_ms} ms, deadline {} ms\"}}\n",
                        admission.deadline_ms.unwrap_or(0)
                    ),
                });
                continue;
            }
            live.push(job);
        }
        if live.is_empty() {
            continue;
        }

        // Group by the cache-bucket compatibility key, preserving
        // arrival order within each group.
        let mut groups: Vec<(u64, Vec<QueryJob>)> = Vec::new();
        for job in live {
            let key = compat.compatibility_key(&job.query);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push(job),
                None => groups.push((key, vec![job])),
            }
        }

        for (key, group) in groups {
            let queries: Vec<Query> = group.iter().map(|j| j.query.clone()).collect();
            telemetry::counter!("qens_serve_batches_total").incr();
            telemetry::counter!("qens_serve_batched_queries_total").add(queries.len() as u64);
            let span = telemetry::trace::span_args(
                "serve.batch",
                &[("bucket", key), ("queries", queries.len() as u64)],
            );
            let outcomes = fedlearn::run_batch(
                state.fed.network(),
                &queries,
                policy.as_ref(),
                state.fed.config(),
            );
            span.finish();
            for (job, outcome) in group.into_iter().zip(outcomes) {
                let reply = match outcome {
                    Ok(out) => {
                        let loss = out
                            .query_loss(state.fed.network(), &job.query)
                            .map_or("null".to_string(), |l| format!("{l}"));
                        let participants: Vec<String> = out
                            .selection
                            .participants
                            .iter()
                            .map(|p| format!("{{\"node\":{},\"ranking\":{}}}", p.node.0, p.ranking))
                            .collect();
                        Reply {
                            status: "200 OK",
                            content_type: "application/json",
                            body: format!(
                                "{{\"query_id\":{},\"loss\":{loss},\"participants\":[{}],\"standby\":{},\"samples_used\":{},\"sim_seconds\":{},\"batch\":{}}}\n",
                                job.query.id(),
                                participants.join(","),
                                out.selection.standby.len(),
                                out.accounting.samples_used,
                                out.accounting.sim_seconds,
                                queries.len(),
                            ),
                        }
                    }
                    Err(e) => Reply {
                        status: "422 Unprocessable Entity",
                        content_type: "application/json",
                        body: format!("{{\"error\":\"{}\"}}\n", json_escape(&e.to_string())),
                    },
                };
                // A client that gave up (timed out, disconnected) just
                // drops its receiver; that is not the batcher's problem.
                let _ = job.reply.send(reply);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_enforces_capacity_and_order() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(1));
        assert_eq!(q.drain_up_to(5), vec![2]);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q: BoundedQueue<u32> = BoundedQueue::new(0);
        assert_eq!(q.try_push(7), Err(7));
    }

    #[test]
    fn pop_wait_sees_a_push_from_another_thread() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.try_push(42).unwrap();
        });
        assert_eq!(q.pop_wait(Duration::from_secs(5)), Some(42));
        producer.join().unwrap();
    }

    #[test]
    fn json_escape_handles_quotes_and_control_bytes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
