//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Hand-rolled over [`std::net`] — the workspace must build with the
//! crates-io registry unreachable, so there is no hyper/axum here, just
//! enough of the protocol for scrapers and the query front end:
//! request heads capped at 16 KiB, `Content-Length` bodies capped by the
//! admission config (bigger ones answered `413` without being read),
//! and connection keep-alive so a load generator can pipeline requests
//! over one socket.
//!
//! Malformed input never kills the process: empty, truncated, oversized
//! and non-UTF-8 heads are all reported as [`ReadOutcome::Bad`] so the
//! caller can answer `400` instead of dropping the connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on an accepted request head (request line + headers).
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default, overridable with a `Connection` header either way).
    pub keep_alive: bool,
}

/// The outcome of reading one request off a (possibly reused) socket.
#[derive(Debug)]
pub enum ReadOutcome {
    Request(Request),
    /// Clean end of the connection between requests (keep-alive client
    /// finished, or an idle socket timed out).
    Closed,
    /// A malformed head, answered with `400`.
    Bad {
        reason: &'static str,
    },
    /// A declared body larger than the admission cap, answered with
    /// `413` *without reading the body*.
    TooLarge {
        declared: usize,
    },
}

/// One line read under the shared head budget.
enum LineRead {
    Line(String),
    Eof,
    Truncated,
    TooLong,
    NotUtf8,
}

/// Reads one `\n`-terminated line without ever buffering more than the
/// remaining head `budget`: an endless request line runs out of budget
/// (`TooLong`) instead of memory, and a peer hanging up mid-line is
/// `Truncated`, not an I/O error.
fn read_line_capped<R: BufRead>(reader: &mut R, budget: &mut usize) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Truncated
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) if i < *budget => {
                line.extend_from_slice(&available[..=i]);
                reader.consume(i + 1);
                *budget -= i + 1;
                return Ok(match String::from_utf8(line) {
                    Ok(s) => LineRead::Line(s),
                    Err(_) => LineRead::NotUtf8,
                });
            }
            _ => {
                let take = available.len().min(*budget);
                if take == 0 {
                    return Ok(LineRead::TooLong);
                }
                line.extend_from_slice(&available[..take]);
                reader.consume(take);
                *budget -= take;
                if *budget == 0 {
                    return Ok(LineRead::TooLong);
                }
            }
        }
    }
}

/// Reads one full request (head + body) off `reader`.
///
/// `first` distinguishes a socket that closed before its first request
/// (`Bad { "empty request" }`, the client did something wrong) from one
/// that closed between keep-alive requests (`Closed`, entirely normal).
/// Read timeouts surface as `Closed` too — an idle keep-alive peer is
/// not an error.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    body_cap: usize,
    first: bool,
) -> std::io::Result<ReadOutcome> {
    let mut budget = MAX_REQUEST_BYTES;
    let line = match read_line_capped(reader, &mut budget) {
        Ok(l) => l,
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::ConnectionReset =>
        {
            return Ok(ReadOutcome::Closed)
        }
        Err(e) => return Err(e),
    };
    let line = match line {
        LineRead::Line(l) => l,
        LineRead::Eof if first => {
            return Ok(ReadOutcome::Bad {
                reason: "empty request",
            })
        }
        LineRead::Eof => return Ok(ReadOutcome::Closed),
        LineRead::Truncated | LineRead::TooLong => {
            return Ok(ReadOutcome::Bad {
                reason: "request line truncated or longer than the 16 KiB limit",
            })
        }
        LineRead::NotUtf8 => {
            return Ok(ReadOutcome::Bad {
                reason: "request line is not valid UTF-8",
            })
        }
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(ReadOutcome::Bad {
            reason: "malformed request line (expected: METHOD PATH HTTP/1.1)",
        });
    };
    let (method, path) = (method.to_string(), path.to_string());
    // HTTP/1.1 defaults to keep-alive, everything else to close; an
    // explicit Connection header overrides either way.
    let mut keep_alive = parts.next() == Some("HTTP/1.1");

    // Header block: we only care about Content-Length, Connection and
    // (to reject it) Transfer-Encoding. The head budget bounds the loop.
    let mut content_length = 0usize;
    loop {
        let header = match read_line_capped(reader, &mut budget)? {
            LineRead::Line(h) => h,
            LineRead::Eof | LineRead::Truncated => {
                return Ok(ReadOutcome::Bad {
                    reason: "connection closed inside the header block",
                })
            }
            LineRead::TooLong => {
                return Ok(ReadOutcome::Bad {
                    reason: "request head longer than the 16 KiB limit",
                })
            }
            // A non-UTF-8 header we don't need: skip it (its bytes were
            // consumed under the budget).
            LineRead::NotUtf8 => continue,
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Ok(ReadOutcome::Bad {
                reason: "malformed header line (expected: Name: value)",
            });
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let Ok(n) = value.parse::<usize>() else {
                    return Ok(ReadOutcome::Bad {
                        reason: "unparseable Content-Length",
                    });
                };
                content_length = n;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return Ok(ReadOutcome::Bad {
                    reason: "chunked transfer encoding is not supported; \
                             send a Content-Length body",
                })
            }
            _ => {}
        }
    }

    if content_length > body_cap {
        return Ok(ReadOutcome::TooLarge {
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = reader.read_exact(&mut body) {
            return Ok(match e.kind() {
                std::io::ErrorKind::UnexpectedEof => ReadOutcome::Bad {
                    reason: "connection closed before the declared Content-Length was sent",
                },
                _ => ReadOutcome::Closed,
            });
        }
    }
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Writes one response. `keep_alive` controls the `Connection` header;
/// the caller decides whether to actually reuse the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra_headers}Connection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn split_response(response: &str) -> (u16, String) {
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// One-shot GET: connect, request with `Connection: close`, return
/// `(status, body)`.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(split_response(&response))
}

/// One-shot POST with a body, `Connection: close`.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(split_response(&response))
}

/// Sends raw bytes and returns the status of whatever came back (0 when
/// the server sent nothing) — for probing the malformed-request paths.
pub fn probe_raw(addr: &str, request: &[u8]) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request)?;
    // Half-close our sending side so a server blocked on a read sees
    // EOF (the truncated-request case) instead of waiting forever.
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8_lossy(&response).into_owned();
    Ok(split_response(&response))
}

/// A client that keeps one socket open across requests — both the
/// serve-side keep-alive test and the load generator's closed-loop
/// clients use this. Responses are framed by their `Content-Length`.
pub struct KeepAliveClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    addr: String,
}

impl KeepAliveClient {
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            stream,
            reader,
            addr: addr.to_string(),
        })
    }

    /// Sends one request on the shared socket and reads one framed
    /// response back.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()?;
        // Status line + headers.
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            let n = self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if n == 0 || header.is_empty() {
                break;
            }
            let lower = header.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                if let Ok(n) = v.trim().parse::<usize>() {
                    content_length = n;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}
