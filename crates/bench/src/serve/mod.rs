//! The query-serving subsystem: live observability plus a concurrent
//! `POST /query` front end over the federation engine.
//!
//! Hand-rolled HTTP/1.1 over [`std::net::TcpListener`] (the workspace
//! builds with the crates-io registry unreachable — no hyper/axum), with
//! keep-alive, `Content-Length` bodies and hard caps everywhere:
//!
//! | path                | body                                                 |
//! |---------------------|------------------------------------------------------|
//! | `/healthz`          | `ok` (text/plain)                                    |
//! | `/metrics`          | Prometheus text exposition of the global registry    |
//! | `/trace`            | Chrome trace-event JSON of the trace buffer          |
//! | `/profile`          | Folded-stack profile of the trace buffer (text)      |
//! | `/profile.svg`      | The same profile as an SVG flamegraph                |
//! | `/slowest`          | Flight-recorder top-K slowest queries (JSON)         |
//! | `/slo`              | SLO objective, good/bad totals and burn rates (JSON) |
//! | `/cache`            | Selection-cache hit/miss statistics (JSON)           |
//! | `/nodes`            | Fleet scorecards + selection-skew analytics (JSON)   |
//! | `/nodes/<id>`       | One node's scorecard (`/nodes/3` or `/nodes/n3`)     |
//! | `/events?n=`        | Tail of the structured event journal (JSON lines)    |
//! | `POST /query`       | Run a federation round for a JSON query rectangle    |
//! | `POST /shutdown`    | Graceful drain + exit (loopback peers only)          |
//!
//! `POST /query` takes `{"id": 7, "bounds": [x_min, x_max, ..., y_min,
//! y_max]}` (`id` optional) and returns the selection plus the federated
//! answer. Queries flow through a bounded ingestion queue with explicit
//! admission control — a full queue answers `429` with `Retry-After`, a
//! stale queue entry is shed with `503` — and a batcher that coalesces
//! queries sharing a quantized cache bucket into one federation wave
//! (see [`ingest`]). Bodies over the admission cap get `413` unread.
//!
//! Malformed requests never kill the process: empty, truncated,
//! oversized and non-UTF-8 heads all get a `400` with a body, wrong
//! methods get `405` with an `Allow` header, unknown paths a `404`
//! listing every endpoint.
//!
//! `repro serve` binds and serves until `--duration` elapses or a
//! loopback client posts `/shutdown` — both drain in-flight queries
//! before exit. `repro serve --once` is the self-test mode
//! `scripts/verify.sh` runs: it probes every endpoint (plus the error
//! and admission paths) and exits.

pub mod http;
pub mod ingest;
pub mod loadgen;

use std::io::{BufReader, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use qens::geom::Query;
use qens::prelude::*;
use qens::telemetry;

use http::{read_request, write_response, ReadOutcome, Request};
use ingest::{BoundedQueue, QueryJob, Reply};

/// Top-ℓ of the serving policy (shared by the server and the load
/// generator so their answers agree).
pub const SERVE_SELECT_L: usize = 3;

/// Requests served per keep-alive connection before the server closes
/// it (bounds how long one client can pin a worker).
const KEEP_ALIVE_MAX_REQUESTS: usize = 128;

const ENDPOINT_LIST: &str = "/healthz, /metrics, /trace, /profile, /profile.svg, /slowest, /slo, \
                             /cache, /nodes, /nodes/<id>, /events?n=, POST /query, POST /shutdown";

/// What `serve` should bind and how long it should live.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `host:port` to bind; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Self-test mode: probe every endpoint once, assert, exit.
    pub once: bool,
    /// Exit (gracefully, draining in-flight queries) after this many
    /// seconds; `None` serves until `POST /shutdown` or Ctrl-C.
    pub duration: Option<f64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9464".to_string(),
            once: false,
            duration: None,
        }
    }
}

/// Everything the worker and batcher threads share.
pub struct ServerState {
    pub fed: Federation,
    pub admission: AdmissionConfig,
    pub queue: BoundedQueue<QueryJob>,
    /// Set on shutdown request: new queries get `503 draining`, the
    /// batcher exits once the queue is empty.
    draining: AtomicBool,
    /// Set after `draining`, once the drain should also stop the accept
    /// loops.
    stopping: AtomicBool,
    /// Wakes [`ServerHandle::wait`] when a shutdown is requested.
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Ids for queries posted without one (offset so they never collide
    /// with small client-chosen ids).
    next_id: AtomicU64,
}

impl ServerState {
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful shutdown: refuse new queries, let the batcher
    /// burn the queue down, wake the waiter.
    pub fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.notify_all();
        let mut flag = self.shutdown.lock().expect("shutdown flag poisoned");
        *flag = true;
        self.shutdown_cv.notify_all();
    }
}

/// The federation a standalone `repro serve` answers queries against: a
/// mid-size heterogeneous network with the selection cache on and a
/// coarse quantization bucket, so repeated query regions actually hit
/// the cache and batch together.
pub(crate) fn demo_federation() -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(6, 120)
        .clusters_per_node(4)
        .seed(13)
        .epochs(2)
        .telemetry(true)
        .fleet(true)
        .selection_cache(true)
        .selection_cache_bucket(30.0)
        .build()
}

/// A running server: bound listener, worker threads, batcher.
pub struct ServerHandle {
    addr: String,
    state: Arc<ServerState>,
    workers: Vec<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound `host:port` (resolves port 0 to the real port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests a graceful shutdown (same path as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Blocks until a shutdown is requested, then drains: the batcher
    /// finishes every admitted query, the accept loops stop, every
    /// thread is joined.
    pub fn wait(mut self) -> std::io::Result<()> {
        {
            let mut flag = self.state.shutdown.lock().expect("shutdown flag poisoned");
            while !*flag {
                flag = self
                    .state
                    .shutdown_cv
                    .wait(flag)
                    .expect("shutdown flag poisoned");
            }
        }
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
        self.state.stopping.store(true, Ordering::SeqCst);
        // Unblock every worker's accept() with one throwaway connection
        // each; workers check `stopping` right after accepting.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(&self.addr);
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        Ok(())
    }
}

/// Binds `addr` and spawns the accept workers plus the batcher.
/// Non-blocking; drive the result with [`ServerHandle::wait`].
pub fn spawn(addr: &str, fed: Federation) -> std::io::Result<ServerHandle> {
    telemetry::set_enabled(true);
    let admission = fed.admission();
    let listener = Arc::new(TcpListener::bind(addr)?);
    let local = listener.local_addr()?.to_string();
    let state = Arc::new(ServerState {
        fed,
        admission,
        queue: BoundedQueue::new(admission.queue_depth),
        draining: AtomicBool::new(false),
        stopping: AtomicBool::new(false),
        shutdown: Mutex::new(false),
        shutdown_cv: Condvar::new(),
        next_id: AtomicU64::new(1 << 32),
    });
    let batcher = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("qens-serve-batcher".into())
            .spawn(move || ingest::batcher_loop(state))?
    };
    const N_WORKERS: usize = 4;
    let mut workers = Vec::with_capacity(N_WORKERS);
    for i in 0..N_WORKERS {
        let listener = Arc::clone(&listener);
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("qens-serve-worker-{i}"))
                .spawn(move || loop {
                    if state.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if state.stopping.load(Ordering::SeqCst) {
                                break;
                            }
                            if let Err(e) = handle_connection(stream, &state) {
                                eprintln!("connection error: {e}");
                            }
                        }
                        Err(e) => eprintln!("accept error: {e}"),
                    }
                })?,
        );
    }
    Ok(ServerHandle {
        addr: local,
        state,
        workers,
        batcher: Some(batcher),
    })
}

/// Serves one connection: a keep-alive loop of parse → route → respond.
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) -> std::io::Result<()> {
    let mut stream = stream;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut served = 0usize;
    loop {
        let first = served == 0;
        let outcome = read_request(&mut reader, state.admission.body_cap_bytes, first)?;
        let request = match outcome {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Bad { reason } => {
                // Drain what the peer already sent (bounded, under the
                // read timeout) before responding: closing a socket with
                // unread bytes pending RSTs the connection, and the 400
                // would never reach the client.
                let _ = std::io::copy(
                    &mut Read::by_ref(&mut reader).take(1 << 20),
                    &mut std::io::sink(),
                );
                return write_response(
                    &mut stream,
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    "",
                    &format!("bad request: {reason}\n"),
                    false,
                );
            }
            ReadOutcome::TooLarge { declared } => {
                telemetry::counter!("qens_serve_body_rejected_total").incr();
                // Drain what we can of the refused body (bounded, under
                // the read timeout) so a client mid-send sees our 413
                // instead of a connection reset; then close — the
                // connection cannot be reused without the full body.
                let _ = std::io::copy(
                    &mut Read::by_ref(&mut reader).take((declared as u64).min(1 << 20)),
                    &mut std::io::sink(),
                );
                return write_response(
                    &mut stream,
                    "413 Content Too Large",
                    "text/plain; charset=utf-8",
                    "",
                    &format!(
                        "declared body of {declared} bytes exceeds the {} byte cap\n",
                        state.admission.body_cap_bytes
                    ),
                    false,
                );
            }
            ReadOutcome::Request(r) => r,
        };
        telemetry::counter!("qens_serve_requests_total").incr();
        served += 1;
        let keep_alive = request.keep_alive
            && served < KEEP_ALIVE_MAX_REQUESTS
            && !state.stopping.load(Ordering::SeqCst);
        let close_after = respond(&mut stream, request, state, keep_alive)?;
        if close_after || !keep_alive {
            return Ok(());
        }
    }
}

/// Routes one request and writes its response. Returns `true` when the
/// connection must close regardless of keep-alive (shutdown).
fn respond(
    stream: &mut TcpStream,
    request: Request,
    state: &Arc<ServerState>,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let method = request.method.as_str();
    let path = request.path.split('?').next().unwrap_or("");
    match (method, path) {
        ("POST", "/query") => {
            serve_query(stream, &request.body, state, keep_alive)?;
            Ok(false)
        }
        ("POST", "/shutdown") => {
            let loopback = stream
                .peer_addr()
                .map(|a| a.ip().is_loopback())
                .unwrap_or(false);
            if !loopback {
                write_response(
                    stream,
                    "403 Forbidden",
                    "text/plain; charset=utf-8",
                    "",
                    "shutdown is only accepted from loopback peers\n",
                    keep_alive,
                )?;
                return Ok(false);
            }
            // Respond first, then trip the shutdown: the client must see
            // the acknowledgement before the accept loops die.
            write_response(
                stream,
                "200 OK",
                "text/plain; charset=utf-8",
                "",
                "draining in-flight queries, then exiting\n",
                false,
            )?;
            state.request_shutdown();
            Ok(true)
        }
        (_, "/query" | "/shutdown") => {
            write_response(
                stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "Allow: POST\r\n",
                &format!("{path} only accepts POST\n"),
                keep_alive,
            )?;
            Ok(false)
        }
        (m, _) if m != "GET" => {
            write_response(
                stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "Allow: GET\r\n",
                &format!("method {m} not allowed; only GET is supported\n"),
                keep_alive,
            )?;
            Ok(false)
        }
        ("GET", "/healthz") => {
            write_response(
                stream,
                "200 OK",
                "text/plain; charset=utf-8",
                "",
                "ok\n",
                keep_alive,
            )?;
            Ok(false)
        }
        ("GET", "/metrics") => {
            let mut body = telemetry::export::to_prometheus(&telemetry::global().snapshot());
            // The fleet's labeled per-node series (top-K + "other") and
            // skew gauges ride along; silent while QENS_FLEET is off.
            telemetry::fleet::to_prometheus(&mut body, telemetry::fleet::PROM_TOP_K);
            write_response(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                "",
                &body,
                keep_alive,
            )?;
            Ok(false)
        }
        ("GET", "/trace") => {
            let body = telemetry::trace::export_chrome(None);
            write_response(stream, "200 OK", "application/json", "", &body, keep_alive)?;
            Ok(false)
        }
        ("GET", "/profile") => {
            let profile = telemetry::profile::aggregate(&telemetry::trace::snapshot_events());
            write_response(
                stream,
                "200 OK",
                "text/plain; charset=utf-8",
                "",
                &telemetry::profile::to_folded(&profile),
                keep_alive,
            )?;
            Ok(false)
        }
        ("GET", "/profile.svg") => {
            let profile = telemetry::profile::aggregate(&telemetry::trace::snapshot_events());
            let unit = match telemetry::trace::mode() {
                Some(telemetry::trace::Clock::Logical) => "ticks",
                _ => "ns",
            };
            let body = telemetry::profile::to_svg(&profile, "qens live profile", unit);
            write_response(stream, "200 OK", "image/svg+xml", "", &body, keep_alive)?;
            Ok(false)
        }
        ("GET", "/slowest") => {
            let body = telemetry::profile::slowest_to_json();
            write_response(stream, "200 OK", "application/json", "", &body, keep_alive)?;
            Ok(false)
        }
        ("GET", "/slo") => {
            let body = telemetry::profile::slo_to_json();
            write_response(stream, "200 OK", "application/json", "", &body, keep_alive)?;
            Ok(false)
        }
        ("GET", "/cache") => {
            write_response(
                stream,
                "200 OK",
                "application/json",
                "",
                &cache_stats_json(),
                keep_alive,
            )?;
            Ok(false)
        }
        ("GET", "/nodes") => {
            let mut body = telemetry::fleet::to_json();
            body.push('\n');
            write_response(stream, "200 OK", "application/json", "", &body, keep_alive)?;
            Ok(false)
        }
        ("GET", p) if p.starts_with("/nodes/") => {
            match node_scorecard_json(&p["/nodes/".len()..]) {
                Some(body) => {
                    write_response(stream, "200 OK", "application/json", "", &body, keep_alive)?
                }
                None => write_response(
                    stream,
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "",
                    &format!(
                        "no scorecard for {p}; ids are node indices (/nodes/3 or /nodes/n3) \
                         below the observed fleet size\n"
                    ),
                    keep_alive,
                )?,
            }
            Ok(false)
        }
        ("GET", "/events") => {
            let tail = request
                .path
                .split_once('?')
                .map(|(_, q)| q)
                .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("n=")))
                .and_then(|v| v.parse::<usize>().ok());
            let body = telemetry::journal::to_jsonl(telemetry::trace::Clock::Wall, tail);
            write_response(
                stream,
                "200 OK",
                "application/x-ndjson",
                "",
                &body,
                keep_alive,
            )?;
            Ok(false)
        }
        ("GET", other) => {
            write_response(
                stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "",
                &format!("no endpoint {other}; try one of: {ENDPOINT_LIST}\n"),
                keep_alive,
            )?;
            Ok(false)
        }
        _ => unreachable!("non-GET methods are rejected above"),
    }
}

/// Renders the selection cache's registry mirror as JSON (the cache
/// itself lives inside the batcher's policy object; its counters are
/// published to the global registry on every lookup).
pub fn cache_stats_json() -> String {
    let snap = telemetry::global().snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let hits = counter("qens_cache_hits_total");
    let misses = counter("qens_cache_misses_total");
    let lookups = hits + misses;
    let hit_rate = if lookups > 0 {
        hits as f64 / lookups as f64
    } else {
        0.0
    };
    format!(
        "{{\"hits\":{hits},\"misses\":{misses},\"invalidations\":{},\"entries\":{},\"hit_rate\":{hit_rate:.6}}}\n",
        counter("qens_cache_invalidations_total"),
        snap.gauge("qens_cache_entries").unwrap_or(0.0) as u64,
    )
}

/// Renders one node's scorecard for `/nodes/<id>`. Accepts a bare index
/// (`3`) or the node display form (`n3`); `None` for unparseable ids and
/// indices outside the observed fleet. The deterministic scorecard JSON
/// gets the live-only wall-time field appended — this endpoint reports
/// what the process measured, not the reproducible export.
fn node_scorecard_json(id: &str) -> Option<String> {
    let idx: u64 = id.strip_prefix('n').unwrap_or(id).parse().ok()?;
    let card = telemetry::fleet::scorecard(idx)?;
    let mut body = String::with_capacity(256);
    card.write_json(&mut body);
    body.pop();
    body.push_str(&format!(
        ",\"train_wall_nanos\":{}}}\n",
        card.train_wall_nanos
    ));
    Some(body)
}

/// Parses the tiny `POST /query` JSON body: `{"id": 7, "bounds":
/// [lo, hi, ...]}` with `id` optional. A hand-rolled scanner — the
/// subset is small enough that a JSON dependency would be overkill
/// (and the workspace builds offline).
fn parse_query_body(body: &[u8]) -> Result<(Option<u64>, Vec<f64>), &'static str> {
    let s = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8")?;
    let s = s.trim();
    if !s.starts_with('{') || !s.ends_with('}') {
        return Err("body must be a JSON object like {\"bounds\": [0, 20, 0, 45]}");
    }
    let bounds_key = s.find("\"bounds\"").ok_or("missing \"bounds\" array")?;
    let after = &s[bounds_key + "\"bounds\"".len()..];
    let lb = after.find('[').ok_or("missing [ after \"bounds\"")?;
    let rb = after.find(']').ok_or("missing ] closing \"bounds\"")?;
    if rb < lb {
        return Err("malformed \"bounds\" array");
    }
    let mut bounds = Vec::new();
    for tok in after[lb + 1..rb].split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        bounds.push(tok.parse::<f64>().map_err(|_| "non-numeric bound")?);
    }
    let id = s.find("\"id\"").and_then(|i| {
        let after = &s[i + "\"id\"".len()..];
        let colon = after.find(':')?;
        let rest = after[colon + 1..].trim_start();
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse::<u64>().ok()
    });
    Ok((id, bounds))
}

/// The `POST /query` flow: validate → admit (or 429) → wait for the
/// batcher's reply (or 503/504).
fn serve_query(
    stream: &mut TcpStream,
    body: &[u8],
    state: &Arc<ServerState>,
    keep_alive: bool,
) -> std::io::Result<()> {
    if state.is_draining() {
        return write_response(
            stream,
            "503 Service Unavailable",
            "application/json",
            "",
            "{\"error\":\"server is draining\"}\n",
            false,
        );
    }
    let (id, bounds) = match parse_query_body(body) {
        Ok(parsed) => parsed,
        Err(reason) => {
            return write_response(
                stream,
                "400 Bad Request",
                "application/json",
                "",
                &format!("{{\"error\":\"{reason}\"}}\n"),
                keep_alive,
            )
        }
    };
    let dim = state.fed.network().global_space().to_boundary_vec().len() / 2;
    if bounds.len() != 2 * dim {
        return write_response(
            stream,
            "400 Bad Request",
            "application/json",
            "",
            &format!(
                "{{\"error\":\"expected {} bounds (lo/hi per dimension of the {dim}-d joint space), got {}\"}}\n",
                2 * dim,
                bounds.len()
            ),
            keep_alive,
        );
    }
    for pair in bounds.chunks(2) {
        if !pair[0].is_finite() || !pair[1].is_finite() || pair[0] > pair[1] {
            return write_response(
                stream,
                "400 Bad Request",
                "application/json",
                "",
                &format!(
                    "{{\"error\":\"invalid interval [{}, {}]: bounds must be finite with lo <= hi\"}}\n",
                    pair[0], pair[1]
                ),
                keep_alive,
            );
        }
    }
    let id = id.unwrap_or_else(|| state.next_id.fetch_add(1, Ordering::Relaxed));
    let query = Query::from_boundary_vec(id, &bounds);
    telemetry::trace::instant("serve.enqueue", &[("query", id)]);
    let (tx, rx) = mpsc::channel();
    let job = QueryJob {
        query,
        enqueued: std::time::Instant::now(),
        reply: tx,
    };
    if state.queue.try_push(job).is_err() {
        telemetry::counter!("qens_serve_rejected_total").incr();
        return write_response(
            stream,
            "429 Too Many Requests",
            "application/json",
            "Retry-After: 1\r\n",
            &format!(
                "{{\"error\":\"ingestion queue full ({} waiting)\"}}\n",
                state.admission.queue_depth
            ),
            keep_alive,
        );
    }
    telemetry::counter!("qens_serve_queries_total").incr();
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(Reply {
            status,
            content_type,
            body,
        }) => write_response(stream, status, content_type, "", &body, keep_alive),
        Err(_) => write_response(
            stream,
            "504 Gateway Timeout",
            "application/json",
            "",
            "{\"error\":\"federation round did not finish in time\"}\n",
            false,
        ),
    }
}

/// A tiny faulty + traced workload so the observability endpoints have
/// something to show: guarantees at least one `qens_fault_*` counter
/// (retries / dropped participants) and `qens_trace_*` counters in
/// `/metrics`, and a non-empty span tree in `/trace`.
pub fn seed_observable_workload() {
    telemetry::trace::set_mode(Some(telemetry::trace::Clock::Wall));
    telemetry::trace::clear();
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .telemetry(true)
        .faults(
            FaultSpec::unreliable_edge(7)
                .with_dropout(0.3)
                .with_link_loss(0.6),
        )
        .fault_tolerance(FaultTolerance::full_strength())
        .build();
    for qid in 0..3u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        // Quorum loss under a hostile plan is acceptable here — every
        // attempt still records metrics and trace events.
        let _ = fed.run_query(&q, &PolicyKind::query_driven(2));
    }
}

/// Runs the endpoint. Blocking; returns in `--once` mode, when
/// `--duration` elapses, or after a loopback `POST /shutdown`.
///
/// # Panics
/// In `--once` mode, panics if any endpoint misbehaves — that is the
/// point (verify.sh treats the panic as a failed gate).
pub fn serve(opts: &ServeOptions) -> std::io::Result<()> {
    if opts.once {
        return serve_once();
    }
    let handle = spawn(&opts.addr, demo_federation())?;
    println!(
        "serving http://{} ({ENDPOINT_LIST}); POST /shutdown or Ctrl-C to stop",
        handle.addr()
    );
    if let Some(seconds) = opts.duration {
        let state = Arc::clone(handle.state());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(seconds));
            state.request_shutdown();
        });
    }
    handle.wait()
}

/// The `--once` self-test: ephemeral port, every endpoint plus the
/// error, admission and drain paths probed, hard asserts.
fn serve_once() -> std::io::Result<()> {
    use http::{get, post, probe_raw, KeepAliveClient, MAX_REQUEST_BYTES};

    seed_observable_workload();
    let handle = spawn("127.0.0.1:0", demo_federation())?;
    let addr = handle.addr().to_string();

    let (health_status, health_body) = get(&addr, "/healthz")?;
    assert_eq!(health_status, 200, "/healthz must return 200");
    assert!(health_body.contains("ok"), "/healthz body must say ok");

    let (metrics_status, metrics_body) = get(&addr, "/metrics")?;
    assert_eq!(metrics_status, 200, "/metrics must return 200");
    assert!(
        metrics_body.lines().any(|l| l.starts_with("qens_")),
        "/metrics must expose qens_* series"
    );
    assert!(
        metrics_body.contains("qens_fault_"),
        "/metrics must expose at least one qens_fault_* series"
    );
    assert!(
        metrics_body.contains("qens_trace_"),
        "/metrics must expose at least one qens_trace_* series"
    );
    assert!(
        metrics_body.contains("qens_build_info{") && metrics_body.contains("qens_uptime_seconds"),
        "/metrics must carry the build_info and uptime self-description"
    );
    assert!(
        metrics_body.contains("# HELP") && metrics_body.contains("# TYPE"),
        "/metrics must carry HELP/TYPE metadata"
    );

    let (trace_status, trace_body) = get(&addr, "/trace")?;
    assert_eq!(trace_status, 200, "/trace must return 200");
    assert!(
        trace_body.contains("\"traceEvents\"") && trace_body.contains("\"ph\":\"B\""),
        "/trace must contain a non-empty Chrome trace"
    );

    let (profile_status, profile_body) = get(&addr, "/profile")?;
    assert_eq!(profile_status, 200, "/profile must return 200");
    assert!(
        profile_body.lines().any(|l| l.starts_with("query")),
        "/profile must contain folded stacks rooted at the query span"
    );
    assert!(
        profile_body.contains("query;fedlearn.round"),
        "/profile must attribute time to pipeline phases"
    );

    let (svg_status, svg_body) = get(&addr, "/profile.svg")?;
    assert_eq!(svg_status, 200, "/profile.svg must return 200");
    assert!(
        svg_body.starts_with("<svg ") && svg_body.trim_end().ends_with("</svg>"),
        "/profile.svg must be a complete SVG document"
    );

    let (slowest_status, slowest_body) = get(&addr, "/slowest")?;
    assert_eq!(slowest_status, 200, "/slowest must return 200");
    assert!(
        slowest_body.starts_with("{\"slowest\":[") && slowest_body.contains("\"query_id\""),
        "/slowest must list the flight recorder's retained queries"
    );

    let (slo_status, slo_body) = get(&addr, "/slo")?;
    assert_eq!(slo_status, 200, "/slo must return 200");
    assert!(
        slo_body.contains("\"objective_nanos\"") && slo_body.contains("\"burn_rate_1x\""),
        "/slo must expose the objective and burn rates"
    );

    // The query front end: a valid rectangle returns the selection and
    // the federated answer.
    let (q_status, q_body) = post(&addr, "/query", "{\"id\": 1, \"bounds\": [0, 20, 0, 45]}")?;
    assert_eq!(q_status, 200, "POST /query must return 200, body: {q_body}");
    assert!(
        q_body.contains("\"query_id\":1")
            && q_body.contains("\"participants\":[")
            && q_body.contains("\"loss\":"),
        "/query must return the selection plus the federated answer, got: {q_body}"
    );

    let (bad_status, bad_body) = post(&addr, "/query", "{\"bounds\": [0, 20, 0]}")?;
    assert_eq!(bad_status, 400, "odd bounds must 400, got: {bad_body}");
    let (bad_status, _) = post(&addr, "/query", "not json at all")?;
    assert_eq!(bad_status, 400, "non-JSON bodies must 400");

    // Admission: a body over the cap is refused unread with 413.
    let huge = format!(
        "{{\"bounds\": [0, 20, 0, 45], \"pad\": \"{}\"}}",
        "x".repeat(handle.state().admission.body_cap_bytes + 1)
    );
    let (huge_status, _) = post(&addr, "/query", &huge)?;
    assert_eq!(huge_status, 413, "oversized bodies must 413");

    // The cache endpoint reflects the selection cache the query above
    // just exercised — and its hit rate is always a number (0.0 before
    // any lookup, never NaN).
    let (cache_status, cache_body) = get(&addr, "/cache")?;
    assert_eq!(cache_status, 200, "/cache must return 200");
    assert!(
        cache_body.contains("\"hits\":") && cache_body.contains("\"hit_rate\":"),
        "/cache must expose hit/miss statistics, got: {cache_body}"
    );
    let hit_rate: f64 = cache_body
        .split("\"hit_rate\":")
        .nth(1)
        .and_then(|r| r.trim_end_matches(['}', '\n']).parse().ok())
        .expect("hit_rate must parse as a number");
    assert!(
        hit_rate.is_finite() && (0.0..=1.0).contains(&hit_rate),
        "hit_rate must be a finite ratio, got {hit_rate}"
    );

    // Fleet observability: the query above ran a federation round, so
    // the scorecards, the per-node series and the journal are live.
    let (nodes_status, nodes_body) = get(&addr, "/nodes")?;
    assert_eq!(nodes_status, 200, "/nodes must return 200");
    assert!(
        nodes_body.contains("\"fleet_size\":")
            && nodes_body.contains("\"nodes\":[")
            && nodes_body.contains("\"skew\":{")
            && nodes_body.contains("\"gini\":"),
        "/nodes must expose scorecards plus skew analytics, got: {nodes_body}"
    );
    assert!(
        nodes_body.contains("\"selected\":"),
        "/nodes must reflect the served query's selections: {nodes_body}"
    );
    let hot = nodes_body
        .split("\"node\":")
        .nth(1)
        .and_then(|r| r.split([',', '}']).next())
        .expect("/nodes lists at least one scorecard");
    let (card_status, card_body) = get(&addr, &format!("/nodes/{}", hot.trim()))?;
    assert_eq!(card_status, 200, "/nodes/<id> must return 200");
    assert!(
        card_body.contains("\"selected\":") && card_body.contains("\"train_wall_nanos\":"),
        "/nodes/<id> must serve one scorecard with live wall time, got: {card_body}"
    );
    let (missing_card_status, _) = get(&addr, "/nodes/9999")?;
    assert_eq!(missing_card_status, 404, "unknown node ids must 404");

    let (events_status, events_body) = get(&addr, "/events?n=32")?;
    assert_eq!(events_status, 200, "/events must return 200");
    assert!(
        events_body.contains("\"kind\":\"node_selected\""),
        "/events must contain the served query's selection events, got: {events_body}"
    );
    assert!(
        events_body
            .lines()
            .all(|l| l.is_empty() || l.starts_with('{')),
        "/events must be JSON lines"
    );

    // The fleet series ride along on /metrics once queries have run.
    let (metrics2_status, metrics2_body) = get(&addr, "/metrics")?;
    assert_eq!(metrics2_status, 200);
    assert!(
        metrics2_body.contains("qens_node_selected_total{")
            && metrics2_body.contains("qens_fleet_selection_gini")
            && metrics2_body.contains("qens_journal_events_total"),
        "/metrics must carry the fleet + journal series after queries ran"
    );

    // Keep-alive: two requests over one socket.
    let mut ka = KeepAliveClient::connect(&addr)?;
    let (s1, _) = ka.request("GET", "/healthz", "")?;
    let (s2, b2) = ka.request("POST", "/query", "{\"id\": 2, \"bounds\": [0, 20, 0, 45]}")?;
    assert_eq!((s1, s2), (200, 200), "keep-alive pair must both succeed");
    assert!(b2.contains("\"query_id\":2"));
    drop(ka);

    // Method discipline.
    let (method_status, method_body) = get(&addr, "/query")?;
    assert_eq!(method_status, 405, "GET /query must 405");
    assert!(method_body.contains("POST"), "405 must point at POST");

    let (missing_status, missing_body) = get(&addr, "/nope")?;
    assert_eq!(missing_status, 404, "unknown paths must 404");
    assert!(
        missing_body.contains("/profile"),
        "the 404 body must list the available endpoints"
    );

    // Error paths: an oversized request line and a truncated one must
    // both get a 400, not kill a worker.
    let mut oversized = Vec::from(&b"GET /"[..]);
    oversized.resize(MAX_REQUEST_BYTES + 64, b'a');
    oversized.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let (oversized_status, _) = probe_raw(&addr, &oversized)?;
    assert_eq!(oversized_status, 400, "oversized request lines must 400");

    let (truncated_status, _) = probe_raw(&addr, b"GET /metrics")?;
    assert_eq!(truncated_status, 400, "truncated request lines must 400");

    // Graceful drain: a query in flight when /shutdown lands must still
    // get its real answer before the server exits.
    let addr2 = addr.clone();
    let in_flight = std::thread::spawn(move || {
        post(&addr2, "/query", "{\"id\": 3, \"bounds\": [0, 10, 0, 25]}").expect("in-flight query")
    });
    std::thread::sleep(Duration::from_millis(30));
    let (shutdown_status, shutdown_body) = post(&addr, "/shutdown", "")?;
    assert_eq!(shutdown_status, 200, "loopback shutdown must be accepted");
    assert!(shutdown_body.contains("draining"));
    let (drained_status, drained_body) = in_flight.join().expect("in-flight thread");
    assert!(
        drained_status == 200,
        "the in-flight query must drain to a real answer, got {drained_status}: {drained_body}"
    );
    handle.wait()?;

    let series = metrics_body
        .lines()
        .filter(|l| l.starts_with("qens_"))
        .count();
    println!(
        "serve --once OK: /healthz /metrics ({series} qens_* samples) /trace /profile \
         /profile.svg /slowest /slo /cache /nodes /nodes/<id> /events all 200; POST /query + \
         keep-alive + drain OK; 404 + 400s + 405 + 413 error paths exercised"
    );
    telemetry::trace::set_mode(None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::http::{get, post, probe_raw, KeepAliveClient, MAX_REQUEST_BYTES};
    use super::*;

    /// A small server for protocol-level tests (tiny federation, fast
    /// build; admission overridable per test).
    fn test_server(admission: Option<AdmissionConfig>) -> ServerHandle {
        let mut builder = FederationBuilder::new()
            .heterogeneous_nodes(4, 60)
            .clusters_per_node(3)
            .seed(7)
            .epochs(2)
            .telemetry(true)
            .selection_cache(true)
            .selection_cache_bucket(30.0);
        if let Some(a) = admission {
            builder = builder.admission(a);
        } else {
            builder = builder.admission(AdmissionConfig::default());
        }
        spawn("127.0.0.1:0", builder.build()).expect("spawn test server")
    }

    #[test]
    fn http_round_trip_over_a_local_socket() {
        let server = test_server(None);
        let (status, body) = get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn unknown_path_is_404_and_wrong_methods_are_405() {
        let server = test_server(None);
        let (status, body) = get(server.addr(), "/definitely-not-here").unwrap();
        assert_eq!(status, 404);
        assert!(
            body.contains("/slowest") && body.contains("/slo"),
            "404 body must list the endpoints"
        );
        // POST to a GET endpoint.
        let (status, body) = post(server.addr(), "/metrics", "").unwrap();
        assert_eq!(status, 405);
        assert!(body.contains("only GET"), "405 must explain the method");
        // GET to a POST endpoint.
        let (status, body) = get(server.addr(), "/query").unwrap();
        assert_eq!(status, 405);
        assert!(body.contains("POST"), "405 must point at POST");
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn malformed_requests_get_a_400_not_a_dead_socket() {
        let server = test_server(None);
        let addr = server.addr().to_string();
        // Truncated request line (no newline, half-closed).
        let (status, body) = probe_raw(&addr, b"GET /metrics").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("truncated"));
        // Oversized request line.
        let mut oversized = Vec::from(&b"GET /"[..]);
        oversized.resize(MAX_REQUEST_BYTES + 64, b'x');
        oversized.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let (status, _) = probe_raw(&addr, &oversized).unwrap();
        assert_eq!(status, 400);
        // Empty request.
        let (status, body) = probe_raw(&addr, b"").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("empty"));
        // Non-UTF-8 request line.
        let (status, body) = probe_raw(&addr, b"\xff\xfe\xfd barbarism\r\n\r\n").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("UTF-8"));
        // Chunked transfer encoding is rejected, not mis-parsed.
        let (status, body) = probe_raw(
            &addr,
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("chunked"));
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn profile_endpoints_serve_current_buffers() {
        let server = test_server(None);
        // Profile of an empty (or foreign) buffer is still a valid
        // document — the endpoints never fail, they render what's there.
        let (status, _) = get(server.addr(), "/profile").unwrap();
        assert_eq!(status, 200);
        let (status, body) = get(server.addr(), "/slowest").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"slowest\":["));
        let (status, body) = get(server.addr(), "/slo").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"objective_nanos\""));
        let (status, body) = get(server.addr(), "/cache").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"hit_rate\":"));
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn nodes_and_events_endpoints_serve_fleet_data() {
        let _g = crate::fleet_test_lock();
        let server = test_server(None);
        telemetry::fleet::set_enabled(true);
        // Before any query: /nodes is valid (possibly empty) JSON and
        // /events is empty-or-lines; unknown ids 404.
        let (status, body) = get(server.addr(), "/nodes").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"skew\":{"), "got: {body}");
        let (status, _) = get(server.addr(), "/nodes/not-a-node").unwrap();
        assert_eq!(status, 404);
        // One served query populates the scorecards and the journal.
        let (status, _) = post(
            server.addr(),
            "/query",
            "{\"id\": 21, \"bounds\": [0, 20, 0, 45]}",
        )
        .unwrap();
        assert_eq!(status, 200);
        let (status, body) = get(server.addr(), "/nodes").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"last_selected_query\":21"),
            "scorecards must attribute the served query: {body}"
        );
        let (status, body) = get(server.addr(), "/nodes/n0").unwrap();
        assert!(
            status == 200 && body.contains("\"train_wall_nanos\":"),
            "node display ids must resolve: {status} {body}"
        );
        let (status, body) = get(server.addr(), "/events?n=4").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.lines().filter(|l| !l.is_empty()).count() <= 4,
            "the n= cap must bound the tail: {body}"
        );
        assert!(body.contains("\"kind\":\"node_selected\""), "got: {body}");
        server.request_shutdown();
        server.wait().unwrap();
        telemetry::fleet::set_enabled(false);
        telemetry::fleet::reset();
        telemetry::journal::clear();
    }

    #[test]
    fn query_round_trip_and_keep_alive() {
        let server = test_server(None);
        let (status, body) = post(
            server.addr(),
            "/query",
            "{\"id\": 9, \"bounds\": [0, 20, 0, 45]}",
        )
        .unwrap();
        assert_eq!(status, 200, "body: {body}");
        assert!(body.contains("\"query_id\":9") && body.contains("\"participants\":["));
        // Same bucket again over one keep-alive socket: still correct.
        let mut ka = KeepAliveClient::connect(server.addr()).unwrap();
        let (s1, b1) = ka
            .request("POST", "/query", "{\"id\": 10, \"bounds\": [0, 20, 0, 45]}")
            .unwrap();
        let (s2, _) = ka.request("GET", "/healthz", "").unwrap();
        assert_eq!((s1, s2), (200, 200));
        assert!(b1.contains("\"query_id\":10"));
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn zero_queue_depth_rejects_with_429_and_retry_after() {
        let server = test_server(Some(AdmissionConfig {
            queue_depth: 0,
            ..AdmissionConfig::default()
        }));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::{Read as _, Write as _};
        let body = "{\"bounds\": [0, 20, 0, 45]}";
        write!(
            stream,
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "got: {response}");
        assert!(
            response.contains("Retry-After:"),
            "429 must carry Retry-After, got: {response}"
        );
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn zero_deadline_sheds_with_503() {
        let server = test_server(Some(AdmissionConfig {
            deadline_ms: Some(0),
            ..AdmissionConfig::default()
        }));
        let (status, body) = post(server.addr(), "/query", "{\"bounds\": [0, 20, 0, 45]}").unwrap();
        assert_eq!(status, 503, "zero deadline must shed everything: {body}");
        assert!(body.contains("shed"));
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn oversized_bodies_get_413_without_being_read() {
        let server = test_server(Some(AdmissionConfig {
            body_cap_bytes: 256,
            ..AdmissionConfig::default()
        }));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::{Read as _, Write as _};
        // Declare a huge body but never send it: the server must answer
        // from the headers alone.
        write!(
            stream,
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "got: {response}");
        server.request_shutdown();
        server.wait().unwrap();
    }

    #[test]
    fn parse_query_body_accepts_the_documented_shape() {
        let (id, bounds) = parse_query_body(b"{\"id\": 7, \"bounds\": [0, 20, 0.5, 45]}").unwrap();
        assert_eq!(id, Some(7));
        assert_eq!(bounds, vec![0.0, 20.0, 0.5, 45.0]);
        let (id, bounds) = parse_query_body(b"{\"bounds\": [-1e3, 1e3]}").unwrap();
        assert_eq!(id, None);
        assert_eq!(bounds, vec![-1000.0, 1000.0]);
        assert!(parse_query_body(b"[]").is_err());
        assert!(parse_query_body(b"{\"bounds\": [1, oops]}").is_err());
        assert!(parse_query_body(b"{}").is_err());
    }

    #[test]
    fn duration_returns_after_draining() {
        // A tiny duration must bring serve() home on its own.
        let started = std::time::Instant::now();
        let server = test_server(None);
        let state = Arc::clone(server.state());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            state.request_shutdown();
        });
        server.wait().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "shutdown must not hang"
        );
    }
}
