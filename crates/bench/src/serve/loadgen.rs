//! A deterministic load generator for the query-serving subsystem
//! (`repro load`).
//!
//! Two layers, cleanly separated so the results are reproducible:
//!
//! 1. **Measurement pass** — every query in a data-anchored workload is
//!    pushed through the real serving path ([`fedlearn::run_batch`]
//!    over cache-bucket groups, exactly like the server's batcher) and
//!    its *simulated* service time (`accounting.sim_seconds`) recorded.
//!    Bit-identical at any `QENS_THREADS` because `run_batch` is.
//! 2. **Queueing simulation** — a logical-clock discrete-event model of
//!    the server (one batcher, bounded queue, cache-bucket batching)
//!    replays those service times under closed-loop (fixed client
//!    concurrency, issue-on-completion) and open-loop (seeded Poisson
//!    arrivals at a multiple of the measured capacity) load.
//!
//! No wall clock anywhere: the emitted saturation table
//! (`results/fig9_saturation.csv`) is byte-identical across runs and
//! thread counts, which `scripts/verify.sh` enforces with a byte diff.
//! The open-loop sweep is the paper-style saturation curve: offered
//! load vs. completed throughput, p50/p99 latency and shed rate, with
//! admission control (the bounded queue) visibly bounding p99 once the
//! server saturates.

use std::collections::VecDeque;

use linalg::rng::{rng_for, Rng};
use qens::geom::Query;
use qens::prelude::*;
use qens::{fedlearn, telemetry};

use super::SERVE_SELECT_L;

/// Client concurrency levels for the closed-loop runs.
const CLOSED_CONCURRENCY: &[usize] = &[1, 4, 16];

/// Offered-load multiples of the measured capacity for the open-loop
/// sweep. The high end is deliberately far past saturation so the
/// admission-control behaviour (shedding, bounded p99) is visible.
const OPEN_FACTORS: &[f64] = &[0.5, 0.8, 1.0, 1.5, 2.5, 4.0];

/// What `repro load` should run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Workload seed (drives the anchored queries and the open-loop
    /// arrival schedule).
    pub seed: u64,
    /// Workload size: queries measured and replayed per simulated run.
    pub queries: usize,
    /// Live-server smoke mode: spawn an ephemeral server, drive it with
    /// concurrent HTTP clients + scrapers, assert, shut down.
    pub smoke: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            seed: 42,
            queries: 160,
            smoke: false,
        }
    }
}

/// One row of the saturation table.
struct Row {
    mode: &'static str,
    param: String,
    offered_qps: f64,
    completed: usize,
    shed: usize,
    throughput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Row {
    fn shed_rate(&self) -> f64 {
        let total = self.completed + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }

    fn to_csv(&self) -> String {
        format!(
            "{},{},{:.6},{},{},{:.6},{:.6},{:.6},{:.6}",
            self.mode,
            self.param,
            self.offered_qps,
            self.completed,
            self.shed,
            self.throughput_qps,
            self.p50_ms,
            self.p99_ms,
            self.shed_rate()
        )
    }
}

/// Nearest-rank percentile over an unsorted sample, in milliseconds.
fn percentile_ms(latencies_seconds: &[f64], q: usize) -> f64 {
    if latencies_seconds.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies_seconds.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1] * 1e3
}

/// The measurement pass: real federation rounds over the anchored
/// workload, batched exactly like the server's batcher (greedy
/// consecutive cache-bucket groups capped at `batch_max`). Returns the
/// per-query simulated service times plus this pass's selection-cache
/// hit/miss delta.
fn measure_service_times(
    fed: &Federation,
    queries: &[Query],
    batch_max: usize,
) -> (Vec<f64>, Vec<u64>, u64, u64) {
    let policy = fed.build_policy(&PolicyKind::query_driven(SERVE_SELECT_L));
    let compat = fed.cache_config().unwrap_or_default();
    let keys: Vec<u64> = queries
        .iter()
        .map(|q| compat.compatibility_key(q))
        .collect();
    let snap = |name: &str| telemetry::global().snapshot().counter(name).unwrap_or(0);
    let (hits0, misses0) = (
        snap("qens_cache_hits_total"),
        snap("qens_cache_misses_total"),
    );
    let mut service = vec![0.0f64; queries.len()];
    let mut start = 0;
    while start < queries.len() {
        let mut end = start + 1;
        while end < queries.len() && end - start < batch_max && keys[end] == keys[start] {
            end += 1;
        }
        let outcomes = fedlearn::run_batch(
            fed.network(),
            &queries[start..end],
            policy.as_ref(),
            fed.config(),
        );
        for (offset, outcome) in outcomes.into_iter().enumerate() {
            // A failed query (no participants, quorum loss) still costs
            // the client a round trip; it just contributes no training
            // time. The anchored workload makes this path rare.
            service[start + offset] = outcome.map_or(0.0, |o| o.accounting.sim_seconds);
        }
        start = end;
    }
    let (hits1, misses1) = (
        snap("qens_cache_hits_total"),
        snap("qens_cache_misses_total"),
    );
    (service, keys, hits1 - hits0, misses1 - misses0)
}

/// Closed-loop replay: `concurrency` clients, each reissuing the next
/// workload query the instant its previous one completes. The server
/// model mirrors the batcher: it takes the earliest waiting query, adds
/// every same-bucket query that has already arrived (up to
/// `batch_max`), and serves the batch in `max(member service)` —
/// exactly the sharing `run_batch` gives the real server.
fn closed_loop(service: &[f64], keys: &[u64], concurrency: usize, batch_max: usize) -> Row {
    let n = service.len();
    // (arrival, query index) of every not-yet-served query.
    let mut waiting: VecDeque<(f64, usize)> = (0..concurrency.min(n)).map(|i| (0.0, i)).collect();
    let mut next_issue = concurrency.min(n);
    let mut free_at = 0.0f64;
    let mut latencies = Vec::with_capacity(n);
    let mut makespan = 0.0f64;
    while let Some(&(head_arrival, _)) = waiting.front() {
        let start = free_at.max(head_arrival);
        let (_, head_idx) = waiting.pop_front().expect("non-empty");
        let mut batch = vec![(head_arrival, head_idx)];
        // Coalesce same-bucket queries that arrived by the start of the
        // wave, preserving arrival order.
        let mut i = 0;
        while i < waiting.len() && batch.len() < batch_max {
            if waiting[i].0 <= start && keys[waiting[i].1] == keys[head_idx] {
                batch.push(waiting.remove(i).expect("index in range"));
            } else {
                i += 1;
            }
        }
        let wave = batch
            .iter()
            .map(|&(_, idx)| service[idx])
            .fold(0.0f64, f64::max);
        let finish = start + wave;
        for (arrival, _) in batch {
            latencies.push(finish - arrival);
            if next_issue < n {
                waiting.push_back((finish, next_issue));
                next_issue += 1;
            }
        }
        free_at = finish;
        makespan = finish;
    }
    let throughput = if makespan > 0.0 {
        latencies.len() as f64 / makespan
    } else {
        0.0
    };
    Row {
        mode: "closed",
        param: format!("{concurrency}"),
        offered_qps: throughput,
        completed: latencies.len(),
        shed: 0,
        throughput_qps: throughput,
        p50_ms: percentile_ms(&latencies, 50),
        p99_ms: percentile_ms(&latencies, 99),
    }
}

/// Open-loop replay: Poisson arrivals at `lambda` qps from a seeded
/// exponential schedule, a bounded queue of `queue_cap` (arrivals past
/// a full queue are shed — the 429 path), and the same batching server
/// model as [`closed_loop`].
fn open_loop(
    service: &[f64],
    keys: &[u64],
    lambda: f64,
    factor: f64,
    queue_cap: usize,
    batch_max: usize,
    seed: u64,
) -> Row {
    let n = service.len();
    let mut rng = rng_for(seed, 0x10AD ^ factor.to_bits());
    let mut t = 0.0f64;
    let arrivals: Vec<f64> = (0..n)
        .map(|_| {
            // Inverse-CDF exponential; 1 - u keeps ln() finite.
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / lambda;
            t
        })
        .collect();

    let mut queue: VecDeque<(f64, usize)> = VecDeque::new();
    let mut free_at = 0.0f64;
    let mut latencies = Vec::with_capacity(n);
    let mut shed = 0usize;
    let mut makespan = 0.0f64;

    // One wave off the queue: earliest head + same-bucket companions
    // that arrived by the wave's start.
    let mut serve_wave = |queue: &mut VecDeque<(f64, usize)>, free_at: &mut f64| {
        let (head_arrival, head_idx) = queue.pop_front().expect("non-empty queue");
        let start = free_at.max(head_arrival);
        let mut batch = vec![(head_arrival, head_idx)];
        let mut i = 0;
        while i < queue.len() && batch.len() < batch_max {
            if queue[i].0 <= start && keys[queue[i].1] == keys[head_idx] {
                batch.push(queue.remove(i).expect("index in range"));
            } else {
                i += 1;
            }
        }
        let wave = batch
            .iter()
            .map(|&(_, idx)| service[idx])
            .fold(0.0f64, f64::max);
        let finish = start + wave;
        for (arrival, _) in batch {
            latencies.push(finish - arrival);
        }
        *free_at = finish;
        finish
    };

    for (idx, &arrival) in arrivals.iter().enumerate() {
        // Let the server work through everything it would finish before
        // this arrival shows up.
        while !queue.is_empty() && free_at.max(queue.front().expect("non-empty").0) < arrival {
            makespan = serve_wave(&mut queue, &mut free_at);
        }
        if queue.len() >= queue_cap {
            shed += 1; // the 429 path: queue full at arrival time
        } else {
            queue.push_back((arrival, idx));
        }
    }
    while !queue.is_empty() {
        makespan = serve_wave(&mut queue, &mut free_at);
    }

    let throughput = if makespan > 0.0 {
        latencies.len() as f64 / makespan
    } else {
        0.0
    };
    Row {
        mode: "open",
        param: format!("{factor:.2}"),
        offered_qps: lambda,
        completed: latencies.len(),
        shed,
        throughput_qps: throughput,
        p50_ms: percentile_ms(&latencies, 50),
        p99_ms: percentile_ms(&latencies, 99),
    }
}

/// The full deterministic run: measurement pass + closed-loop ladder +
/// open-loop saturation sweep. Returns the CSV (header included) and
/// prints a human summary. Panics if admission control fails to bound
/// the overloaded tail — that is the property the sweep exists to show.
pub fn run_load(opts: &LoadOptions) -> String {
    telemetry::set_enabled(true);
    let fed = super::demo_federation();
    let admission = fed.admission();
    let workload = fed.anchored_workload(opts.queries, 4, opts.seed);
    let (service, keys, cache_hits, cache_misses) =
        measure_service_times(&fed, &workload.queries, admission.batch_max);

    let mut rows: Vec<Row> = CLOSED_CONCURRENCY
        .iter()
        .map(|&c| closed_loop(&service, &keys, c, admission.batch_max))
        .collect();
    // Capacity = what the most parallel closed-loop run sustained; the
    // open-loop sweep offers multiples of it.
    let mu = rows
        .last()
        .map(|r| r.throughput_qps)
        .filter(|&t| t > 0.0)
        .unwrap_or(1.0);
    // The sweep replays a finite workload, so a queue as deep as the
    // whole run could never fill and the admission behaviour would be
    // invisible. Model the real depth, capped at a fifth of the
    // workload — the shed/p99 shape is what matters, not the absolute
    // queue size (the live server still enforces the configured depth).
    let queue_cap = admission.queue_depth.min((opts.queries / 5).max(1));
    for &factor in OPEN_FACTORS {
        rows.push(open_loop(
            &service,
            &keys,
            mu * factor,
            factor,
            queue_cap,
            admission.batch_max,
            opts.seed,
        ));
    }

    let overload = rows
        .iter()
        .find(|r| r.mode == "open" && r.param == "4.00")
        .expect("overload row present");
    let saturated = rows
        .iter()
        .find(|r| r.mode == "open" && r.param == "2.50")
        .expect("saturation row present");
    assert!(
        overload.shed > 0,
        "admission control must shed under 4x overload (shed {} of {})",
        overload.shed,
        overload.completed + overload.shed
    );
    assert!(
        overload.p99_ms <= saturated.p99_ms * 1.25,
        "the bounded queue must hold the p99 plateau under overload: \
         p99@4.0x = {:.1} ms vs p99@2.5x = {:.1} ms",
        overload.p99_ms,
        saturated.p99_ms
    );

    let mut csv = String::from(
        "mode,param,offered_qps,completed,shed,throughput_qps,p50_ms,p99_ms,shed_rate\n",
    );
    for row in &rows {
        csv.push_str(&row.to_csv());
        csv.push('\n');
    }

    let lookups = cache_hits + cache_misses;
    let hit_rate = if lookups > 0 {
        cache_hits as f64 / lookups as f64
    } else {
        0.0
    };
    println!(
        "load: {} queries, capacity {mu:.3} qps (closed-loop x{}); \
         cache {cache_hits} hits / {cache_misses} misses ({:.0}% hit rate); \
         overload 4.0x: shed {} ({:.0}%), p99 {:.1} ms (2.5x: {:.1} ms)",
        opts.queries,
        CLOSED_CONCURRENCY.last().expect("non-empty ladder"),
        hit_rate * 100.0,
        overload.shed,
        overload.shed_rate() * 100.0,
        overload.p99_ms,
        saturated.p99_ms,
    );
    csv
}

/// Live-server smoke: an ephemeral server under concurrent query
/// clients and metric scrapers, then a graceful shutdown. Asserts the
/// serving path end to end; wall-clock, so nothing here lands in the
/// deterministic CSV.
pub fn smoke(opts: &LoadOptions) -> std::io::Result<()> {
    use super::http::{get, post, KeepAliveClient};

    telemetry::set_enabled(true);
    let handle = super::spawn("127.0.0.1:0", super::demo_federation())?;
    let addr = handle.addr().to_string();
    let fed = super::demo_federation();
    let workload = fed.anchored_workload(24, 4, opts.seed);
    let bodies: Vec<String> = workload
        .queries
        .iter()
        .map(|q| {
            let bounds: Vec<String> = q.to_boundary_vec().iter().map(|b| format!("{b}")).collect();
            format!(
                "{{\"id\": {}, \"bounds\": [{}]}}",
                q.id(),
                bounds.join(", ")
            )
        })
        .collect();

    const CLIENTS: usize = 4;
    let mut client_threads = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        let bodies: Vec<String> = bodies.iter().skip(c).step_by(CLIENTS).cloned().collect();
        client_threads.push(std::thread::spawn(move || -> std::io::Result<usize> {
            let mut ok = 0usize;
            let mut ka = KeepAliveClient::connect(&addr)?;
            for body in &bodies {
                let (status, reply) = ka.request("POST", "/query", body)?;
                assert!(
                    status == 200,
                    "smoke query must succeed, got {status}: {reply}"
                );
                assert!(reply.contains("\"participants\":["), "reply: {reply}");
                ok += 1;
            }
            Ok(ok)
        }));
    }
    // Scrape while the query stream is in flight.
    let scraper = {
        let addr = addr.clone();
        std::thread::spawn(move || -> std::io::Result<()> {
            for _ in 0..8 {
                let (status, body) = get(&addr, "/metrics")?;
                assert_eq!(status, 200, "/metrics during load");
                assert!(body.contains("# HELP"), "torn /metrics scrape");
                let (status, body) = get(&addr, "/cache")?;
                assert_eq!(status, 200, "/cache during load");
                assert!(body.contains("\"hit_rate\":"), "torn /cache scrape");
                let (status, body) = get(&addr, "/nodes")?;
                assert_eq!(status, 200, "/nodes during load");
                assert!(body.contains("\"skew\":{"), "torn /nodes scrape");
                let (status, body) = get(&addr, "/events?n=16")?;
                assert_eq!(status, 200, "/events during load");
                assert!(
                    body.is_empty() || body.starts_with('{'),
                    "torn /events scrape: {body}"
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Ok(())
        })
    };
    let mut answered = 0usize;
    for t in client_threads {
        answered += t.join().expect("client thread panicked")?;
    }
    scraper.join().expect("scraper thread panicked")?;

    let (cache_status, cache_body) = get(&addr, "/cache")?;
    assert_eq!(cache_status, 200);
    // After the stream: the fleet endpoints must reflect the served
    // queries (every query selected someone, so selections > 0 and the
    // journal has selection events).
    let (nodes_status, nodes_body) = get(&addr, "/nodes")?;
    assert_eq!(nodes_status, 200);
    assert!(
        !nodes_body.contains("\"total_selections\":0,"),
        "served queries must register selections: {nodes_body}"
    );
    let (events_status, events_body) = get(&addr, "/events?n=8")?;
    assert_eq!(events_status, 200);
    assert!(
        events_body.contains("\"kind\":\"node_selected\""),
        "served queries must journal selections: {events_body}"
    );
    let (shutdown_status, _) = post(&addr, "/shutdown", "")?;
    assert_eq!(shutdown_status, 200, "loopback shutdown must be accepted");
    handle.wait()?;
    println!(
        "load --smoke OK: {answered} queries over {CLIENTS} keep-alive clients with \
         concurrent /metrics + /cache + /nodes + /events scrapes; cache: {}",
        cache_body.trim()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_inputs() -> (Vec<f64>, Vec<u64>) {
        // 12 queries, three buckets, constant 1 s service.
        let service = vec![1.0; 12];
        let keys = vec![1, 1, 2, 2, 3, 3, 1, 1, 2, 2, 3, 3];
        (service, keys)
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = vec![0.001, 0.002, 0.003, 0.004];
        assert_eq!(percentile_ms(&xs, 50), 2.0);
        assert_eq!(percentile_ms(&xs, 99), 4.0);
        assert_eq!(percentile_ms(&[], 99), 0.0);
    }

    #[test]
    fn closed_loop_serves_everything_exactly_once() {
        let (service, keys) = toy_inputs();
        for &c in CLOSED_CONCURRENCY {
            let row = closed_loop(&service, &keys, c, 8);
            assert_eq!(row.completed, service.len(), "concurrency {c}");
            assert_eq!(row.shed, 0);
            assert!(row.throughput_qps > 0.0);
        }
    }

    #[test]
    fn closed_loop_batching_raises_throughput() {
        let (service, keys) = toy_inputs();
        let solo = closed_loop(&service, &keys, 1, 8);
        let batched = closed_loop(&service, &keys, 8, 8);
        // With 8 outstanding, same-bucket queries share waves; with one
        // outstanding, every query pays full service.
        assert!(
            batched.throughput_qps > solo.throughput_qps * 1.5,
            "batched {} vs solo {}",
            batched.throughput_qps,
            solo.throughput_qps
        );
    }

    #[test]
    fn open_loop_sheds_when_the_queue_is_full() {
        let (service, keys) = toy_inputs();
        // Tiny queue, heavy offered load: most arrivals bounce.
        let row = open_loop(&service, &keys, 100.0, 4.0, 1, 1, 7);
        assert!(row.shed > 0, "expected sheds, got {}", row.shed);
        assert_eq!(row.completed + row.shed, service.len());
        // And the bounded queue bounds waiting: nobody waits more than
        // ~queue_cap * max service behind the head.
        assert!(row.p99_ms <= (1.0 + 2.0) * 1000.0 * 1.01);
    }

    #[test]
    fn open_loop_is_deterministic_for_a_seed() {
        let (service, keys) = toy_inputs();
        let a = open_loop(&service, &keys, 5.0, 1.0, 4, 4, 11).to_csv();
        let b = open_loop(&service, &keys, 5.0, 1.0, 4, 4, 11).to_csv();
        assert_eq!(a, b);
    }

    #[test]
    fn full_load_run_emits_a_stable_saturation_table() {
        // Small workload to keep the test quick; the asserts inside
        // run_load (shed under overload, bounded p99) must hold here too.
        let opts = LoadOptions {
            seed: 42,
            queries: 48,
            smoke: false,
        };
        let a = run_load(&opts);
        let b = run_load(&opts);
        assert_eq!(a, b, "the saturation table must be run-to-run stable");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(
            lines[0],
            "mode,param,offered_qps,completed,shed,throughput_qps,p50_ms,p99_ms,shed_rate"
        );
        assert_eq!(
            lines.len(),
            1 + CLOSED_CONCURRENCY.len() + OPEN_FACTORS.len()
        );
        let overload = lines.last().expect("rows present");
        assert!(overload.starts_with("open,4.00,"));
    }
}
