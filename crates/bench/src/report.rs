//! Plain-text and CSV rendering of experiment results.

use std::fs;
use std::io;
use std::path::Path;

use crate::figures::{ClusterProjection, DataNeed, ParticipantPair};
use crate::tables::LossComparison;
use qens::prelude::{PolicyComparison, SelectivitySeries};

/// Renders a Table I/II row next to the paper's numbers.
pub fn render_loss_comparison(
    title: &str,
    paper: (f64, f64),
    got: &LossComparison,
    structured_label: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} {:>22} {:>20}\n",
        "Model", structured_label, "Random selection"
    ));
    out.push_str(&format!(
        "{:<10} {:>22.4} {:>20.4}   (ours, scaled MSE over {} queries)\n",
        got.model, got.structured_loss, got.random_loss, got.queries
    ));
    out.push_str(&format!(
        "{:<10} {:>22.2} {:>20.2}   (paper, raw units)\n",
        got.model, paper.0, paper.1
    ));
    out.push_str(&format!(
        "shape: random/structured ratio ours {:.2}x vs paper {:.2}x\n",
        got.ratio(),
        paper.1 / paper.0
    ));
    out
}

/// Renders a Fig. 1/2 participant pair.
pub fn render_pair(title: &str, pair: &ParticipantPair) -> String {
    let mut out = format!("{title}\n");
    for (label, p, loss) in [
        ("selected", &pair.selected, pair.selected_probe_loss),
        ("random", &pair.random, pair.random_probe_loss),
    ] {
        out.push_str(&format!(
            "  {label:<9} {:<14} slope {:>7.2}  corr {:>6.2}  x in [{:>8.1}, {:>8.1}]  probe loss {:.6}\n",
            p.name, p.slope, p.correlation, p.x_range.0, p.x_range.1, loss
        ));
    }
    out
}

/// Renders the Fig. 5 projection.
pub fn render_fig5(query: &[f64], clusters: &[ClusterProjection]) -> String {
    let mut out = format!("query region: {query:?}\n");
    out.push_str(&format!(
        "{:<8} {:>6} {:>10} {:>12}   rect\n",
        "cluster", "size", "h_ik", "supporting"
    ));
    for c in clusters {
        out.push_str(&format!(
            "{:<8} {:>6} {:>10.4} {:>12}   {:?}\n",
            c.cluster_id,
            c.size,
            c.overlap,
            if c.supporting { "yes" } else { "no" },
            c.rect
                .iter()
                .map(|v| (v * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        ));
    }
    out
}

/// Renders the Fig. 6 data-need table.
pub fn render_fig6(query: &[f64], needs: &[DataNeed]) -> String {
    let mut out = format!("query region: {query:?}\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>8} {:>14}\n",
        "node", "needed", "available", "pct", "clusters"
    ));
    for n in needs {
        out.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>7.1}% {:>8}/{}\n",
            n.node,
            n.needed,
            n.total,
            100.0 * n.needed as f64 / n.total as f64,
            n.supporting_clusters,
            n.clusters
        ));
    }
    out
}

/// Renders the Fig. 7 policy table.
pub fn render_fig7(model: &str, rows: &[PolicyComparison]) -> String {
    let mut out = format!("Fig. 7 ({model}): average loss per mechanism\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>14} {:>8}\n",
        "mechanism", "mean loss", "data frac", "sim secs/query", "failed"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>12.6} {:>12.3} {:>14.4} {:>8}\n",
            r.policy,
            r.mean_loss.unwrap_or(f64::NAN),
            r.mean_data_fraction,
            r.mean_sim_seconds,
            r.failed_queries
        ));
    }
    out
}

/// Renders the "Fig. 8 under faults" dropout-sweep table.
pub fn render_fault_sweep(rows: &[crate::figures::FaultSweepRow]) -> String {
    let mut out = String::from(
        "Fig. 8 under faults: mean loss vs dropout rate \
         (full-strength tolerance for both policies)\n",
    );
    out.push_str(&format!(
        "{:>8} {:<18} {:>12} {:>10} {:>8} {:>13} {:>9}\n",
        "dropout", "mechanism", "mean loss", "completed", "failed", "replacements", "dropped"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>7.0}% {:<18} {:>12.6} {:>10} {:>8} {:>13} {:>9}\n",
            100.0 * r.dropout,
            r.policy,
            r.mean_loss.unwrap_or(f64::NAN),
            r.completed,
            r.failed,
            r.replacements,
            r.dropped
        ));
    }
    out
}

/// CSV rows of a fault sweep.
pub fn fault_sweep_csv_rows(rows: &[crate::figures::FaultSweepRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.dropout),
                r.policy.clone(),
                format!("{:.6}", r.mean_loss.unwrap_or(f64::NAN)),
                r.completed.to_string(),
                r.failed.to_string(),
                r.replacements.to_string(),
                r.dropped.to_string(),
                format!("{:.6}", r.mean_sim_seconds),
            ]
        })
        .collect()
}

/// Renders the Fig. 8/9 per-query series.
pub fn render_fig8_fig9(series: &SelectivitySeries) -> String {
    let mut out =
        String::from("Fig. 8 (training seconds) and Fig. 9 (% of data needed), per query\n");
    out.push_str(&format!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}\n",
        "query", "secs w/ query", "secs w/o", "% data w/", "% data w/o"
    ));
    for i in 0..series.query_ids.len() {
        out.push_str(&format!(
            "{:>6} {:>14.4} {:>14.4} {:>11.1}% {:>11.1}%\n",
            series.query_ids[i],
            series.with_seconds[i],
            series.without_seconds[i],
            100.0 * series.with_fraction[i],
            100.0 * series.without_fraction[i],
        ));
    }
    if let Some(s) = series.mean_speedup() {
        out.push_str(&format!("mean training-time saving: {s:.2}x\n"));
    }
    out
}

/// Writes a CSV file under `results/`, creating the directory.
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    fs::write(path, out)
}

/// CSV rows of a selectivity series.
pub fn selectivity_csv_rows(series: &SelectivitySeries) -> Vec<Vec<String>> {
    (0..series.query_ids.len())
        .map(|i| {
            vec![
                series.query_ids[i].to_string(),
                format!("{:.6}", series.with_seconds[i]),
                format!("{:.6}", series.without_seconds[i]),
                format!("{:.6}", series.with_fraction[i]),
                format!("{:.6}", series.without_fraction[i]),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::LossComparison;

    #[test]
    fn loss_comparison_renders_both_rows() {
        let got = LossComparison {
            model: "LR",
            structured_loss: 1.0,
            random_loss: 10.0,
            queries: 5,
        };
        let s = render_loss_comparison("Table II", (9.70, 178.10), &got, "All-node selection");
        assert!(s.contains("Table II"));
        assert!(s.contains("178.10"));
        assert!(s.contains("10.00x"));
    }

    #[test]
    fn csv_writer_round_trips() {
        let dir = std::env::temp_dir().join("qens_report_test");
        let path = dir.join("test.csv");
        write_csv(&path, "a,b", &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(&path).unwrap();
    }
}
