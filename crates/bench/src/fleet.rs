//! The `repro fleet` experiment: fleet scorecards + selection-skew
//! analytics over the three canonical query streams.
//!
//! Runs the paper federation through 200-query uniform, drifting and
//! hotspot workloads (with a light deterministic dropout plan, so the
//! fault-facing counters — dropped, promoted, retried — are exercised
//! too), snapshots the scorecard registry and the logical-clock journal
//! tail after each stream, and writes:
//!
//! * `results/fleet.json` — per-workload fleet documents (scorecards +
//!   skew stats + journal tail), fixed key order;
//! * `results/fig10_fleet_skew.csv` — the selection heatmap: one row per
//!   (workload, node) with every lifetime counter and the node's share
//!   of the stream's selections.
//!
//! Both artifacts are pure functions of the seeds: every scorecard field
//! they contain is integer or leader-serial simulated time, and the
//! journal is exported on the logical clock — `scripts/verify.sh` runs
//! this twice (`QENS_THREADS=1` vs `4`) and byte-diffs the outputs.

use std::path::Path;

use qens::prelude::*;
use qens::telemetry;
use qens::workload::{WorkloadConfig, WorkloadKind};

use crate::{paper_federation, ExperimentScale, EPSILON, L_SELECT, SEED};

/// Queries per stream (the paper's workload length).
const N_QUERIES: usize = 200;
/// Journal events embedded per workload in `fleet.json`.
const JOURNAL_TAIL: usize = 64;
/// Per-round dropout probability of the deterministic fault plan.
const DROPOUT: f64 = 0.1;

/// One workload's recorded outcome.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Workload label (`uniform` / `drifting` / `hotspot`).
    pub workload: &'static str,
    /// Scorecards after the stream, node order.
    pub cards: Vec<telemetry::fleet::Scorecard>,
    /// Fleet size the stream ran against.
    pub fleet_size: u64,
    /// Skew statistics over the final scorecards.
    pub skew: telemetry::fleet::SkewStats,
    /// The deterministic fleet JSON document.
    pub fleet_json: String,
    /// Logical-clock journal tail (JSON lines).
    pub journal_tail: String,
    /// Ledger totals for the agreement check: (retries, dropped,
    /// replacements) summed over the stream's accounting rows.
    pub ledger: (usize, usize, usize),
    /// Queries the stream failed (quorum lost). The ledger only rows
    /// completed queries, so fleet totals exceed it when this is > 0.
    pub failed: usize,
}

/// The three canonical streams, in report order.
fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("uniform", WorkloadKind::Uniform),
        (
            "drifting",
            WorkloadKind::Drifting {
                step_frac: 0.02,
                spread_frac: 0.03,
            },
        ),
        (
            "hotspot",
            WorkloadKind::Hotspot {
                hotspots: 3,
                spread_frac: 0.05,
            },
        ),
    ]
}

/// Runs the three streams and returns their recorded fleets.
pub fn run_fleet(scale: ExperimentScale) -> Vec<FleetRun> {
    telemetry::fleet::set_enabled(true);
    let fed = paper_federation(scale, ModelKind::Linear, Aggregation::WeightedAveraging);
    let pk = PolicyKind::QueryDriven {
        epsilon: EPSILON,
        l: L_SELECT,
    };
    let mut runs = Vec::with_capacity(3);
    for (label, kind) in workloads() {
        telemetry::fleet::reset();
        telemetry::journal::clear();
        let wl = fed.workload(&WorkloadConfig {
            n_queries: N_QUERIES,
            kind,
            ..WorkloadConfig::paper_default(SEED ^ 0x10)
        });
        let mut config = fed.config().clone();
        config.faults = Some(FaultSpec::dropout(SEED, DROPOUT));
        config.tolerance = FaultTolerance::full_strength();
        let stream = qens::fedlearn::run_stream(fed.network(), &wl, pk.build().as_ref(), &config);
        let cards = telemetry::fleet::snapshot();
        let fleet_size = telemetry::fleet::fleet_size();
        let skew = telemetry::fleet::skew(&cards, fleet_size, telemetry::fleet::PROM_TOP_K);
        let ledger = (
            stream.accounting.rows.iter().map(|r| r.retries).sum(),
            stream
                .accounting
                .rows
                .iter()
                .map(|r| r.dropped_participants)
                .sum(),
            stream.accounting.rows.iter().map(|r| r.replacements).sum(),
        );
        runs.push(FleetRun {
            workload: label,
            cards,
            fleet_size,
            skew,
            fleet_json: telemetry::fleet::to_json(),
            journal_tail: telemetry::journal::to_jsonl(
                telemetry::trace::Clock::Logical,
                Some(JOURNAL_TAIL),
            ),
            ledger,
            failed: stream
                .per_query
                .iter()
                .filter(|q| q.error.is_some())
                .count(),
        });
    }
    runs
}

/// The combined `results/fleet.json` document: one entry per workload,
/// the journal tail embedded as an array of event objects.
pub fn to_json(runs: &[FleetRun]) -> String {
    let mut out = String::with_capacity(runs.iter().map(|r| r.fleet_json.len() + 4096).sum());
    out.push_str("{\"workloads\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"workload\":\"");
        out.push_str(run.workload);
        out.push_str("\",\"fleet\":");
        out.push_str(&run.fleet_json);
        out.push_str(",\"journal_tail\":[");
        let mut first = true;
        for line in run.journal_tail.lines().filter(|l| !l.is_empty()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(line);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out.push('\n');
    out
}

/// The `results/fig10_fleet_skew.csv` heatmap: one row per
/// (workload, node), zero cards included so every cell of the heatmap is
/// present.
pub fn to_csv(runs: &[FleetRun]) -> String {
    let mut out = String::from(
        "workload,node,selected,participated,dropped,straggled,retried,promoted,\
         rounds_trained,bytes_transferred,share\n",
    );
    for run in runs {
        let total = run.skew.total_selections.max(1);
        let n = run.fleet_size.max(run.cards.len() as u64);
        for node in 0..n {
            match run.cards.iter().find(|c| c.node == node) {
                Some(card) => out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{:.6}\n",
                    run.workload,
                    card.node,
                    card.selected,
                    card.participated,
                    card.dropped,
                    card.straggled,
                    card.retried,
                    card.promoted,
                    card.rounds_trained,
                    card.bytes_transferred,
                    card.selected as f64 / total as f64,
                )),
                // A node the stream never touched: an explicit zero row,
                // so the heatmap has every cell.
                None => out.push_str(&format!(
                    "{},{},0,0,0,0,0,0,0,0,0.000000\n",
                    run.workload, node
                )),
            }
        }
    }
    out
}

/// Runs the experiment, prints the skew table and writes both artifacts.
pub fn run_and_write(scale: ExperimentScale, dir: &Path) -> std::io::Result<Vec<FleetRun>> {
    let runs = run_fleet(scale);
    println!("Fig. 10: selection skew per workload (fleet observability)");
    println!(
        "{:<10} {:>6} {:>10} {:>8} {:>8} {:>7} {:>9} {:>10}",
        "workload", "nodes", "selections", "gini", "entropy", "never", "hottest", "selected"
    );
    for run in &runs {
        let (hot_node, hot_count) = run.skew.top.first().copied().unwrap_or((0, 0));
        println!(
            "{:<10} {:>6} {:>10} {:>8.4} {:>8.4} {:>7} {:>9} {:>10}",
            run.workload,
            run.fleet_size,
            run.skew.total_selections,
            run.skew.gini,
            run.skew.entropy,
            run.skew.never_selected,
            format!("n{hot_node}"),
            hot_count,
        );
        // The registry and the simulator ledger must tell one story.
        // The ledger only rows completed queries, so a stream with
        // quorum-lost failures legitimately shows more fleet activity;
        // agreement is exact otherwise.
        let fleet = (
            run.cards.iter().map(|c| c.retried).sum::<u64>(),
            run.cards.iter().map(|c| c.dropped).sum::<u64>(),
            run.cards.iter().map(|c| c.promoted).sum::<u64>(),
        );
        let ledger = (
            run.ledger.0 as u64,
            run.ledger.1 as u64,
            run.ledger.2 as u64,
        );
        if run.failed == 0 {
            assert_eq!(
                fleet, ledger,
                "{}: scorecard totals must agree with the QueryAccounting ledger",
                run.workload
            );
        } else {
            assert!(
                fleet.0 >= ledger.0 && fleet.1 >= ledger.1 && fleet.2 >= ledger.2,
                "{}: fleet {fleet:?} must cover the completed-query ledger {ledger:?}",
                run.workload
            );
            println!(
                "  ({}: {} queries lost quorum; fleet counts their activity, \
                 the ledger does not)",
                run.workload, run.failed
            );
        }
    }
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join("fleet.json");
    std::fs::write(&json_path, to_json(&runs))?;
    let csv_path = dir.join("fig10_fleet_skew.csv");
    std::fs::write(&csv_path, to_csv(&runs))?;
    println!(
        "(fleet scorecards -> {}, skew heatmap -> {})\n",
        json_path.display(),
        csv_path.display()
    );
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural checks only: the fleet registry is process-global and
    /// other bench tests in this binary run queries concurrently, so
    /// exact counts are asserted in `tests/fleet_observability.rs`
    /// (its own process) and on the single-purpose `repro fleet` path.
    #[test]
    fn fleet_runs_are_recorded_and_serialised() {
        let _g = crate::fleet_test_lock();
        let runs = run_fleet(ExperimentScale::Quick);
        assert_eq!(runs.len(), 3);
        for run in &runs {
            assert!(run.skew.total_selections > 0, "{}", run.workload);
            assert!(!run.cards.is_empty());
            assert!(run.fleet_json.contains("\"skew\":{"));
            assert!(
                run.journal_tail.contains("\"kind\":\"node_selected\""),
                "{} journal: {}",
                run.workload,
                run.journal_tail.len()
            );
            // The logical tail must not leak wall time.
            assert!(!run.journal_tail.contains("wall_nanos"));
        }
        let doc = to_json(&runs);
        assert!(doc.starts_with("{\"workloads\":[{\"workload\":\"uniform\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        let csv = to_csv(&runs);
        assert!(csv.lines().count() > 3);
        assert!(csv.starts_with("workload,node,selected"));
        telemetry::fleet::set_enabled(false);
        telemetry::fleet::reset();
        telemetry::journal::clear();
    }
}
