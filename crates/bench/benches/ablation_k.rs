//! Ablation: sensitivity to the clusters-per-node parameter K.
//!
//! The paper's §IV-A remark argues K = 1 is wrong ("the cluster
//! boundaries could be expanded and included many unrelated data points")
//! — the printed data fractions quantify that: at K = 1 every supporting
//! node contributes all of its data. Criterion measures the quantisation
//! cost as K grows.

use bench::{ExperimentScale, EPSILON, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qens::fedlearn::{run_stream, FederationConfig};
use qens::prelude::*;

fn federation_with_k(k: usize) -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(10, ExperimentScale::Quick.samples_per_node())
        .clusters_per_node(k)
        .seed(SEED)
        .epochs(8)
        .build()
}

fn bench_ablation_k(c: &mut Criterion) {
    let ks = [1usize, 3, 5, 8, 13];
    for &k in &ks {
        let fed = federation_with_k(k);
        let wl = fed.workload(&WorkloadConfig {
            n_queries: 20,
            ..WorkloadConfig::paper_default(SEED)
        });
        let cfg = FederationConfig {
            train: TrainConfig::paper_lr(SEED).with_epochs(8),
            ..FederationConfig::paper_lr(SEED)
        };
        let policy = QueryDriven {
            epsilon: EPSILON,
            ..QueryDriven::top_l(L_SELECT)
        };
        let res = run_stream(fed.network(), &wl, &policy, &cfg);
        eprintln!(
            "[ablation_k] K={k:>2}: mean loss {:.6}, mean data fraction {:.3}, failed {}",
            res.mean_loss().unwrap_or(f64::NAN),
            res.mean_data_fraction(),
            res.failed_queries()
        );
    }

    let nodes = qens::airdata::scenario::heterogeneous_nodes(10, 500, SEED);
    let mut group = c.benchmark_group("ablation_k_quantize");
    group.sample_size(10);
    for &k in &ks {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut net = EdgeNetwork::from_datasets(
                    nodes
                        .iter()
                        .map(|n| (n.name.clone(), n.dataset.clone()))
                        .collect(),
                );
                net.quantize_all(k, SEED);
                net
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_k);
criterion_main!(benches);
