//! Ablation: the paper's additive per-dimension overlap (Eq. 2) against
//! the multiplicative volume-fraction overlap. The volume score zeroes
//! out whenever one dimension misses, so it is far harsher — the printed
//! support counts show how many clusters each variant keeps.

use bench::{heterogeneous_federation, ExperimentScale, EPSILON};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_ablation_overlap(c: &mut Criterion) {
    let fed = heterogeneous_federation(ExperimentScale::Quick);
    let q = fed.query_from_bounds(0, &[0.0, 25.0, 0.0, 55.0]);

    // Quality comparison: supporting clusters kept by each overlap score.
    let mut eq2_supported = 0usize;
    let mut vol_supported = 0usize;
    let mut clusters = 0usize;
    for node in fed.network().nodes() {
        for s in node.summaries() {
            clusters += 1;
            if q.region().overlap_rate(&s.rect) >= EPSILON {
                eq2_supported += 1;
            }
            if q.region().volume_overlap(&s.rect) >= EPSILON {
                vol_supported += 1;
            }
        }
    }
    eprintln!(
        "[ablation_overlap] of {clusters} clusters, Eq.2 keeps {eq2_supported}, \
         volume-fraction keeps {vol_supported} (harsher, loses partial matches)"
    );

    // Cost comparison over all summaries.
    let rects: Vec<HyperRect> = fed
        .network()
        .nodes()
        .iter()
        .flat_map(|n| n.summaries().iter().map(|s| s.rect.clone()))
        .collect();
    let mut group = c.benchmark_group("ablation_overlap_score");
    group.bench_function("eq2_additive", |b| {
        b.iter(|| {
            rects
                .iter()
                .map(|r| q.region().overlap_rate(black_box(r)))
                .sum::<f64>()
        })
    });
    group.bench_function("volume_fraction", |b| {
        b.iter(|| {
            rects
                .iter()
                .map(|r| q.region().volume_overlap(black_box(r)))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_overlap);
criterion_main!(benches);
