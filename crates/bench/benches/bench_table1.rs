//! Table I bench: the homogeneous-population rounds behind the
//! all-node vs random comparison. The quality numbers (the table itself)
//! print once during setup; Criterion then measures the cost of each
//! mechanism's round.

use bench::{homogeneous_federation, ExperimentScale, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_table1(c: &mut Criterion) {
    let t = bench::tables::table1(ExperimentScale::Quick);
    eprintln!(
        "[table1] all-node loss {:.6}, random loss {:.6}, ratio {:.2}x (paper: 24.45 vs 24.70, 1.01x)",
        t.structured_loss,
        t.random_loss,
        t.ratio()
    );

    let fed = homogeneous_federation(ExperimentScale::Quick);
    let q = {
        let bounds = fed.network().global_space().to_boundary_vec();
        Query::from_boundary_vec(0, &bounds)
    };
    let mut group = c.benchmark_group("table1_round");
    group.sample_size(10);
    group.bench_function("all_nodes", |b| {
        b.iter(|| fed.run_query(&q, &PolicyKind::AllNodes).unwrap())
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            fed.run_query(
                &q,
                &PolicyKind::Random {
                    l: L_SELECT,
                    seed: SEED,
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
