//! Ablation: the ε (cluster-overlap) and ψ (node-ranking) thresholds.
//!
//! Printed sweeps show the data/quality trade-off each threshold
//! controls; Criterion measures how selection cost varies with ε (it
//! should not — the mechanism scans all summaries either way).

use bench::{heterogeneous_federation, ExperimentScale, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qens::fedlearn::{run_stream, FederationConfig};
use qens::prelude::*;
use qens::selection::SelectionCap;

fn bench_ablation_thresholds(c: &mut Criterion) {
    let fed = heterogeneous_federation(ExperimentScale::Quick);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 20,
        ..WorkloadConfig::paper_default(SEED)
    });
    let cfg = FederationConfig {
        train: TrainConfig::paper_lr(SEED).with_epochs(8),
        ..FederationConfig::paper_lr(SEED)
    };

    // ε sweep (top-ℓ cut held fixed).
    for eps in [0.01, 0.05, 0.1, 0.2, 0.4] {
        let policy = QueryDriven {
            epsilon: eps,
            ..QueryDriven::top_l(L_SELECT)
        };
        let res = run_stream(fed.network(), &wl, &policy, &cfg);
        eprintln!(
            "[ablation_eps] eps={eps:<5}: mean loss {:.6}, data fraction {:.3}, failed {}",
            res.mean_loss().unwrap_or(f64::NAN),
            res.mean_data_fraction(),
            res.failed_queries()
        );
    }

    // ψ sweep (Eq. 5 threshold cut instead of top-ℓ).
    for psi in [0.05, 0.2, 0.5, 1.0] {
        let policy = QueryDriven {
            epsilon: 0.05,
            cap: SelectionCap::Threshold(psi),
            ..QueryDriven::top_l(0)
        };
        let res = run_stream(fed.network(), &wl, &policy, &cfg);
        let mean_nodes: f64 = res
            .per_query
            .iter()
            .filter(|r| r.error.is_none())
            .map(|r| r.nodes_selected as f64)
            .sum::<f64>()
            / (res.per_query.len() - res.failed_queries()).max(1) as f64;
        eprintln!(
            "[ablation_psi] psi={psi:<4}: mean loss {:.6}, mean nodes {:.2}, failed {}",
            res.mean_loss().unwrap_or(f64::NAN),
            mean_nodes,
            res.failed_queries()
        );
    }

    let q = fed.query_from_bounds(0, &[0.0, 25.0, 0.0, 55.0]);
    let mut group = c.benchmark_group("ablation_eps_select");
    for eps in [0.01_f64, 0.1, 0.4] {
        let policy = QueryDriven {
            epsilon: eps,
            ..QueryDriven::top_l(L_SELECT)
        };
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| {
                let ctx = SelectionContext::new(fed.network(), &q);
                policy.select(&ctx)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_thresholds);
criterion_main!(benches);
