//! Micro-benchmarks of the mechanism's hot kernels: the per-dimension
//! overlap ratio, Eq. 2 over rectangles, node scoring (Eqs. 3–4),
//! k-means quantisation and a training epoch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qens::cluster::{KMeans, KMeansConfig};
use qens::linalg::Matrix;
use qens::prelude::*;

fn bench_overlap(c: &mut Criterion) {
    let q = Interval::new(3.0, 18.0);
    let k = Interval::new(0.0, 11.0);
    c.bench_function("interval_overlap_ratio", |b| {
        b.iter(|| black_box(q).overlap_ratio(black_box(&k)))
    });

    let qr = HyperRect::from_boundary_vec(&[0.0, 10.0, 5.0, 25.0, -3.0, 3.0, 0.0, 1.0]);
    let kr = HyperRect::from_boundary_vec(&[2.0, 14.0, 0.0, 20.0, -1.0, 5.0, 0.2, 0.9]);
    c.bench_function("rect_overlap_rate_d4", |b| {
        b.iter(|| black_box(&qr).overlap_rate(black_box(&kr)))
    });
}

fn bench_node_scoring(c: &mut Criterion) {
    let fed = FederationBuilder::new().heterogeneous_nodes(10, 500).seed(1).epochs(1).build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let policy = QueryDriven::top_l(4);
    let node = &fed.network().nodes()[0];
    c.bench_function("score_one_node_k5", |b| {
        b.iter(|| policy.score_node(black_box(node), black_box(&q)))
    });
    c.bench_function("select_10_nodes", |b| {
        b.iter(|| {
            let ctx = SelectionContext::new(fed.network(), &q);
            policy.select(black_box(&ctx))
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = qens::linalg::rng::rng_for(3, 1);
    let rows: Vec<Vec<f64>> = (0..1000)
        .map(|_| {
            vec![
                qens::linalg::rng::normal(&mut rng, 0.0, 10.0),
                qens::linalg::rng::normal(&mut rng, 5.0, 3.0),
            ]
        })
        .collect();
    let data = Matrix::from_rows(&rows);
    c.bench_function("kmeans_fit_1000x2_k5", |b| {
        b.iter(|| KMeans::fit(black_box(&data), &KMeansConfig::paper_default(7)))
    });
}

fn mlkit_train_once(model: &mut Model, data: &DenseDataset) {
    let cfg = TrainConfig { epochs: 1, validation_split: 0.0, ..TrainConfig::paper_lr(0) };
    qens::mlkit::train(model, data, &cfg);
}

fn bench_training(c: &mut Criterion) {
    let mut rng = qens::linalg::rng::rng_for(5, 2);
    let rows: Vec<Vec<f64>> =
        (0..500).map(|_| vec![qens::linalg::rng::normal(&mut rng, 0.0, 1.0)]).collect();
    let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
    let data = DenseDataset::new(Matrix::from_rows(&rows), y);
    c.bench_function("lr_train_epoch_500", |b| {
        b.iter(|| {
            let mut m = ModelKind::Linear.build(1, 0);
            mlkit_train_once(&mut m, &data)
        })
    });
    c.bench_function("nn16_train_epoch_500", |b| {
        b.iter(|| {
            let mut m = ModelKind::Neural { hidden: 16 }.build(1, 0);
            mlkit_train_once(&mut m, &data)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(30);
    targets = bench_overlap, bench_node_scoring, bench_kmeans, bench_training
}
criterion_main!(kernels);
