//! Micro-benchmarks of the mechanism's hot kernels: the per-dimension
//! overlap ratio, Eq. 2 over rectangles, node scoring (Eqs. 3–4),
//! k-means quantisation, a training epoch — and the cost of the
//! telemetry layer itself (disabled vs enabled).
//!
//! Runs on the in-tree [`bench::harness`] so the default offline build
//! needs no Criterion. `cargo bench -p bench --bench kernels` measures;
//! `cargo test` smoke-runs every kernel once.

use bench::harness::{black_box, Harness};
use qens::cluster::{self, KMeans, KMeansConfig};
use qens::linalg::Matrix;
use qens::par;
use qens::prelude::*;

fn bench_overlap(h: &mut Harness) {
    let q = Interval::new(3.0, 18.0);
    let k = Interval::new(0.0, 11.0);
    h.bench("interval_overlap_ratio", || {
        black_box(black_box(&q).overlap_ratio(black_box(&k)));
    });

    let qr = HyperRect::from_boundary_vec(&[0.0, 10.0, 5.0, 25.0, -3.0, 3.0, 0.0, 1.0]);
    let kr = HyperRect::from_boundary_vec(&[2.0, 14.0, 0.0, 20.0, -1.0, 5.0, 0.2, 0.9]);
    h.bench("rect_overlap_rate_d4", || {
        black_box(black_box(&qr).overlap_rate(black_box(&kr)));
    });
}

fn bench_node_scoring(h: &mut Harness) {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(10, 500)
        .seed(1)
        .epochs(1)
        .build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let policy = QueryDriven::top_l(4);
    let node = &fed.network().nodes()[0];
    h.bench("score_one_node_k5", || {
        black_box(policy.score_node(black_box(node), black_box(&q)));
    });

    // The telemetry-overhead guard: the same selection kernel with the
    // registry off (default) and on. The disabled path is a single
    // relaxed atomic load per call site, so the two numbers should be
    // statistically indistinguishable.
    qens::telemetry::set_enabled(false);
    let off = h
        .bench("select_10_nodes_telemetry_off", || {
            let ctx = SelectionContext::new(fed.network(), &q);
            black_box(policy.select(black_box(&ctx)));
        })
        .min_nanos;
    qens::telemetry::set_enabled(true);
    let on = h
        .bench("select_10_nodes_telemetry_on", || {
            let ctx = SelectionContext::new(fed.network(), &q);
            black_box(policy.select(black_box(&ctx)));
        })
        .min_nanos;
    qens::telemetry::set_enabled(false);
    if !h.is_fast() {
        println!(
            "telemetry overhead on select_10_nodes: {:+.1}% (off {off:.0} ns, on {on:.0} ns)",
            (on - off) / off * 100.0
        );
    }
}

fn bench_kmeans(h: &mut Harness) {
    let mut rng = qens::linalg::rng::rng_for(3, 1);
    let rows: Vec<Vec<f64>> = (0..1000)
        .map(|_| {
            vec![
                qens::linalg::rng::normal(&mut rng, 0.0, 10.0),
                qens::linalg::rng::normal(&mut rng, 5.0, 3.0),
            ]
        })
        .collect();
    let data = Matrix::from_rows(&rows);
    h.bench("kmeans_fit_1000x2_k5", || {
        black_box(KMeans::fit(
            black_box(&data),
            &KMeansConfig::paper_default(7),
        ));
    });
}

fn mlkit_train_once(model: &mut Model, data: &DenseDataset) {
    let cfg = TrainConfig {
        epochs: 1,
        validation_split: 0.0,
        ..TrainConfig::paper_lr(0)
    };
    qens::mlkit::train(model, data, &cfg);
}

fn bench_training(h: &mut Harness) {
    let mut rng = qens::linalg::rng::rng_for(5, 2);
    let rows: Vec<Vec<f64>> = (0..500)
        .map(|_| vec![qens::linalg::rng::normal(&mut rng, 0.0, 1.0)])
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
    let data = DenseDataset::new(Matrix::from_rows(&rows), y);
    h.bench("lr_train_epoch_500", || {
        let mut m = ModelKind::Linear.build(1, 0);
        mlkit_train_once(&mut m, &data);
    });
    h.bench("nn16_train_epoch_500", || {
        let mut m = ModelKind::Neural { hidden: 16 }.build(1, 0);
        mlkit_train_once(&mut m, &data);
    });
}

/// Serial-vs-pooled comparisons for the kernels wired through the `par`
/// pool. Both sides run the *same* chunked code (1-thread pools run it
/// inline), so the ratio isolates scheduling cost/benefit; results are
/// bit-identical by the pool's determinism contract. On a single-core
/// box the pooled numbers show pure overhead — see EXPERIMENTS.md.
fn bench_pool_kernels(h: &mut Harness) {
    let workers = par::default_threads().max(2);
    let serial = par::sized(1);
    let pooled = par::sized(workers);

    // k-means Lloyd assignment: the O(rows * k * dim) inner loop.
    let mut rng = qens::linalg::rng::rng_for(11, 4);
    let rows: Vec<Vec<f64>> = (0..20_000)
        .map(|_| {
            vec![
                qens::linalg::rng::normal(&mut rng, 0.0, 10.0),
                qens::linalg::rng::normal(&mut rng, 5.0, 3.0),
                qens::linalg::rng::normal(&mut rng, -2.0, 6.0),
            ]
        })
        .collect();
    let data = Matrix::from_rows(&rows);
    let model = KMeans::fit_with_pool(&data, &KMeansConfig::with_k(5, 7), &serial);
    let mut assignments = vec![0usize; data.rows()];
    let ser = h
        .bench("kmeans_assign_20000x3_serial", || {
            cluster::kmeans::assign_chunked(
                black_box(&data),
                model.centroids(),
                black_box(&mut assignments),
                &serial,
            );
        })
        .min_nanos;
    let par_nanos = h
        .bench("kmeans_assign_20000x3_pooled", || {
            cluster::kmeans::assign_chunked(
                black_box(&data),
                model.centroids(),
                black_box(&mut assignments),
                &pooled,
            );
        })
        .min_nanos;
    if !h.is_fast() {
        println!(
            "kmeans assign speedup on {workers} workers: {:.2}x (serial {ser:.0} ns, pooled {par_nanos:.0} ns)",
            ser / par_nanos
        );
    }

    // Per-node selection scoring over a larger population.
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(24, 400)
        .seed(2)
        .epochs(1)
        .build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let policy = QueryDriven::top_l(8);
    let ctx = SelectionContext::new(fed.network(), &q);
    let ser = h
        .bench("select_24_nodes_serial", || {
            black_box(policy.select_with_pool(black_box(&ctx), &serial));
        })
        .min_nanos;
    let par_nanos = h
        .bench("select_24_nodes_pooled", || {
            black_box(policy.select_with_pool(black_box(&ctx), &pooled));
        })
        .min_nanos;
    if !h.is_fast() {
        println!(
            "selection speedup on {workers} workers: {:.2}x (serial {ser:.0} ns, pooled {par_nanos:.0} ns)",
            ser / par_nanos
        );
    }

    // Full federation round: participants train as pool jobs. Reuses the
    // leader-region query, which the selection bench above shows has
    // supporting clusters (a full-space query dilutes every overlap
    // ratio below ε on this 24-node population).
    let rq = fed.query_from_bounds(1, &[0.0, 20.0, 0.0, 45.0]);
    let base = fed.config().clone();
    let ser_cfg = qens::fedlearn::FederationConfig {
        parallel: false,
        ..base.clone()
    };
    let par_cfg = base.with_thread_count(workers);
    let ser = h
        .bench("run_query_24_nodes_serial", || {
            black_box(qens::fedlearn::run_query(fed.network(), &rq, &policy, &ser_cfg).unwrap());
        })
        .min_nanos;
    let par_nanos = h
        .bench("run_query_24_nodes_pooled", || {
            black_box(qens::fedlearn::run_query(fed.network(), &rq, &policy, &par_cfg).unwrap());
        })
        .min_nanos;
    if !h.is_fast() {
        println!(
            "run_query speedup on {workers} workers: {:.2}x (serial {ser:.0} ns, pooled {par_nanos:.0} ns)",
            ser / par_nanos
        );
    }
}

fn main() {
    let mut h = Harness::from_env();
    qens::telemetry::set_enabled(false);
    bench_overlap(&mut h);
    bench_node_scoring(&mut h);
    bench_kmeans(&mut h);
    bench_training(&mut h);
    bench_pool_kernels(&mut h);
}
