//! Fig. 8 bench: the *measured wall time* of one training round with and
//! without query-driven data selectivity — the benchmark equivalent of
//! the figure's green-vs-blue gap. The per-query simulated series prints
//! once during setup.

use bench::{paper_federation, ExperimentScale, EPSILON, L_SELECT};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_fig8(c: &mut Criterion) {
    let series = bench::figures::fig8_fig9(ExperimentScale::Quick);
    if let Some(s) = series.mean_speedup() {
        eprintln!(
            "[fig8] simulated mean training-time saving: {s:.2}x over {} queries",
            series.query_ids.len()
        );
    }

    let fed = paper_federation(
        ExperimentScale::Quick,
        ModelKind::Linear,
        Aggregation::WeightedAveraging,
    );
    let q = {
        let space = fed.network().global_space();
        let x = space.interval(0);
        let y = space.interval(1);
        Query::from_boundary_vec(
            0,
            &[
                x.lo(),
                x.lo() + 0.25 * x.length(),
                y.lo(),
                y.lo() + 0.25 * y.length(),
            ],
        )
    };

    let mut group = c.benchmark_group("fig8_training_time");
    group.sample_size(10);
    group.bench_function("with_query_selectivity", |b| {
        b.iter(|| {
            fed.run_query(
                &q,
                &PolicyKind::QueryDriven {
                    epsilon: EPSILON,
                    l: L_SELECT,
                },
            )
            .unwrap()
        })
    });
    group.bench_function("without_query_selectivity", |b| {
        b.iter(|| {
            fed.run_query(
                &q,
                &PolicyKind::QueryDrivenNoSelectivity {
                    epsilon: EPSILON,
                    l: L_SELECT,
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
