//! Ablation: the Eq. 4 ranking `r_i = p_i · K'/K` against its two halves
//! (potential-only `p_i`, count-only `K'/K`). Quality (mean loss over a
//! workload) prints once; Criterion measures the ranking computation.

use bench::{heterogeneous_federation, ExperimentScale, EPSILON, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::fedlearn::{run_stream, FederationConfig};
use qens::prelude::*;
use qens::selection::{RankingRule, SelectionCap};

fn policy(rule: RankingRule) -> QueryDriven {
    QueryDriven {
        epsilon: EPSILON,
        cap: SelectionCap::TopL(L_SELECT),
        rule,
    }
}

fn bench_ablation_ranking(c: &mut Criterion) {
    let fed = heterogeneous_federation(ExperimentScale::Quick);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 25,
        ..WorkloadConfig::paper_default(SEED)
    });
    let cfg = FederationConfig {
        train: TrainConfig::paper_lr(SEED).with_epochs(8),
        ..FederationConfig::paper_lr(SEED)
    };
    for rule in [
        RankingRule::PaperEq4,
        RankingRule::PotentialOnly,
        RankingRule::CountOnly,
    ] {
        let res = run_stream(fed.network(), &wl, &policy(rule), &cfg);
        eprintln!(
            "[ablation_ranking] {:?}: mean loss {:.6}, mean data fraction {:.3}, failed {}",
            rule,
            res.mean_loss().unwrap_or(f64::NAN),
            res.mean_data_fraction(),
            res.failed_queries()
        );
    }

    let q = fed.query_from_bounds(0, &[0.0, 25.0, 0.0, 55.0]);
    let mut group = c.benchmark_group("ablation_ranking_select");
    for (name, rule) in [
        ("eq4", RankingRule::PaperEq4),
        ("potential_only", RankingRule::PotentialOnly),
        ("count_only", RankingRule::CountOnly),
    ] {
        let p = policy(rule);
        group.bench_function(name, |b| {
            b.iter(|| {
                let ctx = SelectionContext::new(fed.network(), &q);
                p.select(&ctx)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_ranking);
criterion_main!(benches);
