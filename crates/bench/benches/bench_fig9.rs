//! Fig. 9 bench: the data-need computation — how fast the leader can
//! determine, per query, which fraction of the network's data the query
//! actually requires (the whole point of the O(1)-communication design).
//! The per-query percentage series prints once during setup.

use bench::{paper_federation, ExperimentScale, EPSILON};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_fig9(c: &mut Criterion) {
    let series = bench::figures::fig8_fig9(ExperimentScale::Quick);
    let mean_with: f64 =
        series.with_fraction.iter().sum::<f64>() / series.with_fraction.len().max(1) as f64;
    let mean_without: f64 =
        series.without_fraction.iter().sum::<f64>() / series.without_fraction.len().max(1) as f64;
    eprintln!(
        "[fig9] mean data needed: {:.1}% with the query-driven mechanism vs {:.1}% without",
        100.0 * mean_with,
        100.0 * mean_without
    );

    let fed = paper_federation(
        ExperimentScale::Quick,
        ModelKind::Linear,
        Aggregation::WeightedAveraging,
    );
    let space = fed.network().global_space();
    let x = space.interval(0);
    let y = space.interval(1);
    let queries: Vec<Query> = (0..20u64)
        .map(|i| {
            let f = i as f64 / 20.0 * 0.6;
            Query::from_boundary_vec(
                i,
                &[
                    x.lo() + f * x.length(),
                    x.lo() + (f + 0.3) * x.length(),
                    y.lo() + f * y.length(),
                    y.lo() + (f + 0.3) * y.length(),
                ],
            )
        })
        .collect();
    let policy = QueryDriven {
        epsilon: EPSILON,
        ..QueryDriven::top_l(usize::MAX)
    };

    c.bench_function("fig9_data_need_20_queries", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                let ctx = SelectionContext::new(fed.network(), q);
                let sel = policy.select(&ctx);
                total += sel.total_training_samples(fed.network());
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
