//! Ablation: sequential (§IV-B) vs interleaved (§IV-A) visiting of the
//! supporting clusters during local training.
//!
//! With few epochs the two are indistinguishable; at the paper's 100
//! epochs the sequential order lets the last cluster overwrite the NN's
//! earlier fit (intra-node forgetting), which the interleaved order
//! avoids at identical total cost. The printed sweep quantifies it.

use bench::{paper_federation, ExperimentScale, EPSILON, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::fedlearn::{run_stream, FederationConfig, StageOrder};
use qens::prelude::*;

fn bench_ablation_stage_order(c: &mut Criterion) {
    let fed = paper_federation(
        ExperimentScale::Quick,
        ModelKind::Neural {
            hidden: ExperimentScale::Quick.nn_hidden(),
        },
        Aggregation::WeightedAveraging,
    );
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 15,
        ..WorkloadConfig::paper_default(SEED)
    });
    let policy = QueryDriven {
        epsilon: EPSILON,
        ..QueryDriven::top_l(L_SELECT)
    };

    for epochs in [10usize, 40] {
        for (label, order) in [
            ("sequential", StageOrder::Sequential),
            ("interleaved", StageOrder::Interleaved),
        ] {
            let cfg = FederationConfig {
                train: TrainConfig::paper_nn(SEED).with_epochs(epochs),
                stage_order: order,
                ..FederationConfig::paper_nn(SEED)
            };
            let res = run_stream(fed.network(), &wl, &policy, &cfg);
            eprintln!(
                "[ablation_stage_order] NN epochs={epochs:<3} {label:<11}: mean loss {:.6}, failed {}",
                res.mean_loss().unwrap_or(f64::NAN),
                res.failed_queries()
            );
        }
    }

    let q = {
        let space = fed.network().global_space();
        let x = space.interval(0);
        let y = space.interval(1);
        Query::from_boundary_vec(
            0,
            &[
                x.lo(),
                x.lo() + 0.3 * x.length(),
                y.lo(),
                y.lo() + 0.3 * y.length(),
            ],
        )
    };
    let mut group = c.benchmark_group("stage_order_round");
    group.sample_size(10);
    for (label, order) in [
        ("sequential", StageOrder::Sequential),
        ("interleaved", StageOrder::Interleaved),
    ] {
        let cfg = FederationConfig {
            train: TrainConfig::paper_nn(SEED).with_epochs(10),
            stage_order: order,
            ..FederationConfig::paper_nn(SEED)
        };
        group.bench_function(label, |b| {
            b.iter(|| qens::fedlearn::run_query(fed.network(), &q, &policy, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_stage_order);
criterion_main!(benches);
