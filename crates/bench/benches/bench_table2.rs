//! Table II bench: the heterogeneous-population rounds behind the
//! compatible-node vs random comparison. Quality prints once; Criterion
//! measures the per-mechanism round cost.

use bench::{heterogeneous_federation, ExperimentScale, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_table2(c: &mut Criterion) {
    let t = bench::tables::table2(ExperimentScale::Quick);
    eprintln!(
        "[table2] compatible loss {:.6}, random loss {:.6}, ratio {:.2}x (paper: 9.70 vs 178.10, 18.4x)",
        t.structured_loss,
        t.random_loss,
        t.ratio()
    );

    let fed = heterogeneous_federation(ExperimentScale::Quick);
    let q = Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0]);
    let mut group = c.benchmark_group("table2_round");
    group.sample_size(10);
    group.bench_function("compatible_node", |b| {
        b.iter(|| fed.run_query(&q, &PolicyKind::query_driven(1)).unwrap())
    });
    group.bench_function("random_node", |b| {
        b.iter(|| {
            fed.run_query(&q, &PolicyKind::Random { l: 1, seed: SEED })
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
