//! Fig. 7 bench: one federation round per selection mechanism on the
//! air-quality network (the figure's mean-loss table prints once during
//! setup; Criterion measures per-mechanism round cost, which is what
//! distinguishes GT's probe overhead from the summary-only mechanism).

use bench::{paper_federation, ExperimentScale, EPSILON, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_fig7(c: &mut Criterion) {
    let rows = bench::figures::fig7(ExperimentScale::Quick, ModelKind::Linear);
    eprintln!(
        "[fig7/LR] mean loss per mechanism (paper ordering: weighted <= averaging < GT < random):"
    );
    for r in &rows {
        eprintln!(
            "[fig7/LR]   {:<18} loss {:.6}  data {:.3}  sim {:.4}s",
            r.policy,
            r.mean_loss.unwrap_or(f64::NAN),
            r.mean_data_fraction,
            r.mean_sim_seconds
        );
    }

    let fed = paper_federation(
        ExperimentScale::Quick,
        ModelKind::Linear,
        Aggregation::WeightedAveraging,
    );
    let q = {
        let space = fed.network().global_space();
        let mk = |iv: &Interval, lo: f64, hi: f64| {
            (iv.lo() + lo * iv.length(), iv.lo() + hi * iv.length())
        };
        let x = mk(space.interval(0), 0.1, 0.4);
        let y = mk(space.interval(1), 0.1, 0.4);
        Query::from_boundary_vec(0, &[x.0, x.1, y.0, y.1])
    };

    let mut group = c.benchmark_group("fig7_round_lr");
    group.sample_size(10);
    group.bench_function("query_driven", |b| {
        b.iter(|| {
            fed.run_query(
                &q,
                &PolicyKind::QueryDriven {
                    epsilon: EPSILON,
                    l: L_SELECT,
                },
            )
            .unwrap()
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            fed.run_query(
                &q,
                &PolicyKind::Random {
                    l: L_SELECT,
                    seed: SEED,
                },
            )
            .unwrap()
        })
    });
    group.bench_function("game_theory", |b| {
        b.iter(|| {
            fed.run_query(
                &q,
                &PolicyKind::GameTheory {
                    leader: 0,
                    l: L_SELECT,
                    seed: SEED,
                },
            )
            .unwrap()
        })
    });
    group.bench_function("all_nodes", |b| {
        b.iter(|| fed.run_query(&q, &PolicyKind::AllNodes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
