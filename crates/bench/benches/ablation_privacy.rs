//! Ablation: differentially-private summaries.
//!
//! Nodes release Laplace-noised cluster rectangles/counts at budget ε
//! (see `cluster::privacy`); the leader ranks on the noised view while
//! local training stays exact. The printed sweep shows how much selection
//! quality the privacy protection costs; Criterion measures the noising
//! itself.

use bench::{ExperimentScale, EPSILON, L_SELECT, SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qens::cluster::privacy::{noise_summaries, PrivacyBudget};
use qens::fedlearn::{run_stream, FederationConfig};
use qens::prelude::*;

fn private_federation(dp_epsilon: Option<f64>) -> EdgeNetwork {
    let nodes = qens::airdata::scenario::heterogeneous_nodes(
        10,
        ExperimentScale::Quick.samples_per_node(),
        SEED,
    );
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    match dp_epsilon {
        Some(eps) => net.quantize_all_private(5, SEED, eps),
        None => net.quantize_all(5, SEED),
    }
    net
}

fn bench_ablation_privacy(c: &mut Criterion) {
    let cfg = FederationConfig {
        train: TrainConfig::paper_lr(SEED).with_epochs(8),
        ..FederationConfig::paper_lr(SEED)
    };
    let policy = QueryDriven {
        epsilon: EPSILON,
        ..QueryDriven::top_l(L_SELECT)
    };

    let exact = private_federation(None);
    let wl = workload::generate(
        &exact.global_space(),
        &WorkloadConfig {
            n_queries: 20,
            ..WorkloadConfig::paper_default(SEED)
        },
    );
    let base = run_stream(&exact, &wl, &policy, &cfg);
    eprintln!(
        "[ablation_privacy] eps=inf (exact): mean loss {:.6}, data fraction {:.3}, failed {}",
        base.mean_loss().unwrap_or(f64::NAN),
        base.mean_data_fraction(),
        base.failed_queries()
    );
    for eps in [10.0, 1.0, 0.3, 0.1, 0.03] {
        let net = private_federation(Some(eps));
        let res = run_stream(&net, &wl, &policy, &cfg);
        eprintln!(
            "[ablation_privacy] eps={eps:<5}: mean loss {:.6}, data fraction {:.3}, failed {}",
            res.mean_loss().unwrap_or(f64::NAN),
            res.mean_data_fraction(),
            res.failed_queries()
        );
    }

    // Cost of the noising itself.
    let node = &exact.nodes()[0];
    let sums = node.summaries().to_vec();
    let mut group = c.benchmark_group("privacy_noise_summaries");
    for eps in [0.1_f64, 1.0] {
        let budget = PrivacyBudget::new(eps);
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| noise_summaries(&sums, &budget, SEED))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_privacy);
criterion_main!(benches);
