//! Ablation: the *model forgetting* effect the paper's introduction
//! warns about — "distributed learning models are more likely to forget
//! what they have learned from previous participants when they move to
//! new participants with different data distributions".
//!
//! Setup: train a model on the leader-region data, then continue training
//! it on (a) a compatible node and (b) an incompatible node, and measure
//! the loss back on the leader region. The printed numbers show the
//! incompatible continuation erasing the earlier fit; Criterion measures
//! the continuation round itself.

use bench::{heterogeneous_federation, ExperimentScale, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use qens::prelude::*;

fn bench_ablation_forgetting(c: &mut Criterion) {
    let fed = heterogeneous_federation(ExperimentScale::Quick);
    let scaler = SpaceScaler::from_space(&fed.network().global_space());
    let cfg = TrainConfig::paper_lr(SEED).with_epochs(15);

    // Stage 1: learn the leader region (node 0).
    let leader_data = scaler.transform_dataset(fed.network().nodes()[0].data());
    let mut base = ModelKind::Linear.build(1, SEED);
    qens::mlkit::train(&mut base, &leader_data, &cfg);
    let before = base.evaluate(&leader_data, Loss::Mse);

    // Stage 2a: continue on the compatible node (node 1, same pattern).
    let compatible = scaler.transform_dataset(fed.network().nodes()[1].data());
    let mut kept = base.clone();
    qens::mlkit::train(&mut kept, &compatible, &cfg);
    let after_compatible = kept.evaluate(&leader_data, Loss::Mse);

    // Stage 2b: continue on an incompatible node (node 4 inverts the
    // relation in the heterogeneous scenario).
    let incompatible = scaler.transform_dataset(fed.network().nodes()[4].data());
    let mut forgot = base.clone();
    qens::mlkit::train(&mut forgot, &incompatible, &cfg);
    let after_incompatible = forgot.evaluate(&leader_data, Loss::Mse);

    eprintln!(
        "[ablation_forgetting] leader-region loss: after leader {before:.6}, \
         after compatible continuation {after_compatible:.6}, \
         after incompatible continuation {after_incompatible:.6} \
         ({}x degradation)",
        (after_incompatible / after_compatible.max(1e-12)).round()
    );
    assert!(
        after_incompatible > after_compatible,
        "incompatible continuation must hurt more"
    );

    let mut group = c.benchmark_group("forgetting_continuation");
    group.sample_size(10);
    group.bench_function("compatible_node", |b| {
        b.iter(|| {
            let mut m = base.clone();
            qens::mlkit::train(&mut m, &compatible, &cfg)
        })
    });
    group.bench_function("incompatible_node", |b| {
        b.iter(|| {
            let mut m = base.clone();
            qens::mlkit::train(&mut m, &incompatible, &cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_forgetting);
criterion_main!(benches);
