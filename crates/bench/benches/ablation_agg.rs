//! Ablation: the aggregation rule — plain prediction averaging (Eq. 6),
//! ranking-weighted averaging (Eq. 7), and the FedAvg weight-averaging
//! extension. Quality prints once; Criterion measures aggregation +
//! prediction cost (the ensemble predicts with ℓ models, FedAvg with 1).

use bench::{heterogeneous_federation, ExperimentScale, EPSILON, L_SELECT, SEED};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qens::fedlearn::{run_query, run_stream, FederationConfig};
use qens::prelude::*;

fn cfg(agg: Aggregation) -> FederationConfig {
    FederationConfig {
        train: TrainConfig::paper_lr(SEED).with_epochs(8),
        ..FederationConfig::paper_lr(SEED)
    }
    .with_aggregation(agg)
}

fn bench_ablation_agg(c: &mut Criterion) {
    let fed = heterogeneous_federation(ExperimentScale::Quick);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 20,
        ..WorkloadConfig::paper_default(SEED)
    });
    let policy = QueryDriven {
        epsilon: EPSILON,
        ..QueryDriven::top_l(L_SELECT)
    };
    for agg in [
        Aggregation::ModelAveraging,
        Aggregation::WeightedAveraging,
        Aggregation::FedAvgWeights,
    ] {
        let res = run_stream(fed.network(), &wl, &policy, &cfg(agg));
        eprintln!(
            "[ablation_agg] {:<16}: mean loss {:.6}, failed {}",
            agg.name(),
            res.mean_loss().unwrap_or(f64::NAN),
            res.failed_queries()
        );
    }

    // Prediction cost of the resulting global model.
    let q = fed.query_from_bounds(0, &[0.0, 25.0, 0.0, 55.0]);
    let ensemble = run_query(
        fed.network(),
        &q,
        &policy,
        &cfg(Aggregation::WeightedAveraging),
    )
    .expect("round completes");
    let single = run_query(fed.network(), &q, &policy, &cfg(Aggregation::FedAvgWeights))
        .expect("round completes");
    let probe = [0.4_f64];
    let mut group = c.benchmark_group("ablation_agg_predict");
    group.bench_function("ensemble_weighted", |b| {
        b.iter(|| ensemble.global.predict_row(black_box(&probe)))
    });
    group.bench_function("fedavg_single", |b| {
        b.iter(|| single.global.predict_row(black_box(&probe)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_agg);
criterion_main!(benches);
