//! Cluster summaries: what a node actually ships to the leader.
//!
//! Per §III-C the nodes "just send to the leader the boundaries of their
//! clusters and the number of the clusters per node" — a
//! [`ClusterSummary`] is exactly that payload: the per-dimension min/max
//! rectangle of the members, the representative `u_k`, and the member
//! count (used for data-volume accounting in Fig. 9).

use geom::HyperRect;
use linalg::Matrix;

use crate::kmeans::KMeans;

/// Summary of a single non-empty cluster on a node.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterSummary {
    /// Cluster index within the node (0..K).
    pub cluster_id: usize,
    /// Number of member samples.
    pub size: usize,
    /// The representative `u_k` (centroid).
    pub representative: Vec<f64>,
    /// Per-dimension min/max rectangle of the members.
    pub rect: HyperRect,
}

impl ClusterSummary {
    /// Serialized payload size in bytes (used by the edge-network cost
    /// model): boundary vector + representative + two counters.
    pub fn wire_bytes(&self) -> usize {
        let d = self.rect.dim();
        (2 * d + d) * std::mem::size_of::<f64>() + 2 * std::mem::size_of::<u64>()
    }
}

/// Summarises every *non-empty* cluster of a fitted model.
///
/// Empty clusters (possible when K exceeds the diversity of the data)
/// simply do not produce summaries; the `K` the node reports is the
/// number of summaries returned.
pub fn summarize(data: &Matrix, model: &KMeans) -> Vec<ClusterSummary> {
    let mut out = Vec::with_capacity(model.k());
    for c in 0..model.k() {
        let members = model.members(c);
        if members.is_empty() {
            continue;
        }
        let rect = HyperRect::bounding_points(members.iter().map(|&i| data.row(i)))
            .expect("non-empty member set always yields a bounding box");
        out.push(ClusterSummary {
            cluster_id: c,
            size: members.len(),
            representative: model.centroids().row(c).to_vec(),
            rect,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansConfig;
    use geom::Interval;

    fn two_blob_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64 * 0.01, 1.0 + i as f64 * 0.01]);
        }
        for i in 0..20 {
            rows.push(vec![100.0 + i as f64 * 0.01, -50.0 + i as f64 * 0.01]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn summaries_cover_their_members() {
        let data = two_blob_data();
        let model = KMeans::fit(&data, &KMeansConfig::with_k(2, 3));
        let sums = summarize(&data, &model);
        assert_eq!(sums.len(), 2);
        for s in &sums {
            for i in model.members(s.cluster_id) {
                assert!(s.rect.contains_point(data.row(i)));
            }
            assert!(
                s.rect.contains_point(&s.representative),
                "centroid outside its own rect"
            );
        }
        assert_eq!(sums.iter().map(|s| s.size).sum::<usize>(), data.rows());
    }

    #[test]
    fn rects_are_tight() {
        // One cluster, so the rect must be the dataset bounding box exactly.
        let data = Matrix::from_rows(&[vec![1.0, -5.0], vec![4.0, 2.0], vec![2.0, 0.0]]);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(1, 0));
        let sums = summarize(&data, &model);
        assert_eq!(
            sums[0].rect.intervals(),
            &[Interval::new(1.0, 4.0), Interval::new(-5.0, 2.0)]
        );
    }

    #[test]
    fn wire_bytes_scales_with_dimension() {
        let data = two_blob_data();
        let model = KMeans::fit(&data, &KMeansConfig::with_k(2, 3));
        let s = &summarize(&data, &model)[0];
        // d = 2: 4 boundary f64 + 2 representative f64 + 2 u64 counters.
        assert_eq!(s.wire_bytes(), 6 * 8 + 2 * 8);
    }

    #[test]
    fn singleton_cluster_has_point_rect() {
        let data = Matrix::from_rows(&[vec![0.0], vec![100.0]]);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(2, 1));
        let sums = summarize(&data, &model);
        assert_eq!(sums.len(), 2);
        for s in &sums {
            assert_eq!(s.size, 1);
            assert_eq!(s.rect.interval(0).length(), 0.0);
        }
    }
}
