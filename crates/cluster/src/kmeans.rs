//! Lloyd's k-means with k-means++ initialisation.
//!
//! The Lloyd hot loops (assignment, centroid sums, inertia) run on the
//! bounded [`par::ThreadPool`] with fixed row chunking and ordered
//! per-chunk partial reductions, so a fit is bit-identical for any
//! worker count (including the inline serial path of a 1-thread pool).

use linalg::rng::Rng;
use linalg::{ops, rng, Matrix};
use par::ThreadPool;

/// Rows per pool task in the chunked Lloyd kernels. Fixed (never derived
/// from the worker count) so partial-reduction order is deterministic.
const ROW_CHUNK: usize = par::DEFAULT_CHUNK;

/// Centroid initialisation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InitMethod {
    /// k-means++ (D² sampling) — the default; gives `O(log k)`-competitive
    /// starting points and much more stable boundaries across seeds.
    KMeansPlusPlus,
    /// Uniformly random distinct samples (Forgy). Kept for ablations.
    Random,
}

/// Configuration for a k-means fit.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KMeansConfig {
    /// Number of clusters K (the paper fixes K = 5 for all nodes).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement (squared L2).
    pub tol: f64,
    /// RNG seed for initialisation.
    pub seed: u64,
    /// Initialisation strategy.
    pub init: InitMethod,
}

impl KMeansConfig {
    /// The paper's evaluation configuration: `K = 5`, k-means++.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            k: 5,
            max_iters: 100,
            tol: 1e-8,
            seed,
            init: InitMethod::KMeansPlusPlus,
        }
    }

    /// Same defaults with a different K.
    pub fn with_k(k: usize, seed: u64) -> Self {
        Self {
            k,
            ..Self::paper_default(seed)
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KMeans {
    centroids: Matrix,
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
    converged: bool,
}

impl KMeans {
    /// Fits k-means to `data` (rows = samples).
    ///
    /// If `data` has fewer rows than `config.k`, the effective K is clamped
    /// to the number of rows (every sample becomes its own cluster) — this
    /// mirrors how a node with very little data still produces summaries.
    ///
    /// # Panics
    /// Panics if `data` is empty or `config.k == 0`.
    pub fn fit(data: &Matrix, config: &KMeansConfig) -> Self {
        Self::fit_with_pool(data, config, par::global())
    }

    /// [`KMeans::fit`] on an explicit, injectable pool handle.
    ///
    /// The fit is bit-identical for every `pool.threads()` value
    /// (chunked kernels with ordered partial reductions); a 1-thread
    /// pool is the inline serial reference.
    pub fn fit_with_pool(data: &Matrix, config: &KMeansConfig, pool: &ThreadPool) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(data.rows() > 0, "cannot cluster an empty dataset");
        let _fit_span = telemetry::span!("qens_cluster_kmeans_fit_nanos");
        telemetry::counter!("qens_cluster_kmeans_fits_total").incr();
        let k = config.k.min(data.rows());
        // Deterministic leader-side trace: the fit runs on the caller's
        // thread and its iteration count is bit-identical for any pool.
        let _trace_fit = telemetry::trace::span_args(
            "cluster.kmeans",
            &[("k", k as u64), ("rows", data.rows() as u64)],
        );
        let mut rng = rng::rng_for(config.seed, 0xC1_15_7E_12);

        let init_span = telemetry::trace::span("cluster.kmeans.init");
        let mut centroids = match config.init {
            InitMethod::KMeansPlusPlus => init_plus_plus(data, k, &mut rng),
            InitMethod::Random => init_random(data, k, &mut rng),
        };
        init_span.finish();

        let mut assignments = vec![0usize; data.rows()];
        let mut iterations = 0;
        let mut converged = false;

        for it in 0..config.max_iters {
            iterations = it + 1;
            let _iter_span =
                telemetry::trace::span_args("cluster.kmeans.iter", &[("iter", it as u64)]);
            {
                let _s = telemetry::span!("qens_cluster_kmeans_assign_nanos");
                let _t = telemetry::trace::span("cluster.kmeans.assign");
                assign(data, &centroids, &mut assignments, pool);
            }
            let update_span = telemetry::span!("qens_cluster_kmeans_update_nanos");
            let trace_update = telemetry::trace::span("cluster.kmeans.update");
            let new_centroids =
                recompute_centroids(data, &assignments, k, &centroids, &mut rng, pool);
            trace_update.finish();
            update_span.finish();
            let movement: f64 = (0..k)
                .map(|c| ops::squared_distance(centroids.row(c), new_centroids.row(c)))
                .sum();
            centroids = new_centroids;
            if movement <= config.tol {
                converged = true;
                break;
            }
        }
        telemetry::counter!("qens_cluster_kmeans_iterations_total").add(iterations as u64);
        telemetry::trace::instant(
            "cluster.kmeans.done",
            &[
                ("iterations", iterations as u64),
                ("converged", u64::from(converged)),
            ],
        );
        // Final assignment against the final centroids.
        let finalize_span = telemetry::trace::span("cluster.kmeans.finalize");
        assign(data, &centroids, &mut assignments, pool);
        let inertia = compute_inertia(data, &centroids, &assignments, pool);
        finalize_span.finish();
        Self {
            centroids,
            assignments,
            inertia,
            iterations,
            converged,
        }
    }

    /// Cluster representatives `u_k`, one per row.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Number of clusters actually fitted.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Per-sample cluster assignment.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Quantisation loss (Eq. 1): sum of squared distances of every sample
    /// to its representative.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the fit converged before `max_iters`.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Index of the nearest centroid to `point`.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest_centroid(&self.centroids, point).0
    }

    /// Sample indices belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn nearest_centroid(centroids: &Matrix, point: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, row) in centroids.row_iter().enumerate() {
        let d = ops::squared_distance(row, point);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// Lloyd assignment over fixed row chunks: each pool task fills a
/// disjoint slice of `assignments`. Elementwise, so trivially
/// worker-count independent. Public for the `kernels` bench's
/// serial-vs-pooled comparison.
pub fn assign_chunked(
    data: &Matrix,
    centroids: &Matrix,
    assignments: &mut [usize],
    pool: &ThreadPool,
) {
    assert_eq!(assignments.len(), data.rows(), "one assignment per row");
    pool.for_each_chunk(assignments, ROW_CHUNK, |offset, part| {
        for (j, slot) in part.iter_mut().enumerate() {
            *slot = nearest_centroid(centroids, data.row(offset + j)).0;
        }
    });
}

fn assign(data: &Matrix, centroids: &Matrix, assignments: &mut [usize], pool: &ThreadPool) {
    assign_chunked(data, centroids, assignments, pool);
}

/// Quantisation loss (Eq. 1) as ordered per-chunk partial sums: chunk
/// boundaries depend only on the row count, and the partials are reduced
/// in chunk order, so the value is bit-identical for any worker count.
fn compute_inertia(
    data: &Matrix,
    centroids: &Matrix,
    assignments: &[usize],
    pool: &ThreadPool,
) -> f64 {
    pool.map_chunks(data.rows(), ROW_CHUNK, |range| {
        range
            .map(|i| ops::squared_distance(data.row(i), centroids.row(assignments[i])))
            .sum::<f64>()
    })
    .iter()
    .sum()
}

/// Recomputes centroids as member means; an emptied cluster is re-seeded at
/// the sample farthest from its current centroid so K never degrades.
///
/// The member sums are accumulated as per-chunk partial `(sums, counts)`
/// pairs reduced in chunk order — deterministic for any worker count.
fn recompute_centroids(
    data: &Matrix,
    assignments: &[usize],
    k: usize,
    old: &Matrix,
    rng: &mut impl Rng,
    pool: &ThreadPool,
) -> Matrix {
    let d = data.cols();
    let partials: Vec<(Matrix, Vec<usize>)> = pool.map_chunks(data.rows(), ROW_CHUNK, |range| {
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in range {
            let a = assignments[i];
            ops::axpy(1.0, data.row(i), sums.row_mut(a));
            counts[a] += 1;
        }
        (sums, counts)
    });
    let mut sums = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (part_sums, part_counts) in partials {
        sums.axpy_inplace(1.0, &part_sums);
        for (total, part) in counts.iter_mut().zip(&part_counts) {
            *total += part;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            let inv = 1.0 / count as f64;
            ops::scale(inv, sums.row_mut(c));
        } else {
            // Empty-cluster repair: move it onto the sample farthest from
            // its previous position (ties broken by a random member).
            telemetry::counter!("qens_cluster_kmeans_empty_repairs_total").incr();
            let far = data
                .row_iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    let da = ops::squared_distance(a, old.row(c));
                    let db = ops::squared_distance(b, old.row(c));
                    da.partial_cmp(&db).expect("distances are finite")
                })
                .map(|(i, _)| i)
                .unwrap_or_else(|| rng.gen_range(0..data.rows()));
            sums.row_mut(c).copy_from_slice(data.row(far));
        }
    }
    sums
}

fn init_random(data: &Matrix, k: usize, rng: &mut impl Rng) -> Matrix {
    // Sample k distinct row indices (Floyd's algorithm would be overkill:
    // k is tiny; rejection sampling over a Vec suffices).
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    while chosen.len() < k {
        let i = rng.gen_range(0..data.rows());
        if !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    data.select_rows(&chosen)
}

fn init_plus_plus(data: &Matrix, k: usize, rng: &mut impl Rng) -> Matrix {
    let n = data.rows();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    chosen.push(rng.gen_range(0..n));
    // d2[i] = squared distance of sample i to its nearest chosen centre.
    let mut d2: Vec<f64> = (0..n)
        .map(|i| ops::squared_distance(data.row(i), data.row(chosen[0])))
        .collect();
    while chosen.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining mass at distance zero (duplicated points):
            // fall back to uniform choice.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        for (i, best) in d2.iter_mut().enumerate() {
            let d = ops::squared_distance(data.row(i), data.row(next));
            if d < *best {
                *best = d;
            }
        }
    }
    data.select_rows(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::rng_for;

    /// Three well-separated Gaussian blobs in 2-D.
    fn blobs(seed: u64, per_blob: usize) -> (Matrix, Vec<usize>) {
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 8.0]];
        let mut rng = rng_for(seed, 1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..per_blob {
                rows.push(vec![
                    linalg::rng::normal(&mut rng, c[0], 0.5),
                    linalg::rng::normal(&mut rng, c[1], 0.5),
                ]);
                labels.push(ci);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, labels) = blobs(42, 60);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(3, 7));
        assert!(model.converged());
        // Every blob must map to a single distinct cluster.
        let mut blob_to_cluster = [usize::MAX; 3];
        for (i, &lab) in labels.iter().enumerate() {
            let a = model.assignments()[i];
            if blob_to_cluster[lab] == usize::MAX {
                blob_to_cluster[lab] = a;
            }
            assert_eq!(blob_to_cluster[lab], a, "blob {lab} split across clusters");
        }
        let mut seen = blob_to_cluster.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3, "two blobs merged");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, _) = blobs(1, 40);
        let cfg = KMeansConfig::paper_default(99);
        let a = KMeans::fit(&data, &cfg);
        let b = KMeans::fit(&data, &cfg);
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.inertia(), b.inertia());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (data, _) = blobs(5, 50);
        let mut last = f64::INFINITY;
        for k in [1, 2, 3, 5, 8] {
            let m = KMeans::fit(&data, &KMeansConfig::with_k(k, 3));
            assert!(m.inertia() <= last + 1e-9, "inertia went up at k={k}");
            last = m.inertia();
        }
    }

    #[test]
    fn clamps_k_to_sample_count() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(5, 0));
        assert_eq!(m.k(), 2);
        assert!(m.inertia() < 1e-12);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 2.0], vec![2.0, 4.0], vec![4.0, 0.0]]);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(1, 0));
        assert_eq!(m.centroids().row(0), &[2.0, 2.0]);
        assert!(m.converged());
    }

    #[test]
    fn predict_matches_training_assignments() {
        let (data, _) = blobs(9, 30);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(3, 4));
        for (i, row) in data.row_iter().enumerate() {
            assert_eq!(m.predict(row), m.assignments()[i]);
        }
    }

    #[test]
    fn members_partition_the_samples() {
        let (data, _) = blobs(3, 25);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(3, 11));
        let mut seen = vec![false; data.rows()];
        for c in 0..m.k() {
            for i in m.members(c) {
                assert!(!seen[i], "sample {i} in two clusters");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(m.sizes().iter().sum::<usize>(), data.rows());
    }

    #[test]
    fn duplicate_points_do_not_break_init() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(3, 8));
        assert!(m.inertia() < 1e-12);
        assert!(m.centroids().all_finite());
    }

    #[test]
    fn fit_is_bit_identical_across_pool_sizes() {
        // > ROW_CHUNK samples so the pooled path really splits the rows
        // into several chunks.
        let (data, _) = blobs(17, 500); // 1500 rows
        let cfg = KMeansConfig::with_k(4, 13);
        let serial = KMeans::fit_with_pool(&data, &cfg, &par::ThreadPool::new(1));
        for threads in [2, 4, 7] {
            let pooled = KMeans::fit_with_pool(&data, &cfg, &par::ThreadPool::new(threads));
            assert_eq!(serial.centroids(), pooled.centroids(), "{threads} threads");
            assert_eq!(serial.assignments(), pooled.assignments());
            assert_eq!(serial.inertia().to_bits(), pooled.inertia().to_bits());
            assert_eq!(serial.iterations(), pooled.iterations());
        }
    }

    #[test]
    fn assign_chunked_matches_predict() {
        let (data, _) = blobs(21, 400); // 1200 rows, crosses a chunk edge
        let m = KMeans::fit(&data, &KMeansConfig::with_k(3, 2));
        let pool = par::ThreadPool::new(3);
        let mut assignments = vec![0usize; data.rows()];
        assign_chunked(&data, m.centroids(), &mut assignments, &pool);
        for (i, row) in data.row_iter().enumerate() {
            assert_eq!(assignments[i], m.predict(row));
        }
    }

    #[test]
    fn random_init_also_converges() {
        let (data, _) = blobs(13, 40);
        let cfg = KMeansConfig {
            init: InitMethod::Random,
            ..KMeansConfig::with_k(3, 21)
        };
        let m = KMeans::fit(&data, &cfg);
        assert!(m.inertia().is_finite());
        assert_eq!(m.k(), 3);
    }
}
