//! Mini-batch k-means for streaming edge nodes.
//!
//! Edge nodes keep collecting data; refitting Lloyd's algorithm from
//! scratch on every arrival is wasteful. Mini-batch k-means (Sculley,
//! WWW'10) updates centroids with per-centre learning rates
//! `1/count` from small batches, which lets a node fold new observations
//! into its quantisation — and therefore into the summaries it ships to
//! the leader — at `O(batch · K · d)` cost per update.

use linalg::rng::Rng;
use linalg::{ops, rng, Matrix};

use crate::kmeans::{KMeans, KMeansConfig};

/// An incrementally maintained k-means quantisation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MiniBatchKMeans {
    centroids: Matrix,
    /// Per-centroid assignment counts (the inverse learning rates).
    counts: Vec<u64>,
    seed: u64,
    updates: u64,
}

impl MiniBatchKMeans {
    /// Initialises from a first data batch using a full k-means fit
    /// (the batch is typically small, so this is cheap).
    ///
    /// # Panics
    /// Panics if `initial` is empty or `k == 0`.
    pub fn new(initial: &Matrix, k: usize, seed: u64) -> Self {
        let fitted = KMeans::fit(initial, &KMeansConfig::with_k(k, seed));
        let counts = fitted.sizes().iter().map(|&s| s as u64).collect();
        Self {
            centroids: fitted.centroids().clone(),
            counts,
            seed,
            updates: 0,
        }
    }

    /// Current centroids.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Total points folded in so far.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Nearest-centroid index for a point.
    pub fn predict(&self, point: &[f64]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for (c, row) in self.centroids.row_iter().enumerate() {
            let d = ops::squared_distance(row, point);
            if d < best.1 {
                best = (c, d);
            }
        }
        best.0
    }

    /// Folds one batch of new observations into the centroids.
    ///
    /// Each sample moves its nearest centroid by `1/count` toward itself
    /// — the per-centre decaying learning rate that makes mini-batch
    /// k-means converge.
    pub fn update(&mut self, batch: &Matrix) {
        assert_eq!(
            batch.cols(),
            self.centroids.cols(),
            "batch dimensionality mismatch"
        );
        self.updates += 1;
        // Assign first (against frozen centroids), then move — the
        // standard two-phase mini-batch step.
        let assignments: Vec<usize> = batch.row_iter().map(|r| self.predict(r)).collect();
        for (row, &c) in batch.row_iter().zip(&assignments) {
            self.counts[c] += 1;
            let eta = 1.0 / self.counts[c] as f64;
            let centre = self.centroids.row_mut(c);
            for (ci, &xi) in centre.iter_mut().zip(row) {
                *ci += eta * (xi - *ci);
            }
        }
    }

    /// Reseeds a centroid that has gone stale (rarely assigned) onto a
    /// random sample of `batch`; returns how many were reseeded.
    ///
    /// Staleness: assigned to fewer than `min_share` of the points seen.
    pub fn reseed_stale(&mut self, batch: &Matrix, min_share: f64) -> usize {
        let total = self.total_count().max(1);
        let mut rng = rng::rng_for(self.seed, 0x5EED ^ self.updates);
        let mut reseeded = 0;
        for c in 0..self.k() {
            if (self.counts[c] as f64 / total as f64) < min_share {
                let pick = rng.gen_range(0..batch.rows());
                self.centroids.row_mut(c).copy_from_slice(batch.row(pick));
                self.counts[c] = 1;
                reseeded += 1;
            }
        }
        reseeded
    }

    /// Quantisation loss of the current centroids over a dataset.
    pub fn loss(&self, data: &Matrix) -> f64 {
        crate::quality::quantization_loss(data, &self.centroids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::{normal, rng_for};

    fn blob_batch(centers: &[[f64; 2]], per: usize, seed: u64) -> Matrix {
        let mut rng = rng_for(seed, 3);
        let mut rows = Vec::new();
        for c in centers {
            for _ in 0..per {
                rows.push(vec![
                    normal(&mut rng, c[0], 0.4),
                    normal(&mut rng, c[1], 0.4),
                ]);
            }
        }
        Matrix::from_rows(&rows)
    }

    const CENTERS: [[f64; 2]; 3] = [[0.0, 0.0], [10.0, 10.0], [-10.0, 8.0]];

    #[test]
    fn streaming_updates_track_the_distribution() {
        let init = blob_batch(&CENTERS, 20, 1);
        let mut mb = MiniBatchKMeans::new(&init, 3, 7);
        let initial_loss = mb.loss(&blob_batch(&CENTERS, 50, 99));
        for s in 0..20 {
            mb.update(&blob_batch(&CENTERS, 10, 100 + s));
        }
        let final_loss = mb.loss(&blob_batch(&CENTERS, 50, 99));
        assert!(
            final_loss <= initial_loss * 1.5,
            "loss exploded: {initial_loss} -> {final_loss}"
        );
        // Centroids sit near the true centres.
        for c in CENTERS {
            let nearest = (0..mb.k())
                .map(|i| ops::distance(mb.centroids().row(i), &c))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.0, "no centroid near {c:?} (distance {nearest})");
        }
    }

    #[test]
    fn update_counts_accumulate() {
        let init = blob_batch(&CENTERS, 10, 2);
        let mut mb = MiniBatchKMeans::new(&init, 3, 7);
        let before = mb.total_count();
        mb.update(&blob_batch(&CENTERS, 5, 3));
        assert_eq!(mb.total_count(), before + 15);
    }

    #[test]
    fn adapting_to_a_moved_distribution() {
        // Start on one blob, then stream a blob far away: at least one
        // centroid must migrate toward the new mass.
        let init = blob_batch(&[[0.0, 0.0]], 30, 4);
        let mut mb = MiniBatchKMeans::new(&init, 2, 5);
        let new_region = blob_batch(&[[50.0, 50.0]], 30, 6);
        for _ in 0..40 {
            mb.update(&new_region);
        }
        mb.reseed_stale(&new_region, 0.05);
        for _ in 0..10 {
            mb.update(&new_region);
        }
        let nearest = (0..mb.k())
            .map(|i| ops::distance(mb.centroids().row(i), &[50.0, 50.0]))
            .fold(f64::INFINITY, f64::min);
        assert!(
            nearest < 5.0,
            "no centroid migrated to the new region ({nearest})"
        );
    }

    #[test]
    fn reseed_stale_touches_only_underused_centroids() {
        let init = blob_batch(&CENTERS, 20, 8);
        let mut mb = MiniBatchKMeans::new(&init, 3, 9);
        // Every centroid has a healthy share: nothing reseeds.
        assert_eq!(mb.reseed_stale(&init, 0.01), 0);
        // An absurd share threshold reseeds everything.
        assert_eq!(mb.reseed_stale(&init, 1.1), 3);
    }

    #[test]
    #[should_panic(expected = "batch dimensionality mismatch")]
    fn wrong_width_batch_rejected() {
        let init = blob_batch(&CENTERS, 5, 1);
        let mut mb = MiniBatchKMeans::new(&init, 2, 0);
        mb.update(&Matrix::from_rows(&[vec![1.0]]));
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        let init = blob_batch(&CENTERS, 10, 3);
        let batch = blob_batch(&CENTERS, 10, 4);
        let run = || {
            let mut mb = MiniBatchKMeans::new(&init, 3, 11);
            mb.update(&batch);
            mb
        };
        assert_eq!(run(), run());
    }
}
