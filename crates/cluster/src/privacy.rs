//! Differentially-private cluster summaries.
//!
//! Privacy is the paper's motivation for never moving data — but even the
//! cluster *summaries* leak the exact extrema and counts of a node's
//! data. This module adds the standard remedy: Laplace noise on the
//! rectangle boundaries and member counts before they leave the node, at
//! a per-summary budget ε. The ablation bench measures what the noise
//! costs the selection mechanism.

use geom::{HyperRect, Interval};
use linalg::rng as lrng;
use linalg::rng::Rng;

use crate::summary::ClusterSummary;

/// Per-summary privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrivacyBudget {
    /// The Laplace ε: larger = less noise = less privacy.
    pub epsilon: f64,
    /// Fraction of each dimension's span treated as the boundary
    /// sensitivity (how much one sample can move a min/max). 0.05 is a
    /// reasonable default for bounded sensor data.
    pub boundary_sensitivity: f64,
}

impl PrivacyBudget {
    /// A budget with the default boundary sensitivity.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            epsilon,
            boundary_sensitivity: 0.05,
        }
    }
}

/// One Laplace(0, b) sample.
fn laplace(rng: &mut impl Rng, b: f64) -> f64 {
    let u: f64 = rng.gen::<f64>() - 0.5; // (-0.5, 0.5)
    -b * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-300).ln()
}

/// Releases a noised copy of one summary.
///
/// * Each boundary gets Laplace noise scaled by
///   `span · boundary_sensitivity / ε`; lo/hi are re-ordered if the noise
///   inverts them.
/// * The representative gets the same treatment (it is derived from the
///   same private data).
/// * The count gets integer Laplace noise at sensitivity 1 and is clamped
///   to at least 1.
pub fn noise_summary(
    summary: &ClusterSummary,
    budget: &PrivacyBudget,
    rng: &mut impl Rng,
) -> ClusterSummary {
    let b_count = 1.0 / budget.epsilon;
    let noisy_size = (summary.size as f64 + laplace(rng, b_count))
        .round()
        .max(1.0) as usize;

    let mut intervals = Vec::with_capacity(summary.rect.dim());
    let mut representative = Vec::with_capacity(summary.rect.dim());
    for (iv, &r) in summary.rect.intervals().iter().zip(&summary.representative) {
        // A degenerate dimension still gets a minimal noise scale so the
        // release does not reveal "this cluster is a single point".
        let span = iv.length().max(1e-9);
        let b = span * budget.boundary_sensitivity / budget.epsilon;
        let lo = iv.lo() + laplace(rng, b);
        let hi = iv.hi() + laplace(rng, b);
        intervals.push(Interval::new(lo.min(hi), lo.max(hi)));
        representative.push(r + laplace(rng, b));
    }

    ClusterSummary {
        cluster_id: summary.cluster_id,
        size: noisy_size,
        representative,
        rect: HyperRect::new(intervals),
    }
}

/// Releases noised copies of a node's whole summary set
/// (deterministic in `seed`).
pub fn noise_summaries(
    summaries: &[ClusterSummary],
    budget: &PrivacyBudget,
    seed: u64,
) -> Vec<ClusterSummary> {
    let mut rng = lrng::rng_for(seed, 0xD1FF);
    summaries
        .iter()
        .map(|s| noise_summary(s, budget, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{KMeans, KMeansConfig};
    use crate::summary::summarize;
    use linalg::Matrix;

    fn summaries() -> Vec<ClusterSummary> {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 40) as f64, (i / 2) as f64])
            .collect();
        let data = Matrix::from_rows(&rows);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(4, 1));
        summarize(&data, &model)
    }

    #[test]
    fn high_epsilon_barely_perturbs() {
        let sums = summaries();
        let noised = noise_summaries(&sums, &PrivacyBudget::new(1000.0), 7);
        for (a, b) in sums.iter().zip(&noised) {
            assert_eq!(a.cluster_id, b.cluster_id);
            let size_diff = (a.size as f64 - b.size as f64).abs();
            assert!(size_diff <= 1.0, "size moved by {size_diff} at eps=1000");
            for (ia, ib) in a.rect.intervals().iter().zip(b.rect.intervals()) {
                assert!((ia.lo() - ib.lo()).abs() < 0.05 * ia.length().max(1.0));
            }
        }
    }

    #[test]
    fn low_epsilon_perturbs_substantially() {
        let sums = summaries();
        let noised = noise_summaries(&sums, &PrivacyBudget::new(0.05), 7);
        let moved = sums
            .iter()
            .zip(&noised)
            .any(|(a, b)| (a.rect.interval(0).lo() - b.rect.interval(0).lo()).abs() > 1.0);
        assert!(moved, "eps=0.05 should visibly move boundaries");
    }

    #[test]
    fn noised_summaries_remain_structurally_valid() {
        let sums = summaries();
        for eps in [0.01, 0.1, 1.0, 10.0] {
            let noised = noise_summaries(&sums, &PrivacyBudget::new(eps), 3);
            for s in &noised {
                assert!(s.size >= 1);
                assert_eq!(s.rect.dim(), 2);
                for iv in s.rect.intervals() {
                    assert!(iv.lo() <= iv.hi());
                    assert!(iv.lo().is_finite() && iv.hi().is_finite());
                }
            }
        }
    }

    #[test]
    fn noising_is_deterministic_per_seed() {
        let sums = summaries();
        let budget = PrivacyBudget::new(0.5);
        assert_eq!(
            noise_summaries(&sums, &budget, 9),
            noise_summaries(&sums, &budget, 9)
        );
        assert_ne!(
            noise_summaries(&sums, &budget, 9),
            noise_summaries(&sums, &budget, 10)
        );
    }

    #[test]
    fn laplace_sample_moments() {
        let mut rng = lrng::rng_for(1, 1);
        let b = 2.0;
        let xs: Vec<f64> = (0..40_000).map(|_| laplace(&mut rng, b)).collect();
        let mean = linalg::stats::mean(&xs);
        let var = linalg::stats::variance(&xs);
        assert!(mean.abs() < 0.06, "laplace mean {mean}");
        // Var of Laplace(b) is 2b² = 8.
        assert!((var - 8.0).abs() < 0.6, "laplace variance {var}");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        PrivacyBudget::new(0.0);
    }
}
