//! Clustering quality measures: quantisation loss, silhouette, elbow.

use linalg::{ops, Matrix};

use crate::kmeans::{KMeans, KMeansConfig};

/// Quantisation loss (the paper's Eq. 1) of arbitrary centroids against a
/// dataset: `Σ_k Σ_j ||ξ_j − u_k||²` with each sample charged to its
/// nearest representative.
pub fn quantization_loss(data: &Matrix, centroids: &Matrix) -> f64 {
    data.row_iter()
        .map(|row| {
            centroids
                .row_iter()
                .map(|c| ops::squared_distance(row, c))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// Mean silhouette coefficient of a fitted model, in `[-1, 1]`.
///
/// Samples in singleton clusters contribute 0 (the standard convention).
/// Returns 0 when the model has a single cluster (silhouette undefined).
pub fn silhouette(data: &Matrix, model: &KMeans) -> f64 {
    let k = model.k();
    if k < 2 || data.rows() < 2 {
        return 0.0;
    }
    let assignments = model.assignments();
    let sizes = model.sizes();
    let n = data.rows();
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if sizes[own] <= 1 {
            continue; // contributes 0
        }
        // Mean distance to every cluster.
        let mut dist_sum = vec![0.0_f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sum[assignments[j]] += ops::distance(data.row(i), data.row(j));
        }
        let a = dist_sum[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| dist_sum[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Elbow heuristic: fits k-means for each candidate `k` and returns
/// `(k, inertia)` pairs plus the chosen elbow — the `k` after which the
/// relative inertia improvement first drops below `min_gain`.
pub fn elbow(
    data: &Matrix,
    candidates: &[usize],
    seed: u64,
    min_gain: f64,
) -> (Vec<(usize, f64)>, usize) {
    assert!(
        !candidates.is_empty(),
        "elbow needs at least one candidate k"
    );
    let curve: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&k| {
            (
                k,
                KMeans::fit(data, &KMeansConfig::with_k(k, seed)).inertia(),
            )
        })
        .collect();
    let mut chosen = curve[0].0;
    for w in curve.windows(2) {
        let (_, prev) = w[0];
        let (k_next, next) = w[1];
        let gain = if prev > 0.0 {
            (prev - next) / prev
        } else {
            0.0
        };
        if gain >= min_gain {
            chosen = k_next;
        } else {
            break;
        }
    }
    (curve, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::{normal, rng_for};

    fn blobs(k: usize, per: usize, sep: f64, seed: u64) -> Matrix {
        let mut rng = rng_for(seed, 2);
        let mut rows = Vec::new();
        for c in 0..k {
            let cx = c as f64 * sep;
            for _ in 0..per {
                rows.push(vec![normal(&mut rng, cx, 0.3), normal(&mut rng, 0.0, 0.3)]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn quantization_loss_matches_model_inertia() {
        let data = blobs(3, 30, 8.0, 4);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(3, 9));
        let loss = quantization_loss(&data, model.centroids());
        assert!((loss - model.inertia()).abs() < 1e-9 * model.inertia().max(1.0));
    }

    #[test]
    fn quantization_loss_zero_when_centroids_cover_points() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(quantization_loss(&data, &data), 0.0);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let data = blobs(3, 25, 10.0, 6);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(3, 5));
        let s = silhouette(&data, &model);
        assert!(s > 0.8, "silhouette {s} too low for well-separated blobs");
    }

    #[test]
    fn silhouette_low_when_overclustered() {
        let data = blobs(1, 60, 0.0, 7);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(4, 5));
        let s = silhouette(&data, &model);
        assert!(
            s < 0.6,
            "splitting one blob into 4 should score poorly, got {s}"
        );
    }

    #[test]
    fn silhouette_degenerate_cases_are_zero() {
        let data = blobs(1, 10, 0.0, 8);
        let one = KMeans::fit(&data, &KMeansConfig::with_k(1, 0));
        assert_eq!(silhouette(&data, &one), 0.0);
        let tiny = Matrix::from_rows(&[vec![1.0]]);
        let m = KMeans::fit(&tiny, &KMeansConfig::with_k(1, 0));
        assert_eq!(silhouette(&tiny, &m), 0.0);
    }

    #[test]
    fn elbow_finds_true_blob_count() {
        let data = blobs(3, 40, 12.0, 10);
        let (curve, chosen) = elbow(&data, &[1, 2, 3, 4, 5, 6], 3, 0.25);
        assert_eq!(chosen, 3, "curve: {curve:?}");
        // Inertia must be non-increasing along the curve.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }
}
