//! k-means data quantisation and cluster summaries.
//!
//! Each edge node in the paper quantises its local data space with k-means
//! (Eq. 1, K = 5 in the evaluation) and shares only per-cluster summaries
//! (the cluster's per-dimension min/max rectangle plus its representative)
//! with the leader - O(1) communication per node.
//!
//! * [`kmeans`] - k-means++ initialisation, Lloyd iterations, empty-cluster
//!   repair, convergence tracking.
//! * [`summary`] - [`summary::ClusterSummary`]: the boundary rectangle,
//!   representative and size that nodes ship to the leader.
//! * [`quality`] - quantisation loss (Eq. 1), silhouette coefficient and an
//!   elbow heuristic for choosing K.
//! * [`minibatch`] - mini-batch k-means for nodes whose data streams in.
//! * [`estimate`] - summary-based cardinality estimation: how many samples
//!   a query would touch, computed by the leader with zero communication.
//! * [`privacy`] - differentially-private summary release (Laplace noise
//!   on boundaries and counts before anything leaves the node).

pub mod estimate;
pub mod kmeans;
pub mod minibatch;
pub mod privacy;
pub mod quality;
pub mod summary;

pub use kmeans::{InitMethod, KMeans, KMeansConfig};
pub use minibatch::MiniBatchKMeans;
pub use summary::ClusterSummary;
