//! Cardinality estimation from cluster summaries.
//!
//! The leader never sees raw data, only each cluster's bounding rectangle
//! and member count. Assuming members are roughly uniform inside their
//! rectangle — the standard synopsis assumption of the aggregate-query
//! estimation line the paper builds on (Savva et al.) — the leader can
//! *estimate* how many samples a query would touch on each node before
//! committing to a selection, again with zero communication.

use geom::{HyperRect, Query};

use crate::summary::ClusterSummary;

/// Estimated number of a cluster's members falling inside `query`,
/// under the uniform-within-rectangle assumption: the member count
/// scaled by the per-dimension fractional overlap of the intersection.
///
/// Degenerate (zero-length) cluster dimensions count as fully covered
/// when the query spans them and as empty otherwise.
pub fn cluster_cardinality(summary: &ClusterSummary, query: &Query) -> f64 {
    intersection_fraction(&summary.rect, query) * summary.size as f64
}

/// The fraction of `rect`'s volume that intersects the query, treating
/// each dimension independently (product of per-dimension coverage).
fn intersection_fraction(rect: &HyperRect, query: &Query) -> f64 {
    assert_eq!(
        rect.dim(),
        query.dim(),
        "rect/query dimensionality mismatch"
    );
    let mut frac = 1.0;
    for (k_iv, q_iv) in rect.intervals().iter().zip(query.region().intervals()) {
        match k_iv.intersection(q_iv) {
            None => return 0.0,
            Some(inter) => {
                let len = k_iv.length();
                if len > 0.0 {
                    frac *= inter.length() / len;
                }
                // Zero-length cluster dimension inside the query: the
                // whole (degenerate) extent is covered; factor 1.
            }
        }
    }
    frac
}

/// Estimated samples a query touches on a node, from its summaries.
pub fn node_cardinality(summaries: &[ClusterSummary], query: &Query) -> f64 {
    summaries
        .iter()
        .map(|s| cluster_cardinality(s, query))
        .sum()
}

/// Aggregate estimates over a query region computed from summaries only
/// — the leader-side answer to "what would this query's data look like"
/// before any node is contacted (the aggregate-query-estimation line the
/// paper builds on).
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateEstimate {
    /// Estimated number of samples in the region.
    pub count: f64,
    /// Estimated per-dimension mean of those samples.
    pub mean: Vec<f64>,
    /// Estimated per-dimension sum.
    pub sum: Vec<f64>,
    /// Per-dimension lower bound of the covered region (min estimate).
    pub min: Vec<f64>,
    /// Per-dimension upper bound of the covered region (max estimate).
    pub max: Vec<f64>,
}

/// Estimates COUNT/SUM/AVG/MIN/MAX of the samples a query touches,
/// from summaries alone.
///
/// Per contributing cluster, members are modelled uniform within the
/// cluster rectangle: the expected position of a member that falls in
/// the intersection is the intersection's centre, and the extremes are
/// the intersection bounds. Returns `None` when no cluster intersects
/// the query (estimated count 0).
pub fn aggregate_estimate(
    summaries: &[ClusterSummary],
    query: &Query,
) -> Option<AggregateEstimate> {
    let d = query.dim();
    let mut count = 0.0;
    let mut sum = vec![0.0; d];
    let mut min = vec![f64::INFINITY; d];
    let mut max = vec![f64::NEG_INFINITY; d];
    for s in summaries {
        let c = cluster_cardinality(s, query);
        if c <= 0.0 {
            continue;
        }
        count += c;
        let inter = s
            .rect
            .intersection(query.region())
            .expect("positive cardinality implies intersection");
        for (dim, iv) in inter.intervals().iter().enumerate() {
            sum[dim] += c * iv.center();
            min[dim] = min[dim].min(iv.lo());
            max[dim] = max[dim].max(iv.hi());
        }
    }
    if count <= 0.0 {
        return None;
    }
    let mean = sum.iter().map(|s| s / count).collect();
    Some(AggregateEstimate {
        count,
        mean,
        sum,
        min,
        max,
    })
}

/// Relative error of an estimate against the true count (0 when both
/// are zero).
pub fn relative_error(estimate: f64, truth: usize) -> f64 {
    if truth == 0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth as f64).abs() / truth as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{KMeans, KMeansConfig};
    use crate::summary::summarize;
    use linalg::rng::Rng;
    use linalg::rng::{rng_for, standard_normal};
    use linalg::Matrix;

    fn uniform_square(n: usize, seed: u64) -> Matrix {
        let mut rng = rng_for(seed, 1);
        Matrix::from_rows(
            &(0..n)
                .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn full_cover_query_estimates_everything() {
        let data = uniform_square(200, 1);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(4, 2));
        let sums = summarize(&data, &model);
        let q = Query::from_boundary_vec(0, &[-1.0, 11.0, -1.0, 11.0]);
        let est = node_cardinality(&sums, &q);
        assert!((est - 200.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn disjoint_query_estimates_zero() {
        let data = uniform_square(100, 2);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(3, 3));
        let sums = summarize(&data, &model);
        let q = Query::from_boundary_vec(0, &[100.0, 110.0, 100.0, 110.0]);
        assert_eq!(node_cardinality(&sums, &q), 0.0);
    }

    #[test]
    fn uniform_data_estimates_are_accurate() {
        let data = uniform_square(2000, 3);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(5, 4));
        let sums = summarize(&data, &model);
        let q = Query::from_boundary_vec(0, &[2.0, 7.0, 3.0, 9.0]);
        let est = node_cardinality(&sums, &q);
        let truth = q.filter_indices(data.row_iter()).len();
        let err = relative_error(est, truth);
        assert!(err < 0.2, "estimate {est} vs truth {truth} (err {err})");
    }

    #[test]
    fn clustered_gaussian_estimate_is_at_least_order_correct() {
        let mut rng = rng_for(5, 2);
        let rows: Vec<Vec<f64>> = (0..1500)
            .map(|_| {
                vec![
                    3.0 * standard_normal(&mut rng),
                    3.0 * standard_normal(&mut rng),
                ]
            })
            .collect();
        let data = Matrix::from_rows(&rows);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(8, 6));
        let sums = summarize(&data, &model);
        let q = Query::from_boundary_vec(0, &[-2.0, 2.0, -2.0, 2.0]);
        let est = node_cardinality(&sums, &q);
        let truth = q.filter_indices(data.row_iter()).len();
        assert!(
            est > truth as f64 * 0.3 && est < truth as f64 * 3.0,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn degenerate_cluster_dimension_counts_fully_when_covered() {
        // A cluster whose second dimension is a single point.
        let data = Matrix::from_rows(&[vec![0.0, 5.0], vec![1.0, 5.0], vec![2.0, 5.0]]);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(1, 0));
        let sums = summarize(&data, &model);
        let covering = Query::from_boundary_vec(0, &[0.0, 2.0, 0.0, 10.0]);
        assert!((node_cardinality(&sums, &covering) - 3.0).abs() < 1e-9);
        let missing = Query::from_boundary_vec(0, &[0.0, 2.0, 6.0, 10.0]);
        assert_eq!(node_cardinality(&sums, &missing), 0.0);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0), 0.0);
        assert_eq!(relative_error(5.0, 0), f64::INFINITY);
        assert_eq!(relative_error(8.0, 10), 0.2);
    }

    #[test]
    fn aggregate_estimate_on_uniform_data_is_accurate() {
        let data = uniform_square(3000, 9);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(6, 2));
        let sums = summarize(&data, &model);
        let q = Query::from_boundary_vec(0, &[2.0, 8.0, 1.0, 6.0]);
        let est = aggregate_estimate(&sums, &q).expect("query overlaps data");

        // Ground truth.
        let idx = q.filter_indices(data.row_iter());
        let truth_count = idx.len() as f64;
        let truth_mean_x = idx.iter().map(|&i| data.row(i)[0]).sum::<f64>() / truth_count;
        let truth_mean_y = idx.iter().map(|&i| data.row(i)[1]).sum::<f64>() / truth_count;

        assert!(
            (est.count - truth_count).abs() < 0.2 * truth_count,
            "count {} vs {}",
            est.count,
            truth_count
        );
        assert!(
            (est.mean[0] - truth_mean_x).abs() < 0.5,
            "mean x {} vs {}",
            est.mean[0],
            truth_mean_x
        );
        assert!(
            (est.mean[1] - truth_mean_y).abs() < 0.5,
            "mean y {} vs {}",
            est.mean[1],
            truth_mean_y
        );
        // Min/max bounds bracket the true extremes of the region.
        assert!(
            est.min[0] <= 2.5 && est.max[0] >= 7.5,
            "x bounds {:?}..{:?}",
            est.min[0],
            est.max[0]
        );
        // SUM is consistent with COUNT * MEAN.
        assert!((est.sum[0] - est.count * est.mean[0]).abs() < 1e-9);
    }

    #[test]
    fn aggregate_estimate_none_when_disjoint() {
        let data = uniform_square(100, 4);
        let model = KMeans::fit(&data, &KMeansConfig::with_k(3, 1));
        let sums = summarize(&data, &model);
        let q = Query::from_boundary_vec(0, &[50.0, 60.0, 50.0, 60.0]);
        assert_eq!(aggregate_estimate(&sums, &q), None);
    }
}
