//! Property-style tests for the k-means substrate (deterministic sweeps
//! over the in-tree RNG; no proptest needed offline).

use cluster::privacy::{noise_summaries, PrivacyBudget};
use cluster::{estimate, kmeans::KMeansConfig, quality, summary, KMeans, MiniBatchKMeans};
use geom::Query;
use linalg::rng::{rng_for, Rng};
use linalg::Matrix;

const CASES: usize = 64;

fn random_dataset(rng: &mut impl Rng, max_rows: usize, dim: usize) -> Matrix {
    let n = rng.gen_range(2..=max_rows);
    Matrix::from_vec(
        n,
        dim,
        (0..n * dim).map(|_| rng.gen_range(-100.0..100.0)).collect(),
    )
}

/// Lloyd's algorithm never assigns a sample to a non-nearest centroid
/// after the final iteration.
#[test]
fn final_assignments_are_nearest() {
    let mut rng = rng_for(0xC1, 1);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 40, 3);
        let k = rng.gen_range(1..6usize);
        let seed = rng.gen_range(0..1000u64);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(k, seed));
        for (i, row) in data.row_iter().enumerate() {
            assert_eq!(m.predict(row), m.assignments()[i]);
        }
    }
}

/// Inertia equals the independent quantisation-loss computation.
#[test]
fn inertia_consistent_with_eq1() {
    let mut rng = rng_for(0xC1, 2);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 30, 2);
        let seed = rng.gen_range(0..100u64);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(3, seed));
        let q = quality::quantization_loss(&data, m.centroids());
        assert!((q - m.inertia()).abs() <= 1e-6 * m.inertia().max(1.0));
    }
}

/// Summaries partition the dataset and their rects cover all members.
#[test]
fn summaries_partition_and_cover() {
    let mut rng = rng_for(0xC1, 3);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 40, 3);
        let k = rng.gen_range(1..7usize);
        let seed = rng.gen_range(0..100u64);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(k, seed));
        let sums = summary::summarize(&data, &m);
        assert_eq!(sums.iter().map(|s| s.size).sum::<usize>(), data.rows());
        for s in &sums {
            assert!(s.size > 0);
            for i in m.members(s.cluster_id) {
                assert!(s.rect.contains_point(data.row(i)));
            }
        }
    }
}

/// Fitting is deterministic in (data, config).
#[test]
fn fit_is_deterministic() {
    let mut rng = rng_for(0xC1, 4);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 25, 2);
        let seed = rng.gen_range(0..50u64);
        let cfg = KMeansConfig::with_k(4, seed);
        let a = KMeans::fit(&data, &cfg);
        let b = KMeans::fit(&data, &cfg);
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.assignments(), b.assignments());
    }
}

/// Silhouette stays within its defined range.
#[test]
fn silhouette_bounded() {
    let mut rng = rng_for(0xC1, 5);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 25, 2);
        let k = rng.gen_range(2..5usize);
        let seed = rng.gen_range(0..50u64);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(k, seed));
        let s = quality::silhouette(&data, &m);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "silhouette {s}");
    }
}

/// Cardinality estimates are bounded by the node's total samples and
/// agree exactly on the all-covering query.
#[test]
fn cardinality_estimate_bounds() {
    let mut rng = rng_for(0xC1, 6);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 40, 2);
        let seed = rng.gen_range(0..50u64);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(4, seed));
        let sums = summary::summarize(&data, &m);
        let bounds = geom::HyperRect::bounding_points(data.row_iter()).unwrap();
        let all = Query::new(0, bounds.expanded(1.0));
        let est = estimate::node_cardinality(&sums, &all);
        assert!(
            (est - data.rows() as f64).abs() < 1e-6,
            "all-cover estimate {est}"
        );
        // Any sub-query estimates within [0, total].
        let sub = Query::new(1, bounds);
        let e = estimate::node_cardinality(&sums, &sub);
        assert!((0.0..=data.rows() as f64 + 1e-9).contains(&e));
    }
}

/// Noised summaries keep the invariants the leader relies on.
#[test]
fn private_summaries_stay_valid() {
    let mut rng = rng_for(0xC1, 7);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng, 40, 2);
        let eps = rng.gen_range(0.01..10.0);
        let seed = rng.gen_range(0..50u64);
        let m = KMeans::fit(&data, &KMeansConfig::with_k(4, seed));
        let sums = summary::summarize(&data, &m);
        let noised = noise_summaries(&sums, &PrivacyBudget::new(eps), seed);
        assert_eq!(noised.len(), sums.len());
        for s in &noised {
            assert!(s.size >= 1);
            for iv in s.rect.intervals() {
                assert!(iv.lo() <= iv.hi());
                assert!(iv.lo().is_finite() && iv.hi().is_finite());
            }
        }
    }
}

/// Mini-batch updates never lose or invent mass and keep centroids
/// inside the hull of everything seen.
#[test]
fn minibatch_centroids_stay_in_hull() {
    let mut rng = rng_for(0xC1, 8);
    for _ in 0..CASES {
        let init = random_dataset(&mut rng, 30, 2);
        let batch = random_dataset(&mut rng, 30, 2);
        let seed = rng.gen_range(0..50u64);
        let mut mb = MiniBatchKMeans::new(&init, 3, seed);
        let before = mb.total_count();
        mb.update(&batch);
        assert_eq!(mb.total_count(), before + batch.rows() as u64);
        let hull =
            geom::HyperRect::bounding_points(init.row_iter().chain(batch.row_iter())).unwrap();
        for c in mb.centroids().row_iter() {
            assert!(
                hull.contains_point(c),
                "centroid {c:?} escaped the data hull"
            );
        }
    }
}
