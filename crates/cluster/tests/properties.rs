//! Property-based tests for the k-means substrate.

use cluster::privacy::{noise_summaries, PrivacyBudget};
use cluster::{estimate, kmeans::KMeansConfig, quality, summary, KMeans, MiniBatchKMeans};
use geom::Query;
use linalg::Matrix;
use proptest::prelude::*;

fn dataset(max_rows: usize, dim: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_rows).prop_flat_map(move |n| {
        prop::collection::vec(-100.0_f64..100.0, n * dim)
            .prop_map(move |data| Matrix::from_vec(n, dim, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lloyd's algorithm never assigns a sample to a non-nearest centroid
    /// after the final iteration.
    #[test]
    fn final_assignments_are_nearest(data in dataset(40, 3), k in 1_usize..6, seed in 0_u64..1000) {
        let m = KMeans::fit(&data, &KMeansConfig::with_k(k, seed));
        for (i, row) in data.row_iter().enumerate() {
            prop_assert_eq!(m.predict(row), m.assignments()[i]);
        }
    }

    /// Inertia equals the independent quantisation-loss computation.
    #[test]
    fn inertia_consistent_with_eq1(data in dataset(30, 2), seed in 0_u64..100) {
        let m = KMeans::fit(&data, &KMeansConfig::with_k(3, seed));
        let q = quality::quantization_loss(&data, m.centroids());
        prop_assert!((q - m.inertia()).abs() <= 1e-6 * m.inertia().max(1.0));
    }

    /// Summaries partition the dataset and their rects cover all members.
    #[test]
    fn summaries_partition_and_cover(data in dataset(40, 3), k in 1_usize..7, seed in 0_u64..100) {
        let m = KMeans::fit(&data, &KMeansConfig::with_k(k, seed));
        let sums = summary::summarize(&data, &m);
        prop_assert_eq!(sums.iter().map(|s| s.size).sum::<usize>(), data.rows());
        for s in &sums {
            prop_assert!(s.size > 0);
            for i in m.members(s.cluster_id) {
                prop_assert!(s.rect.contains_point(data.row(i)));
            }
        }
    }

    /// Fitting is deterministic in (data, config).
    #[test]
    fn fit_is_deterministic(data in dataset(25, 2), seed in 0_u64..50) {
        let cfg = KMeansConfig::with_k(4, seed);
        let a = KMeans::fit(&data, &cfg);
        let b = KMeans::fit(&data, &cfg);
        prop_assert_eq!(a.centroids(), b.centroids());
        prop_assert_eq!(a.assignments(), b.assignments());
    }

    /// Silhouette stays within its defined range.
    #[test]
    fn silhouette_bounded(data in dataset(25, 2), k in 2_usize..5, seed in 0_u64..50) {
        let m = KMeans::fit(&data, &KMeansConfig::with_k(k, seed));
        let s = quality::silhouette(&data, &m);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "silhouette {s}");
    }

    /// Cardinality estimates are bounded by the node's total samples and
    /// agree exactly on the all-covering query.
    #[test]
    fn cardinality_estimate_bounds(data in dataset(40, 2), seed in 0_u64..50) {
        let m = KMeans::fit(&data, &KMeansConfig::with_k(4, seed));
        let sums = summary::summarize(&data, &m);
        let bounds = geom::HyperRect::bounding_points(data.row_iter()).unwrap();
        let all = Query::new(0, bounds.expanded(1.0));
        let est = estimate::node_cardinality(&sums, &all);
        prop_assert!((est - data.rows() as f64).abs() < 1e-6, "all-cover estimate {est}");
        // Any sub-query estimates within [0, total].
        let sub = Query::new(1, bounds);
        let e = estimate::node_cardinality(&sums, &sub);
        prop_assert!((0.0..=data.rows() as f64 + 1e-9).contains(&e));
    }

    /// Noised summaries keep the invariants the leader relies on.
    #[test]
    fn private_summaries_stay_valid(data in dataset(40, 2), eps in 0.01_f64..10.0, seed in 0_u64..50) {
        let m = KMeans::fit(&data, &KMeansConfig::with_k(4, seed));
        let sums = summary::summarize(&data, &m);
        let noised = noise_summaries(&sums, &PrivacyBudget::new(eps), seed);
        prop_assert_eq!(noised.len(), sums.len());
        for s in &noised {
            prop_assert!(s.size >= 1);
            for iv in s.rect.intervals() {
                prop_assert!(iv.lo() <= iv.hi());
                prop_assert!(iv.lo().is_finite() && iv.hi().is_finite());
            }
        }
    }

    /// Mini-batch updates never lose or invent mass and keep centroids
    /// inside the hull of everything seen.
    #[test]
    fn minibatch_centroids_stay_in_hull(init in dataset(30, 2), batch in dataset(30, 2), seed in 0_u64..50) {
        let mut mb = MiniBatchKMeans::new(&init, 3, seed);
        let before = mb.total_count();
        mb.update(&batch);
        prop_assert_eq!(mb.total_count(), before + batch.rows() as u64);
        let hull = geom::HyperRect::bounding_points(init.row_iter().chain(batch.row_iter())).unwrap();
        for c in mb.centroids().row_iter() {
            prop_assert!(hull.contains_point(c), "centroid {c:?} escaped the data hull");
        }
    }
}
