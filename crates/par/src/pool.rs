//! The bounded worker pool and its scope-style deterministic APIs.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased, lifetime-erased job on the shared injector queue.
///
/// Jobs are only ever enqueued by [`ThreadPool::run_scoped`], which
/// blocks until every job it enqueued has finished — that blocking is
/// what makes the lifetime erasure sound (see the safety comment there).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state guarded by one mutex (shutdown lives inside so workers
/// cannot miss the signal between a pop attempt and a wait).
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Jobs never unwind while holding pool locks (panics are caught at
    // the task boundary), but be robust anyway.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-scope completion latch plus the first captured panic.
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new(tasks: usize) -> Self {
        Self {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn finish_task(&self) {
        let mut rem = lock(&self.remaining);
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A bounded pool of long-lived workers with deterministic chunked
/// parallel APIs. See the crate docs for the determinism contract.
///
/// A pool of `threads <= 1` spawns **no** OS threads: every API runs
/// inline on the caller, which doubles as the bit-identical serial
/// reference path.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (0 is treated as 1; a pool
    /// of 1 runs everything inline and spawns nothing).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = if threads > 1 {
            (0..threads)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("qens-par-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawning a pool worker thread")
                })
                .collect()
        } else {
            Vec::new()
        };
        telemetry::gauge!("qens_par_workers").set(threads as f64);
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// The configured worker count (1 means "inline serial").
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion before returning (scope semantics).
    ///
    /// Tasks may borrow from the caller's stack (`'env`). With more than
    /// one worker the tasks run on the pool while the caller helps drain
    /// the queue; with one worker (or one task) they run inline in order.
    /// Task *completion order* is scheduling-dependent — determinism is
    /// the responsibility of the chunked wrappers, which assign each
    /// task a fixed output slot.
    ///
    /// # Panics
    /// If a task panics, the panic is re-raised on the caller after all
    /// tasks of the scope have finished (first payload wins).
    pub fn run_scoped<'env, I>(&self, tasks: I)
    where
        I: IntoIterator<Item = Box<dyn FnOnce() + Send + 'env>>,
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + 'env>> = tasks.into_iter().collect();
        if tasks.is_empty() {
            return;
        }
        telemetry::counter!("qens_par_scopes_total").incr();
        if self.threads <= 1 || tasks.len() == 1 {
            telemetry::counter!("qens_par_inline_tasks_total").add(tasks.len() as u64);
            for task in tasks {
                task();
            }
            return;
        }
        telemetry::counter!("qens_par_tasks_total").add(tasks.len() as u64);
        // Dispatch-window span (enqueue → every task done). Wall-only:
        // a single-thread pool never reaches this point (it trains
        // inline above), so a logical-clock event here would break the
        // QENS_THREADS byte-identity contract.
        let _scope_span =
            telemetry::trace::wall_span_args("par.scope", &[("tasks", tasks.len() as u64)]);

        // Dispatch tracing (queue wait vs execute) is wall-mode only:
        // completion order is scheduling-dependent by design, so the
        // logical clock must never see it. The flag is one relaxed load;
        // while tracing is off no clock is read and nothing is recorded.
        let trace_dispatch = telemetry::trace::mode() == Some(telemetry::trace::Clock::Wall);
        let scope = Arc::new(ScopeState::new(tasks.len()));
        {
            let mut state = lock(&self.shared.state);
            for task in tasks {
                let scope = Arc::clone(&scope);
                let enqueued_at = trace_dispatch.then(std::time::Instant::now);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    {
                        // Queue wait = enqueue → first instruction of the
                        // job on whichever thread picked it up; the span
                        // then times the task body. The scope block ends
                        // the span *before* `finish_task` can unblock the
                        // caller (which may immediately export the trace).
                        let _task_span = enqueued_at.map(|t| {
                            let wait = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            telemetry::histogram!("qens_par_queue_wait_nanos").record(wait);
                            telemetry::trace::wall_span_args("par.task", &[("queue_nanos", wait)])
                        });
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                            scope.record_panic(payload);
                        }
                    }
                    scope.finish_task();
                });
                // SAFETY: the job may borrow data that only lives for
                // `'env`. `run_scoped` does not return until
                // `scope.remaining` hits zero, i.e. until this closure
                // (and every sibling) has fully executed, so the borrows
                // never outlive the frame that owns them. Panics inside
                // the user task are caught above, so the job itself
                // cannot unwind out of a worker and leave the latch
                // hanging. This is the same argument `std::thread::scope`
                // makes, minus the per-call thread spawn.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
                state.jobs.push_back(job);
            }
            telemetry::histogram!("qens_par_queue_depth").record(state.jobs.len() as u64);
            self.shared.work_ready.notify_all();
        }

        // Work-stealing-lite: the caller drains the shared queue (its
        // own tasks or a sibling scope's — both are sound, both callers
        // are blocked here) instead of idling. This is also what makes
        // nested `run_scoped` calls from inside a worker deadlock-free.
        loop {
            while let Some(job) = self.try_pop() {
                job();
            }
            let rem = lock(&scope.remaining);
            if *rem == 0 {
                break;
            }
            // Short-timeout wait: re-check the queue for help-work while
            // still being woken promptly by the final `finish_task`.
            let (rem, _timeout) = scope
                .done
                .wait_timeout(rem, Duration::from_micros(200))
                .unwrap_or_else(|p| p.into_inner());
            if *rem == 0 {
                break;
            }
        }
        let panic_payload = lock(&scope.panic).take();
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
    }

    fn try_pop(&self) -> Option<Job> {
        lock(&self.shared.state).jobs.pop_front()
    }

    /// Applies `f` to every fixed-size chunk `[lo, hi)` of `0..len` and
    /// returns the per-chunk partials **in chunk order**, ready for an
    /// ordered (bit-deterministic) reduction by the caller.
    ///
    /// Chunk boundaries depend only on `len` and `chunk`, never on the
    /// worker count, so the returned vector is identical for any pool.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn map_chunks<U, F>(&self, len: usize, chunk: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = len.div_ceil(chunk);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n_chunks);
        out.resize_with(n_chunks, || None);
        let bounds = |ci: usize| {
            let lo = ci * chunk;
            lo..(lo + chunk).min(len)
        };
        if self.threads <= 1 || n_chunks <= 1 {
            telemetry::counter!("qens_par_inline_tasks_total").add(n_chunks as u64);
            for (ci, slot) in out.iter_mut().enumerate() {
                *slot = Some(f(bounds(ci)));
            }
        } else {
            let slots = SharedSlots::new(&mut out);
            let f = &f;
            let slots_ref = &slots;
            self.run_scoped((0..n_chunks).map(|ci| {
                Box::new(move || {
                    // SAFETY: chunk index `ci` is unique to this task, so
                    // no two tasks touch the same slot.
                    unsafe { slots_ref.set(ci, f(bounds(ci))) };
                }) as Box<dyn FnOnce() + Send + '_>
            }));
        }
        out.into_iter()
            .map(|slot| slot.expect("every chunk ran to completion"))
            .collect()
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Items are grouped into fixed chunks of `chunk` per task; each
    /// result is written to its input index, so the output is identical
    /// for any worker count.
    pub fn map_indexed<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let partials = self.map_chunks(items.len(), chunk, |range| {
            range.map(|i| f(i, &items[i])).collect::<Vec<U>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for part in partials {
            out.extend(part);
        }
        out
    }

    /// Runs `f(offset, chunk_slice)` over disjoint fixed-size chunks of
    /// `data`. `offset` is the chunk's starting index in `data`.
    ///
    /// Chunks are disjoint `&mut` sub-slices, so tasks may write their
    /// region freely; chunk boundaries are worker-count independent.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = data.len().div_ceil(chunk);
        if self.threads <= 1 || n_chunks <= 1 {
            telemetry::counter!("qens_par_inline_tasks_total").add(n_chunks as u64);
            for (ci, part) in data.chunks_mut(chunk).enumerate() {
                f(ci * chunk, part);
            }
            return;
        }
        let f = &f;
        self.run_scoped(data.chunks_mut(chunk).enumerate().map(|(ci, part)| {
            Box::new(move || f(ci * chunk, part)) as Box<dyn FnOnce() + Send + '_>
        }));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Raw shared access to a `Vec<Option<U>>` where every task writes a
/// distinct index (enforced by construction in [`ThreadPool::map_chunks`]).
struct SharedSlots<'a, U> {
    ptr: *mut Option<U>,
    len: usize,
    _marker: PhantomData<&'a mut [Option<U>]>,
}

// SAFETY: the slots are only written through `set`, each index by exactly
// one task, and the owning Vec outlives the scope (the caller of
// `map_chunks` holds it across `run_scoped`, which blocks).
unsafe impl<U: Send> Sync for SharedSlots<'_, U> {}
unsafe impl<U: Send> Send for SharedSlots<'_, U> {}

impl<'a, U> SharedSlots<'a, U> {
    fn new(slots: &'a mut Vec<Option<U>>) -> Self {
        Self {
            ptr: slots.as_mut_ptr(),
            len: slots.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// Each index must be written by at most one task, and `i < len`.
    unsafe fn set(&self, i: usize, value: U) {
        assert!(i < self.len, "slot index out of bounds");
        // SAFETY: disjoint indices per the caller contract; the pointee
        // is alive for 'a which spans the whole scope.
        unsafe { *self.ptr.add(i) = Some(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(2), ThreadPool::new(4)]
    }

    #[test]
    fn single_thread_pool_spawns_no_workers() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let zero = ThreadPool::new(0);
        assert_eq!(zero.threads(), 1);
    }

    #[test]
    fn map_indexed_preserves_input_order_for_every_pool_size() {
        let items: Vec<u64> = (0..1000).collect();
        for pool in pools() {
            let out = pool.map_indexed(&items, 7, |i, &x| (i as u64) * 2 + x);
            assert_eq!(out.len(), items.len());
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 3);
            }
        }
    }

    #[test]
    fn chunked_float_reduction_is_bit_identical_across_pool_sizes() {
        // A sum that is sensitive to association order if chunking were
        // scheduling-dependent.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * 0.7309).sin() * 1e6 + 1e-6 * i as f64)
            .collect();
        let reduce = |pool: &ThreadPool| -> f64 {
            pool.map_chunks(xs.len(), 256, |r| r.map(|i| xs[i]).sum::<f64>())
                .iter()
                .sum()
        };
        let reference = reduce(&ThreadPool::new(1));
        for pool in pools() {
            for _ in 0..3 {
                let got = reduce(&pool);
                assert_eq!(got.to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn for_each_chunk_covers_every_element_exactly_once() {
        for pool in pools() {
            let mut data = vec![0u64; 4097];
            pool.for_each_chunk(&mut data, 64, |offset, part| {
                for (j, v) in part.iter_mut().enumerate() {
                    *v += (offset + j) as u64 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "element {i} visited wrongly");
            }
        }
    }

    #[test]
    fn map_chunks_handles_empty_and_tail_chunks() {
        let pool = ThreadPool::new(4);
        let empty: Vec<Vec<usize>> = pool.map_chunks(0, 16, |r| r.collect());
        assert!(empty.is_empty());
        let chunks = pool.map_chunks(10, 4, |r| (r.start, r.end));
        assert_eq!(chunks, vec![(0, 4), (4, 8), (8, 10)]);
    }

    #[test]
    fn scoped_tasks_may_borrow_the_stack() {
        let pool = ThreadPool::new(4);
        let data: Vec<usize> = (0..100).collect();
        let hits = AtomicUsize::new(0);
        pool.run_scoped((0..10).map(|t| {
            let data = &data;
            let hits = &hits;
            Box::new(move || {
                hits.fetch_add(data[t * 10], Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        assert_eq!(hits.load(Ordering::Relaxed), (0..10).map(|t| t * 10).sum());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.run_scoped((0..4).map(|_| {
            let pool = &pool;
            let total = &total;
            Box::new(move || {
                // A pooled kernel calling another pooled kernel: the
                // inner scope's caller (a worker) helps drain the queue.
                let inner = pool.map_chunks(100, 10, |r| r.sum::<usize>());
                total.fetch_add(inner.iter().sum::<usize>(), Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        assert_eq!(total.load(Ordering::Relaxed), 4 * (0..100).sum::<usize>());
    }

    #[test]
    fn task_panics_propagate_to_the_caller_after_the_scope_drains() {
        let pool = ThreadPool::new(3);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped((0..8).map(|t| {
                let completed = &completed;
                Box::new(move || {
                    if t == 3 {
                        panic!("task 3 exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            }));
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("task 3 exploded"), "got {msg:?}");
        // Every sibling still ran: the scope drains before re-raising.
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool stays usable after a panicked scope.
        let sum: usize = pool.map_chunks(50, 5, |r| r.sum::<usize>()).iter().sum();
        assert_eq!(sum, (0..50).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        ThreadPool::new(2).map_chunks(10, 0, |_| ());
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ThreadPool::new(4);
        let out = pool.map_indexed(&[1u8, 2, 3], 1, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        drop(pool); // must not hang
    }
}
