//! Bounded, deterministic thread pool for the workspace's hot kernels.
//!
//! The leader-side hot loops — k-means Lloyd assignment, per-node
//! overlap scoring (the paper's `O(N·K·d)` Eq. 2–4 kernel) and
//! per-participant local training — previously either ran fully serial
//! or spawned one OS thread per participant *per round*. That
//! oversubscribes exactly when the node count grows toward the
//! distributed-KNN-scale workloads the roadmap targets. This crate
//! replaces both extremes with one process-wide, bounded pool:
//!
//! * **Bounded**: a fixed worker count — the `QENS_THREADS` environment
//!   variable, or [`std::thread::available_parallelism`] when unset —
//!   created once per process ([`global`]), never once per round.
//! * **Deterministic**: every parallel API uses *fixed chunking* (chunk
//!   boundaries depend only on the input length, never on the worker
//!   count) and *ordered per-chunk partial reductions* (partials are
//!   combined in chunk order on the calling thread). Results are
//!   therefore bit-identical across `QENS_THREADS=1`, `=4`, and the
//!   inline serial path — `tests/par_determinism.rs` proves it across
//!   the whole pipeline.
//! * **Work-stealing-lite**: the submitting thread does not idle behind
//!   its scope — it drains the shared injector queue alongside the
//!   workers until its own tasks finish. This also makes nested scopes
//!   (a pooled kernel calling another pooled kernel) deadlock-free.
//! * **std-only**: the workspace's default build path must work with the
//!   crates-io registry unreachable; no external dependencies.
//!
//! # Handles
//!
//! Kernels take an explicit [`ThreadPool`] handle (injectable for tests
//! and benches) and default to [`global`]. [`sized`] returns a cached,
//! process-wide pool of an exact worker count — used by
//! `FederationBuilder::threads(n)` so repeated queries never re-spawn
//! threads.
//!
//! # Telemetry
//!
//! Following the workspace's `qens_<crate>_<name>` convention:
//! `qens_par_scopes_total`, `qens_par_tasks_total`,
//! `qens_par_inline_tasks_total` (counters), `qens_par_queue_depth`
//! (histogram, sampled at enqueue) and `qens_par_workers` (gauge).
//! Scheduling metrics are intentionally *not* part of the determinism
//! contract — only the domain counters are.
//!
//! # Example
//!
//! ```
//! let pool = par::ThreadPool::new(4);
//! // Ordered per-chunk partials: bit-identical for any worker count.
//! let partials = pool.map_chunks(10_000, 1024, |r| r.map(|i| i as f64).sum::<f64>());
//! let total: f64 = partials.iter().sum();
//! let serial = par::ThreadPool::new(1).map_chunks(10_000, 1024, |r| {
//!     r.map(|i| i as f64).sum::<f64>()
//! });
//! assert_eq!(total, serial.iter().sum::<f64>());
//! ```

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, OnceLock};

mod pool;

pub use pool::ThreadPool;

/// Default chunk size (rows / items per task) used by the pooled kernels.
///
/// Fixed — never derived from the worker count — so chunk boundaries,
/// and with them every ordered partial reduction, are identical no
/// matter how many threads execute them.
pub const DEFAULT_CHUNK: usize = 1024;

/// Upper bound on configurable worker counts (a typo in `QENS_THREADS`
/// must not try to spawn a million OS threads).
pub const MAX_THREADS: usize = 512;

/// The worker count the global pool uses: `QENS_THREADS` when set to a
/// positive integer (clamped to [`MAX_THREADS`]), otherwise
/// [`std::thread::available_parallelism`], otherwise 1.
pub fn default_threads() -> usize {
    match std::env::var("QENS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.min(MAX_THREADS),
            _ => hardware_threads(),
        },
        Err(_) => hardware_threads(),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The lazily initialised process-wide pool ([`default_threads`] workers,
/// spawned once on first use).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// A cached pool with exactly `threads` workers.
///
/// Pools are created once per distinct size and kept alive for the
/// process lifetime, so callers that pin a worker count (e.g.
/// `FederationBuilder::threads(n)`) still create threads O(pool size)
/// per *process*, not per query or per round.
pub fn sized(threads: usize) -> Arc<ThreadPool> {
    static SIZED: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let threads = threads.clamp(1, MAX_THREADS);
    let cache = SIZED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap_or_else(|p| p.into_inner());
    Arc::clone(
        cache
            .entry(threads)
            .or_insert_with(|| Arc::new(ThreadPool::new(threads))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= MAX_THREADS);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn sized_pools_are_cached_per_count() {
        let a = sized(3);
        let b = sized(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        let c = sized(2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.threads(), 2);
        // Degenerate requests clamp instead of panicking.
        assert_eq!(sized(0).threads(), 1);
        assert_eq!(sized(usize::MAX).threads(), MAX_THREADS);
    }
}
