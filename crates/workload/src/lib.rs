//! Dynamic analytics-query workload generation.
//!
//! §V-A issues 200 queries "randomly created over the whole data space
//! based on the dynamic query workload method" of Savva et al. \[18\]: query
//! centres follow an evolving distribution over the data space and each
//! query requests a bounded range around its centre. Some queries overlap
//! many nodes' data, others only a few - exactly the variance the node
//! ranking has to cope with.
//!
//! * [`generator`] - workload kinds (uniform, drifting, hotspot) and the
//!   seeded query-stream generator.

pub mod generator;

pub use generator::{generate, QueryWorkload, WorkloadConfig, WorkloadKind};
