//! Seeded query-stream generation over a global data space.

use geom::{HyperRect, Interval, Query};
use linalg::rng as lrng;
use linalg::rng::Rng;

/// The distribution family driving query centres (the "dynamic workload"
/// of Savva et al. \[18\]).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkloadKind {
    /// Centres uniform over the whole space — the paper's baseline
    /// "randomly created over the whole data space".
    Uniform,
    /// Centres follow a Gaussian whose mean random-walks across the space
    /// (a drifting analytic focus).
    Drifting {
        /// Random-walk step as a fraction of each dimension's span.
        step_frac: f64,
        /// Gaussian spread around the walking mean, as a span fraction.
        spread_frac: f64,
    },
    /// Centres drawn from a mixture of fixed hotspots (recurring analytic
    /// interests).
    Hotspot {
        /// Number of mixture components.
        hotspots: usize,
        /// Gaussian spread around each hotspot, as a span fraction.
        spread_frac: f64,
    },
    /// Centres drawn from caller-supplied anchor points (typically actual
    /// data points sampled from the nodes), guaranteeing every query
    /// lands where data exists. This is how real analytic workloads
    /// behave — nobody queries an empty region on purpose.
    DataAnchored {
        /// Anchor points (each of the space's dimensionality).
        anchors: Vec<Vec<f64>>,
        /// Gaussian jitter around the chosen anchor, as a span fraction.
        jitter_frac: f64,
    },
}

/// Workload configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadConfig {
    /// Number of queries to issue (the paper uses 200).
    pub n_queries: usize,
    /// Per-dimension query half-width, as a fraction of the dimension's
    /// span, drawn uniformly from this range per query and dimension.
    pub halfwidth_frac: (f64, f64),
    /// Centre distribution.
    pub kind: WorkloadKind,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's workload: 200 uniform queries of moderate selectivity.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            n_queries: 200,
            halfwidth_frac: (0.05, 0.30),
            kind: WorkloadKind::Uniform,
            seed,
        }
    }
}

/// A generated stream of queries plus the space it was generated over.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueryWorkload {
    /// The global data space queried.
    pub space: HyperRect,
    /// Queries in issue order (ids 0..n).
    pub queries: Vec<Query>,
}

impl QueryWorkload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Generates a query workload over `space`.
///
/// Every query rectangle is clipped to `space`, so queries always request
/// a region the system could in principle serve.
///
/// # Panics
/// Panics if `n_queries == 0`, the half-width fractions are not ordered in
/// `(0, 1]`, or a `Hotspot` workload has zero hotspots.
pub fn generate(space: &HyperRect, config: &WorkloadConfig) -> QueryWorkload {
    assert!(config.n_queries > 0, "empty workload requested");
    let (lo_frac, hi_frac) = config.halfwidth_frac;
    assert!(
        0.0 < lo_frac && lo_frac <= hi_frac && hi_frac <= 1.0,
        "half-width fractions ({lo_frac}, {hi_frac}) must satisfy 0 < lo <= hi <= 1"
    );
    let mut rng = lrng::rng_for(config.seed, 0x0_9E7);
    let dim = space.dim();
    let spans: Vec<f64> = space.intervals().iter().map(Interval::length).collect();

    // Hotspot means are fixed for the whole stream.
    let hotspot_means: Vec<Vec<f64>> = match &config.kind {
        WorkloadKind::Hotspot { hotspots, .. } => {
            assert!(*hotspots > 0, "hotspot workload needs at least one hotspot");
            (0..*hotspots)
                .map(|_| uniform_center(space, &mut rng))
                .collect()
        }
        _ => Vec::new(),
    };
    if let WorkloadKind::DataAnchored { anchors, .. } = &config.kind {
        assert!(
            !anchors.is_empty(),
            "data-anchored workload needs anchor points"
        );
        for a in anchors {
            assert_eq!(a.len(), dim, "anchor dimensionality mismatch");
        }
    }
    // Drifting mean starts at the space centre.
    let mut walk = space.center();

    let mut queries = Vec::with_capacity(config.n_queries);
    for id in 0..config.n_queries {
        let center: Vec<f64> = match &config.kind {
            WorkloadKind::Uniform => uniform_center(space, &mut rng),
            WorkloadKind::Drifting {
                step_frac,
                spread_frac,
            } => {
                for d in 0..dim {
                    walk[d] += lrng::normal(&mut rng, 0.0, step_frac * spans[d]);
                    // Reflect the walk at the space boundaries.
                    let iv = space.interval(d);
                    if walk[d] < iv.lo() {
                        walk[d] = 2.0 * iv.lo() - walk[d];
                    }
                    if walk[d] > iv.hi() {
                        walk[d] = 2.0 * iv.hi() - walk[d];
                    }
                    walk[d] = walk[d].clamp(iv.lo(), iv.hi());
                }
                (0..dim)
                    .map(|d| {
                        (walk[d] + lrng::normal(&mut rng, 0.0, spread_frac * spans[d]))
                            .clamp(space.interval(d).lo(), space.interval(d).hi())
                    })
                    .collect()
            }
            WorkloadKind::Hotspot { spread_frac, .. } => {
                let h = &hotspot_means[rng.gen_range(0..hotspot_means.len())];
                (0..dim)
                    .map(|d| {
                        (h[d] + lrng::normal(&mut rng, 0.0, spread_frac * spans[d]))
                            .clamp(space.interval(d).lo(), space.interval(d).hi())
                    })
                    .collect()
            }
            WorkloadKind::DataAnchored {
                anchors,
                jitter_frac,
            } => {
                let a = &anchors[rng.gen_range(0..anchors.len())];
                (0..dim)
                    .map(|d| {
                        (a[d] + lrng::normal(&mut rng, 0.0, jitter_frac * spans[d]))
                            .clamp(space.interval(d).lo(), space.interval(d).hi())
                    })
                    .collect()
            }
        };

        let intervals: Vec<Interval> = (0..dim)
            .map(|d| {
                let frac = rng.gen_range(lo_frac..=hi_frac);
                let half = 0.5 * frac * spans[d];
                clamped_query_interval(center[d], half, space.interval(d))
            })
            .collect();
        let rect = HyperRect::new(intervals);
        // Postcondition of the whole generator: no query may leave the
        // space, whatever the centre distribution did near (or beyond)
        // the boundaries — downstream consumers (selection caching,
        // figure pipelines) assume containment.
        debug_assert!(
            rect.intervals()
                .iter()
                .enumerate()
                .all(|(d, iv)| space.interval(d).contains_interval(iv)),
            "generated query {id} leaves the space: {rect:?}"
        );
        queries.push(Query::new(id as u64, rect));
    }

    QueryWorkload {
        space: space.clone(),
        queries,
    }
}

/// The query's extent on one dimension: `centre ± half`, with *both*
/// bounds clamped into the space and inverted results pinned to a point.
///
/// Clamping only the low bound up and the high bound down (the previous
/// inline form) is not enough on its own when a centre can sit outside
/// the space — e.g. a [`WorkloadKind::DataAnchored`] anchor taken from a
/// node whose data exceeds the queried sub-space: `centre + half` could
/// then undershoot `space.lo()` and flip the interval. Clamping both
/// bounds into `[lo, hi]` makes containment unconditional.
fn clamped_query_interval(center: f64, half: f64, space: &Interval) -> Interval {
    let lo = (center - half).clamp(space.lo(), space.hi());
    let hi = (center + half).clamp(space.lo(), space.hi());
    Interval::new(lo, hi.max(lo))
}

fn uniform_center(space: &HyperRect, rng: &mut impl Rng) -> Vec<f64> {
    space
        .intervals()
        .iter()
        .map(|iv| {
            if iv.length() > 0.0 {
                rng.gen_range(iv.lo()..iv.hi())
            } else {
                iv.lo()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> HyperRect {
        HyperRect::from_boundary_vec(&[0.0, 100.0, -50.0, 50.0])
    }

    #[test]
    fn paper_default_issues_200_queries() {
        let w = generate(&space(), &WorkloadConfig::paper_default(1));
        assert_eq!(w.len(), 200);
        for (i, q) in w.queries.iter().enumerate() {
            assert_eq!(q.id(), i as u64);
        }
    }

    /// Boundary-containment pin for **all four** workload kinds: no
    /// generated query may extend past `QueryWorkload::space`, even with
    /// aggressive spreads, near-full-span half-widths (the
    /// centre ± half overshoot case) and — the hardest case —
    /// data-anchored centres whose anchors lie entirely *outside* the
    /// generated space.
    #[test]
    fn queries_stay_inside_the_space() {
        let kinds = [
            WorkloadKind::Uniform,
            WorkloadKind::Drifting {
                step_frac: 0.4,
                spread_frac: 0.3,
            },
            WorkloadKind::Hotspot {
                hotspots: 3,
                spread_frac: 0.3,
            },
            WorkloadKind::DataAnchored {
                // In-space, boundary and far-out-of-space anchors.
                anchors: vec![
                    vec![50.0, 0.0],
                    vec![0.0, -50.0],
                    vec![100.0, 50.0],
                    vec![-300.0, 400.0],
                    vec![1e6, -1e6],
                ],
                jitter_frac: 0.2,
            },
        ];
        for kind in kinds {
            for seed in [3, 4, 5] {
                let cfg = WorkloadConfig {
                    kind: kind.clone(),
                    halfwidth_frac: (0.05, 0.95),
                    seed,
                    ..WorkloadConfig::paper_default(seed)
                };
                let w = generate(&space(), &cfg);
                for q in &w.queries {
                    for (d, iv) in q.region().intervals().iter().enumerate() {
                        let s = w.space.interval(d);
                        assert!(
                            s.contains_interval(iv),
                            "{kind:?} query {} leaves the space on dim {d}: \
                             [{}, {}] vs [{}, {}]",
                            q.id(),
                            iv.lo(),
                            iv.hi(),
                            s.lo(),
                            s.hi()
                        );
                    }
                }
            }
        }
    }

    /// The clamp helper itself: inverted extents (centre beyond the
    /// space) must pin to a boundary point instead of panicking in
    /// `Interval::new`.
    #[test]
    fn clamped_interval_handles_out_of_space_centres() {
        let s = Interval::new(0.0, 10.0);
        assert_eq!(
            clamped_query_interval(5.0, 2.0, &s),
            Interval::new(3.0, 7.0)
        );
        assert_eq!(
            clamped_query_interval(0.5, 2.0, &s),
            Interval::new(0.0, 2.5)
        );
        // Centre far below the space: both bounds clamp to space.lo().
        assert_eq!(clamped_query_interval(-50.0, 2.0, &s), Interval::point(0.0));
        // Centre far above: both bounds clamp to space.hi().
        assert_eq!(clamped_query_interval(50.0, 2.0, &s), Interval::point(10.0));
    }

    #[test]
    fn halfwidth_controls_query_size() {
        let narrow = WorkloadConfig {
            halfwidth_frac: (0.01, 0.02),
            ..WorkloadConfig::paper_default(5)
        };
        let wide = WorkloadConfig {
            halfwidth_frac: (0.8, 0.9),
            ..WorkloadConfig::paper_default(5)
        };
        let mean_len = |w: &QueryWorkload| {
            w.queries
                .iter()
                .map(|q| q.region().interval(0).length())
                .sum::<f64>()
                / w.len() as f64
        };
        let n = generate(&space(), &narrow);
        let wi = generate(&space(), &wide);
        assert!(mean_len(&wi) > 10.0 * mean_len(&n));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::paper_default(9);
        assert_eq!(generate(&space(), &cfg), generate(&space(), &cfg));
        let other = WorkloadConfig { seed: 10, ..cfg };
        assert_ne!(
            generate(&space(), &WorkloadConfig::paper_default(9)),
            generate(&space(), &other)
        );
    }

    #[test]
    fn uniform_centres_spread_over_the_space() {
        let w = generate(&space(), &WorkloadConfig::paper_default(11));
        let centers: Vec<f64> = w.queries.iter().map(|q| q.region().center()[0]).collect();
        let lo_third = centers.iter().filter(|&&c| c < 33.3).count();
        let hi_third = centers.iter().filter(|&&c| c > 66.6).count();
        assert!(
            lo_third > 20 && hi_third > 20,
            "centres not spread: {lo_third}/{hi_third}"
        );
    }

    #[test]
    fn hotspot_centres_concentrate() {
        let cfg = WorkloadConfig {
            kind: WorkloadKind::Hotspot {
                hotspots: 1,
                spread_frac: 0.01,
            },
            ..WorkloadConfig::paper_default(13)
        };
        let w = generate(&space(), &cfg);
        let centers: Vec<f64> = w.queries.iter().map(|q| q.region().center()[0]).collect();
        assert!(
            linalg::stats::std_dev(&centers) < 5.0,
            "hotspot workload too dispersed"
        );
    }

    #[test]
    fn degenerate_space_dimension_is_tolerated() {
        let s = HyperRect::from_boundary_vec(&[0.0, 10.0, 5.0, 5.0]);
        let w = generate(&s, &WorkloadConfig::paper_default(17));
        for q in &w.queries {
            assert_eq!(q.region().interval(1).length(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "half-width fractions")]
    fn bad_halfwidths_rejected() {
        let cfg = WorkloadConfig {
            halfwidth_frac: (0.5, 0.2),
            ..WorkloadConfig::paper_default(0)
        };
        generate(&space(), &cfg);
    }

    #[test]
    fn data_anchored_queries_contain_their_anchor_region() {
        let anchors = vec![vec![10.0, -40.0], vec![90.0, 40.0]];
        let cfg = WorkloadConfig {
            kind: WorkloadKind::DataAnchored {
                anchors: anchors.clone(),
                jitter_frac: 0.01,
            },
            halfwidth_frac: (0.2, 0.3),
            ..WorkloadConfig::paper_default(19)
        };
        let w = generate(&space(), &cfg);
        // Every query centre sits near one of the anchors.
        for q in &w.queries {
            let c = q.region().center();
            let near = anchors
                .iter()
                .any(|a| (c[0] - a[0]).abs() < 20.0 && (c[1] - a[1]).abs() < 20.0);
            assert!(near, "query centre {c:?} far from every anchor");
        }
        // Both anchors get used.
        let near_first = w
            .queries
            .iter()
            .filter(|q| (q.region().center()[0] - 10.0).abs() < 20.0)
            .count();
        assert!(
            near_first > 20 && near_first < 180,
            "anchor mix skewed: {near_first}/200"
        );
    }

    #[test]
    #[should_panic(expected = "anchor dimensionality mismatch")]
    fn data_anchored_checks_dimensions() {
        let cfg = WorkloadConfig {
            kind: WorkloadKind::DataAnchored {
                anchors: vec![vec![1.0]],
                jitter_frac: 0.1,
            },
            ..WorkloadConfig::paper_default(0)
        };
        generate(&space(), &cfg);
    }
}
